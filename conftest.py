"""Repository-level pytest configuration.

Makes the ``src`` layout importable even when the package has not been
installed (useful for running the test suite directly from a checkout).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
