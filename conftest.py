"""Repository-level pytest configuration.

Makes the ``src`` layout importable even when the package has not been
installed (useful for running the test suite directly from a checkout), and
registers the ``slow`` marker so the fast tier can be selected with
``-m "not slow"``.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: long-running perf/benchmark tests (deselect with -m \"not slow\")")
