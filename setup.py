"""Setuptools entry point.

The project is fully described by ``pyproject.toml``; this file exists so the
package can also be installed in environments whose tooling predates PEP 517
editable installs (``pip install -e . --no-use-pep517``).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=("Reproduction of the Aethereal on-chip network interface "
                 "(Radulescu et al., DATE 2004)"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    # 3.10+: the hot-path packet/flit dataclasses use dataclass(slots=True).
    python_requires=">=3.10",
    install_requires=["numpy", "networkx"],
)
