PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-all bench bench-quick check

test:            ## fast test tier (tier-1 minus slow)
	$(PYTHON) -m pytest -q -m "not slow"

test-all:        ## full test suite including slow equivalence runs
	$(PYTHON) -m pytest -q

bench:           ## full perf suite; rewrites the tracked BENCH_PERF.json
	$(PYTHON) benchmarks/perf/run_perf.py

bench-quick:     ## perf smoke test (does not touch BENCH_PERF.json)
	$(PYTHON) benchmarks/perf/run_perf.py --quick --output /tmp/bench_quick.json

check:           ## fast tests + perf smoke + perf floors (CI gate)
	bash scripts/check.sh
