PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-all bench bench-quick check examples lint

test:            ## fast test tier (tier-1 minus slow)
	$(PYTHON) -m pytest -q -m "not slow"

lint:            ## reprolint static contract checks over src/repro
	$(PYTHON) -m repro.analysis.lint src/repro --baseline reprolint_baseline.json

examples:        ## run every example as a smoke test
	@for example in examples/*.py; do \
		echo "== $$example"; \
		$(PYTHON) $$example > /dev/null || exit 1; \
	done; echo "examples: OK"

test-all:        ## full test suite including slow equivalence runs
	$(PYTHON) -m pytest -q

bench:           ## full perf suite; rewrites the tracked BENCH_PERF.json
	$(PYTHON) benchmarks/perf/run_perf.py

bench-quick:     ## perf smoke test (does not touch BENCH_PERF.json)
	$(PYTHON) benchmarks/perf/run_perf.py --quick --output /tmp/bench_quick.json

check:           ## fast tests + examples + perf smoke + floors + staleness (CI gate)
	bash scripts/check.sh
