"""Unit tests for the analytic guarantees and their verification helpers."""

import pytest

from repro.analysis.guarantees import (
    GTGuarantees,
    GuaranteeError,
    jitter_bound_slots,
    latency_bound_flit_cycles,
    slot_waiting_bound,
    throughput_bound_gbit_s,
    throughput_bound_words_per_flit_cycle,
)
from repro.analysis.verification import (
    GuaranteeCheck,
    VerificationReport,
    ip_cycles_to_flit_cycles,
    measured_throughput_gbit_s,
    verify_end_to_end_latency,
    verify_latency,
    verify_throughput,
)


class TestThroughputBound:
    def test_scales_linearly_with_reserved_slots(self):
        one = throughput_bound_words_per_flit_cycle(1, 8)
        four = throughput_bound_words_per_flit_cycle(4, 8)
        assert four == pytest.approx(4 * one)

    def test_payload_only_subtracts_header(self):
        raw = throughput_bound_words_per_flit_cycle(2, 8, payload_only=False)
        payload = throughput_bound_words_per_flit_cycle(2, 8, payload_only=True)
        assert raw == pytest.approx(2 * 3 / 8)
        assert payload == pytest.approx(2 * 2 / 8)

    def test_full_reservation_equals_link_capacity(self):
        assert throughput_bound_words_per_flit_cycle(8, 8, payload_only=False) \
            == pytest.approx(3.0)

    def test_gbit_conversion(self):
        # All 8 slots, raw 3 words per 6 ns flit cycle = 16 Gbit/s; with the
        # one-word header per flit, 2/3 of that.
        assert throughput_bound_gbit_s(8, 8) == pytest.approx(16.0 * 2 / 3)

    def test_invalid_reservation_rejected(self):
        with pytest.raises(GuaranteeError):
            throughput_bound_words_per_flit_cycle(0, 8)
        with pytest.raises(GuaranteeError):
            throughput_bound_words_per_flit_cycle(9, 8)


class TestLatencyJitterBounds:
    def test_waiting_bound_single_slot(self):
        assert slot_waiting_bound([0], 8) == 7

    def test_waiting_bound_evenly_spread(self):
        assert slot_waiting_bound([0, 4], 8) == 3

    def test_waiting_bound_all_slots(self):
        assert slot_waiting_bound(list(range(8)), 8) == 0

    def test_jitter_bound(self):
        assert jitter_bound_slots([0], 8) == 8
        assert jitter_bound_slots([0, 4], 8) == 4
        assert jitter_bound_slots([0, 1], 8) == 7

    def test_latency_bound_includes_wait_hops_and_packet_length(self):
        assert latency_bound_flit_cycles([0], 8, hops=2) == 7 + 1 + 2
        assert latency_bound_flit_cycles([0], 8, hops=2, packet_flits=3) \
            == 7 + 1 + 2 + 2

    def test_invalid_patterns_rejected(self):
        with pytest.raises(GuaranteeError):
            slot_waiting_bound([], 8)
        with pytest.raises(GuaranteeError):
            slot_waiting_bound([9], 8)
        with pytest.raises(GuaranteeError):
            latency_bound_flit_cycles([0], 8, hops=-1)


class TestGTGuaranteesBundle:
    def test_summary_fields(self):
        guarantees = GTGuarantees(slot_pattern=[0, 4], num_slots=8, hops=2)
        summary = guarantees.summary()
        assert summary["slots"] == 2
        assert summary["latency_bound_flit_cycles"] == guarantees.latency_bound
        assert summary["jitter_bound_slots"] == 4
        assert guarantees.throughput_gbit_s > 0

    def test_duplicate_slots_deduplicated(self):
        guarantees = GTGuarantees(slot_pattern=[0, 0, 4], num_slots=8, hops=1)
        assert guarantees.slots_reserved == 2


class TestVerification:
    def make_guarantees(self):
        return GTGuarantees(slot_pattern=[0, 4], num_slots=8, hops=2)

    def test_throughput_check_passes_when_above_bound(self):
        guarantees = self.make_guarantees()
        bound = guarantees.throughput_words_per_flit_cycle
        check = verify_throughput(guarantees,
                                  words_delivered=int(bound * 100) + 5,
                                  window_flit_cycles=100)
        assert check.satisfied
        assert check.kind == "lower"

    def test_throughput_check_fails_when_below_bound(self):
        guarantees = self.make_guarantees()
        check = verify_throughput(guarantees, words_delivered=1,
                                  window_flit_cycles=100)
        assert not check.satisfied

    def test_warmup_slack_forgives_pipeline_fill(self):
        guarantees = self.make_guarantees()
        bound = guarantees.throughput_words_per_flit_cycle
        words = int(bound * 100) - 2
        strict = verify_throughput(guarantees, words, 100)
        lenient = verify_throughput(guarantees, words, 100,
                                    warmup_slack_words=10)
        assert not strict.satisfied and lenient.satisfied

    def test_latency_report(self):
        guarantees = self.make_guarantees()
        bound = guarantees.latency_bound
        report = verify_latency(guarantees, [bound - 1, bound, 2])
        assert report.all_satisfied
        bad = verify_latency(guarantees, [bound + 50])
        assert not bad.all_satisfied
        assert len(bad.failures()) >= 1

    def test_empty_latency_report(self):
        report = verify_latency(self.make_guarantees(), [])
        assert report.all_satisfied and report.checks == []

    def test_check_kinds(self):
        upper = GuaranteeCheck("x", bound=10, measured=12, kind="upper")
        lower = GuaranteeCheck("x", bound=10, measured=12, kind="lower")
        assert not upper.satisfied and lower.satisfied
        with pytest.raises(ValueError):
            GuaranteeCheck("x", 1, 1, kind="sideways").satisfied

    def test_report_rows(self):
        report = VerificationReport()
        report.add(GuaranteeCheck("a", 1, 0.5, kind="upper"))
        assert report.rows()[0]["ok"] is True

    def test_measured_throughput_conversion(self):
        # One word per flit cycle = 32 bits / 6 ns = 5.33 Gbit/s.
        assert measured_throughput_gbit_s(100, 100) == pytest.approx(32 / 6.0)
        with pytest.raises(ValueError):
            measured_throughput_gbit_s(1, 0)


class TestCheckBranches:
    """Direct coverage of the bound-kind / tolerance branches that the
    E4/E5 experiments only exercise indirectly."""

    def test_upper_bound_tolerance_forgives_small_overshoot(self):
        strict = GuaranteeCheck("x", bound=10, measured=11, kind="upper")
        lenient = GuaranteeCheck("x", bound=10, measured=11, kind="upper",
                                 tolerance=1.5)
        assert not strict.satisfied and lenient.satisfied

    def test_lower_bound_tolerance_forgives_small_shortfall(self):
        strict = GuaranteeCheck("x", bound=10, measured=9, kind="lower")
        lenient = GuaranteeCheck("x", bound=10, measured=9, kind="lower",
                                 tolerance=1.5)
        assert not strict.satisfied and lenient.satisfied

    def test_exact_bound_satisfies_both_kinds(self):
        assert GuaranteeCheck("x", bound=3, measured=3, kind="upper").satisfied
        assert GuaranteeCheck("x", bound=3, measured=3, kind="lower").satisfied

    def test_as_row_reports_ok_flag_and_kind(self):
        row = GuaranteeCheck("lat", bound=5, measured=9, kind="upper").as_row()
        assert row == {"check": "lat", "bound": 5, "measured": 9,
                       "kind": "upper", "ok": False}

    def test_report_failures_and_all_satisfied(self):
        report = VerificationReport()
        report.add(GuaranteeCheck("good", bound=5, measured=4, kind="upper"))
        report.add(GuaranteeCheck("bad", bound=5, measured=6, kind="upper"))
        assert not report.all_satisfied
        assert [check.name for check in report.failures()] == ["bad"]

    def test_verify_throughput_rejects_empty_window(self):
        guarantees = GTGuarantees(slot_pattern=[0], num_slots=8, hops=1)
        with pytest.raises(ValueError):
            verify_throughput(guarantees, words_delivered=1,
                              window_flit_cycles=0)

    def test_guarantee_error_propagates_through_bundle(self):
        with pytest.raises(GuaranteeError):
            GTGuarantees(slot_pattern=[], num_slots=8, hops=1)
        with pytest.raises(GuaranteeError):
            GTGuarantees(slot_pattern=[8], num_slots=8, hops=1)


class TestEndToEndLatency:
    def make_guarantees(self):
        request = GTGuarantees(slot_pattern=[0, 4], num_slots=8, hops=2)
        response = GTGuarantees(slot_pattern=[2, 6], num_slots=8, hops=2)
        return request, response

    def test_bound_folds_memory_service_into_both_directions(self):
        request, response = self.make_guarantees()
        combined = request.latency_bound + 7 + response.latency_bound
        report = verify_end_to_end_latency(request, response, [combined],
                                           memory_service_flit_cycles=7)
        assert report.all_satisfied
        assert report.checks[0].bound == combined
        bad = verify_end_to_end_latency(request, response, [combined + 1],
                                        memory_service_flit_cycles=7)
        assert not bad.all_satisfied

    def test_ideal_memory_defaults_to_zero_service(self):
        request, response = self.make_guarantees()
        report = verify_end_to_end_latency(
            request, response,
            [request.latency_bound + response.latency_bound])
        assert report.all_satisfied

    def test_extra_allowance_and_empty_measurements(self):
        request, response = self.make_guarantees()
        assert verify_end_to_end_latency(request, response, []).checks == []
        bound = request.latency_bound + response.latency_bound
        report = verify_end_to_end_latency(request, response, [bound + 2],
                                           extra_allowance=2)
        assert report.all_satisfied

    def test_negative_service_latency_rejected(self):
        request, response = self.make_guarantees()
        with pytest.raises(ValueError):
            verify_end_to_end_latency(request, response, [1],
                                      memory_service_flit_cycles=-1)

    def test_ip_cycle_conversion_rounds_up(self):
        assert ip_cycles_to_flit_cycles(0) == 0
        assert ip_cycles_to_flit_cycles(1) == 1
        assert ip_cycles_to_flit_cycles(3) == 1
        assert ip_cycles_to_flit_cycles(4) == 2
        with pytest.raises(ValueError):
            ip_cycles_to_flit_cycles(-1)
        with pytest.raises(ValueError):
            ip_cycles_to_flit_cycles(3, ip_cycles_per_flit_cycle=0)

    def test_dram_worst_case_plugs_into_the_bound(self):
        from repro.mem.timing import TIMING_PRESETS
        request, response = self.make_guarantees()
        timing = TIMING_PRESETS["fast"]
        service = ip_cycles_to_flit_cycles(
            timing.worst_case_service_cycles(words=4, queue_depth=4))
        report = verify_end_to_end_latency(
            request, response,
            [request.latency_bound + service + response.latency_bound],
            memory_service_flit_cycles=service)
        assert report.all_satisfied
