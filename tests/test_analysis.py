"""Unit tests for the analytic guarantees and their verification helpers."""

import pytest

from repro.analysis.guarantees import (
    GTGuarantees,
    GuaranteeError,
    jitter_bound_slots,
    latency_bound_flit_cycles,
    slot_waiting_bound,
    throughput_bound_gbit_s,
    throughput_bound_words_per_flit_cycle,
)
from repro.analysis.verification import (
    GuaranteeCheck,
    VerificationReport,
    measured_throughput_gbit_s,
    verify_latency,
    verify_throughput,
)


class TestThroughputBound:
    def test_scales_linearly_with_reserved_slots(self):
        one = throughput_bound_words_per_flit_cycle(1, 8)
        four = throughput_bound_words_per_flit_cycle(4, 8)
        assert four == pytest.approx(4 * one)

    def test_payload_only_subtracts_header(self):
        raw = throughput_bound_words_per_flit_cycle(2, 8, payload_only=False)
        payload = throughput_bound_words_per_flit_cycle(2, 8, payload_only=True)
        assert raw == pytest.approx(2 * 3 / 8)
        assert payload == pytest.approx(2 * 2 / 8)

    def test_full_reservation_equals_link_capacity(self):
        assert throughput_bound_words_per_flit_cycle(8, 8, payload_only=False) \
            == pytest.approx(3.0)

    def test_gbit_conversion(self):
        # All 8 slots, raw 3 words per 6 ns flit cycle = 16 Gbit/s; with the
        # one-word header per flit, 2/3 of that.
        assert throughput_bound_gbit_s(8, 8) == pytest.approx(16.0 * 2 / 3)

    def test_invalid_reservation_rejected(self):
        with pytest.raises(GuaranteeError):
            throughput_bound_words_per_flit_cycle(0, 8)
        with pytest.raises(GuaranteeError):
            throughput_bound_words_per_flit_cycle(9, 8)


class TestLatencyJitterBounds:
    def test_waiting_bound_single_slot(self):
        assert slot_waiting_bound([0], 8) == 7

    def test_waiting_bound_evenly_spread(self):
        assert slot_waiting_bound([0, 4], 8) == 3

    def test_waiting_bound_all_slots(self):
        assert slot_waiting_bound(list(range(8)), 8) == 0

    def test_jitter_bound(self):
        assert jitter_bound_slots([0], 8) == 8
        assert jitter_bound_slots([0, 4], 8) == 4
        assert jitter_bound_slots([0, 1], 8) == 7

    def test_latency_bound_includes_wait_hops_and_packet_length(self):
        assert latency_bound_flit_cycles([0], 8, hops=2) == 7 + 1 + 2
        assert latency_bound_flit_cycles([0], 8, hops=2, packet_flits=3) \
            == 7 + 1 + 2 + 2

    def test_invalid_patterns_rejected(self):
        with pytest.raises(GuaranteeError):
            slot_waiting_bound([], 8)
        with pytest.raises(GuaranteeError):
            slot_waiting_bound([9], 8)
        with pytest.raises(GuaranteeError):
            latency_bound_flit_cycles([0], 8, hops=-1)


class TestGTGuaranteesBundle:
    def test_summary_fields(self):
        guarantees = GTGuarantees(slot_pattern=[0, 4], num_slots=8, hops=2)
        summary = guarantees.summary()
        assert summary["slots"] == 2
        assert summary["latency_bound_flit_cycles"] == guarantees.latency_bound
        assert summary["jitter_bound_slots"] == 4
        assert guarantees.throughput_gbit_s > 0

    def test_duplicate_slots_deduplicated(self):
        guarantees = GTGuarantees(slot_pattern=[0, 0, 4], num_slots=8, hops=1)
        assert guarantees.slots_reserved == 2


class TestVerification:
    def make_guarantees(self):
        return GTGuarantees(slot_pattern=[0, 4], num_slots=8, hops=2)

    def test_throughput_check_passes_when_above_bound(self):
        guarantees = self.make_guarantees()
        bound = guarantees.throughput_words_per_flit_cycle
        check = verify_throughput(guarantees,
                                  words_delivered=int(bound * 100) + 5,
                                  window_flit_cycles=100)
        assert check.satisfied
        assert check.kind == "lower"

    def test_throughput_check_fails_when_below_bound(self):
        guarantees = self.make_guarantees()
        check = verify_throughput(guarantees, words_delivered=1,
                                  window_flit_cycles=100)
        assert not check.satisfied

    def test_warmup_slack_forgives_pipeline_fill(self):
        guarantees = self.make_guarantees()
        bound = guarantees.throughput_words_per_flit_cycle
        words = int(bound * 100) - 2
        strict = verify_throughput(guarantees, words, 100)
        lenient = verify_throughput(guarantees, words, 100,
                                    warmup_slack_words=10)
        assert not strict.satisfied and lenient.satisfied

    def test_latency_report(self):
        guarantees = self.make_guarantees()
        bound = guarantees.latency_bound
        report = verify_latency(guarantees, [bound - 1, bound, 2])
        assert report.all_satisfied
        bad = verify_latency(guarantees, [bound + 50])
        assert not bad.all_satisfied
        assert len(bad.failures()) >= 1

    def test_empty_latency_report(self):
        report = verify_latency(self.make_guarantees(), [])
        assert report.all_satisfied and report.checks == []

    def test_check_kinds(self):
        upper = GuaranteeCheck("x", bound=10, measured=12, kind="upper")
        lower = GuaranteeCheck("x", bound=10, measured=12, kind="lower")
        assert not upper.satisfied and lower.satisfied
        with pytest.raises(ValueError):
            GuaranteeCheck("x", 1, 1, kind="sideways").satisfied

    def test_report_rows(self):
        report = VerificationReport()
        report.add(GuaranteeCheck("a", 1, 0.5, kind="upper"))
        assert report.rows()[0]["ok"] is True

    def test_measured_throughput_conversion(self):
        # One word per flit cycle = 32 bits / 6 ns = 5.33 Gbit/s.
        assert measured_throughput_gbit_s(100, 100) == pytest.approx(32 / 6.0)
        with pytest.raises(ValueError):
            measured_throughput_gbit_s(1, 0)
