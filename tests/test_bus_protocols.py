"""Unit tests for the DTL, AXI and DTL-MMIO protocol adapters."""

import pytest

from repro.protocol.axi import (
    AxiAR,
    AxiAW,
    AxiB,
    AxiR,
    AxiResp,
    AxiW,
    AxiWriteBurst,
    axi_b_to_response,
    axi_r_to_response,
    axi_read_to_transaction,
    axi_write_to_transaction,
    response_to_axi_b,
    response_to_axi_r,
    transaction_to_axi,
)
from repro.protocol.dtl import (
    DTLCommand,
    DTLCommandType,
    DTLReadData,
    DTLWriteData,
    DTLWriteResponse,
    dtl_read_to_response,
    dtl_to_transaction,
    dtl_write_to_response,
    response_to_dtl_read,
    response_to_dtl_write,
    transaction_to_dtl,
)
from repro.protocol.mmio import MMIORegisterFile, mmio_read, mmio_write
from repro.protocol.transactions import (
    Command,
    ResponseError,
    Transaction,
    TransactionResponse,
)


class TestDTL:
    def test_read_command_converts_to_read_transaction(self):
        txn = dtl_to_transaction(DTLCommand(DTLCommandType.READ, 0x80, 4))
        assert txn.command == Command.READ
        assert txn.address == 0x80
        assert txn.read_length == 4

    def test_write_command_converts_to_write_transaction(self):
        txn = dtl_to_transaction(DTLCommand(DTLCommandType.WRITE, 0x10, 2),
                                 DTLWriteData([5, 6]))
        assert txn.command == Command.WRITE
        assert txn.write_data == [5, 6]

    def test_posted_write(self):
        txn = dtl_to_transaction(
            DTLCommand(DTLCommandType.WRITE, 0x10, 1, posted=True),
            DTLWriteData([5]))
        assert txn.command == Command.WRITE_POSTED

    def test_write_without_data_rejected(self):
        with pytest.raises(ValueError):
            dtl_to_transaction(DTLCommand(DTLCommandType.WRITE, 0x10, 1))

    def test_block_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            dtl_to_transaction(DTLCommand(DTLCommandType.WRITE, 0, 3),
                               DTLWriteData([1]))

    def test_transaction_back_to_dtl(self):
        cmd = transaction_to_dtl(Transaction.read(0x44, 8))
        assert cmd.command == DTLCommandType.READ
        assert cmd.block_size == 8
        cmd = transaction_to_dtl(Transaction.write(0x44, [1, 2], posted=True))
        assert cmd.command == DTLCommandType.WRITE
        assert cmd.posted

    def test_response_conversions(self):
        ok = TransactionResponse(read_data=[1, 2])
        assert response_to_dtl_read(ok).data == [1, 2]
        assert not response_to_dtl_read(ok).error
        bad = TransactionResponse(error=ResponseError.SLAVE_ERROR)
        assert response_to_dtl_write(bad).error
        assert dtl_read_to_response(DTLReadData([3], error=False)).ok
        assert not dtl_write_to_response(DTLWriteResponse(error=True)).ok


class TestAXI:
    def test_write_burst_to_transaction(self):
        burst = AxiWriteBurst(
            aw=AxiAW(addr=0x100, length=3),
            w_beats=[AxiW(1), AxiW(2), AxiW(3, last=True)])
        txn = axi_write_to_transaction(burst)
        assert txn.command == Command.WRITE
        assert txn.write_data == [1, 2, 3]

    def test_write_burst_validation(self):
        with pytest.raises(ValueError):
            axi_write_to_transaction(AxiWriteBurst(aw=AxiAW(0, 1), w_beats=[]))
        with pytest.raises(ValueError):
            axi_write_to_transaction(AxiWriteBurst(
                aw=AxiAW(0, 2), w_beats=[AxiW(1), AxiW(2, last=False)]))
        with pytest.raises(ValueError):
            axi_write_to_transaction(AxiWriteBurst(
                aw=AxiAW(0, 1), w_beats=[AxiW(1), AxiW(2, last=True)]))

    def test_read_to_transaction(self):
        txn = axi_read_to_transaction(AxiAR(addr=0x40, length=4))
        assert txn.command == Command.READ
        assert txn.read_length == 4

    def test_response_to_r_beats_sets_last(self):
        beats = response_to_axi_r(TransactionResponse(read_data=[1, 2, 3]))
        assert [b.data for b in beats] == [1, 2, 3]
        assert [b.last for b in beats] == [False, False, True]

    def test_error_mapping(self):
        beats = response_to_axi_r(
            TransactionResponse(error=ResponseError.SLAVE_ERROR, read_data=[1]))
        assert beats[0].resp == AxiResp.SLVERR
        b = response_to_axi_b(TransactionResponse(error=ResponseError.DECODE_ERROR))
        assert b.resp == AxiResp.DECERR

    def test_r_beats_back_to_response(self):
        response = axi_r_to_response([AxiR(1), AxiR(2, last=True)])
        assert response.read_data == [1, 2]
        assert response.ok
        with pytest.raises(ValueError):
            axi_r_to_response([])

    def test_b_beat_back_to_response(self):
        assert axi_b_to_response(AxiB()).ok
        assert not axi_b_to_response(AxiB(resp=AxiResp.SLVERR)).ok

    def test_transaction_to_axi(self):
        ar = transaction_to_axi(Transaction.read(0x10, 2))
        assert isinstance(ar, AxiAR)
        burst = transaction_to_axi(Transaction.write(0x10, [1, 2]))
        assert isinstance(burst, AxiWriteBurst)
        assert burst.w_beats[-1].last


class TestMMIO:
    def test_mmio_write_acknowledged_and_posted(self):
        acked = mmio_write(0x4, 7)
        assert acked.command == Command.WRITE
        posted = mmio_write(0x4, 7, acknowledged=False)
        assert posted.command == Command.WRITE_POSTED

    def test_mmio_read(self):
        txn = mmio_read(0x8)
        assert txn.command == Command.READ
        assert txn.read_length == 1

    def test_register_file_dict_backend(self):
        regs = MMIORegisterFile()
        regs.write(4, 99)
        assert regs.read(4) == 99
        assert regs.read(8) == 0

    def test_register_file_callback_backend(self):
        store = {}
        regs = MMIORegisterFile(read_handler=lambda a: store.get(a, 0xAA),
                                write_handler=lambda a, v: store.__setitem__(a, v))
        regs.write(0, 5)
        assert store[0] == 5
        assert regs.read(1) == 0xAA

    def test_execute_write_and_read_transactions(self):
        regs = MMIORegisterFile()
        response = regs.execute(mmio_write(0x10, 3))
        assert response.ok
        response = regs.execute(Transaction.read(0x10, 1))
        assert response.read_data == [3]

    def test_execute_burst(self):
        regs = MMIORegisterFile()
        regs.execute(Transaction.write(0x20, [1, 2, 3]))
        response = regs.execute(Transaction.read(0x20, 3))
        assert response.read_data == [1, 2, 3]

    def test_unsupported_command_reports_decode_error(self):
        regs = MMIORegisterFile()
        bad = Transaction(command=Command.WRITE_CONDITIONAL, address=0,
                          write_data=[1])
        assert regs.execute(bad).error == ResponseError.DECODE_ERROR
