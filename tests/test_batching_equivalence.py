"""Batched-vs-unbatched golden equivalence suite.

The batched flit pipeline (burst delivery on links, per-burst GT forwarding
in routers, word-run receive in NI kernels — see PERFORMANCE.md,
"Burst-granularity simulation") is only legal because it never changes
results.  This suite is the gate:

* a golden sweep over the **full scenario registry** — every registered
  scenario, including the fault scenarios (``link_failure_reroute``,
  ``transient_storm``: poison windows and fault events must truncate bursts)
  and the DRAM scenarios (``dram_scheduler_mix``: bank stalls back-pressure
  the BE path) — asserting byte-identical result fingerprints between the
  batched pipeline and the per-flit reference (:func:`repro.sim.batching.
  unbatched`);
* a hypothesis property test sweeping the burst cap
  (:func:`repro.sim.batching.capped_bursts`), which moves every burst
  boundary around at random: no placement may change the delivered word
  stream (actual memory contents) or any counter.

A scenario that is cheap to run twice sits in the fast tier; the rest carry
``slow`` and run in ``make test-all`` / the full tier.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import scenarios
from repro.sim.batching import batching_default, capped_bursts, unbatched


def normalize(obj):
    """NaN-tolerant deep normalization so fingerprints compare with ==."""
    if isinstance(obj, float):
        return "NaN" if math.isnan(obj) else obj
    if isinstance(obj, dict):
        return {key: normalize(value) for key, value in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [normalize(value) for value in obj]
    return obj


def run_fingerprint(name: str, cycles: int) -> dict:
    """Build scenario ``name`` fresh, run it, and digest the results.

    The digest extends ``System.fingerprint()`` with the actual memory
    contents: byte identity must cover the delivered *words*, not just the
    counters that summarize them.
    """
    system = scenarios.build(name)
    system.run_flit_cycles(cycles)
    digest = system.fingerprint()
    digest["memory_words"] = {
        mem_name: dict(handle.memory._data)
        for mem_name, handle in system.memories.items()}
    return normalize(digest)


# Cheap enough to run twice per test-tier run; everything else is slow.
# link_failure_reroute and dram_scheduler_mix stay in the fast tier on
# purpose: fault barriers and DRAM back-pressure are the burst-truncation
# paths most worth exercising on every `make check`.
_FAST = {
    "point_to_point",
    "gt_be_mix",
    "multicast",
    "link_failure_reroute",
    "transient_storm",
    "dram_scheduler_mix",
}

#: Flit cycles per scenario (default 300): long enough for steady state,
#: short enough to run the whole registry twice in the full tier.
_CYCLES = {"saturated_grid": 200, "random_system": 200}


def _params():
    for name in sorted(scenarios.names()):
        marks = () if name in _FAST else (pytest.mark.slow,)
        yield pytest.param(name, marks=marks)


@pytest.mark.parametrize("name", _params())
def test_batched_matches_per_flit_reference(name):
    assert batching_default(), "suite must run with batching on by default"
    cycles = _CYCLES.get(name, 300)
    batched = run_fingerprint(name, cycles)
    with unbatched():
        reference = run_fingerprint(name, cycles)
    assert batched == reference


# ---------------------------------------------------------------------------
# Property: burst-boundary placement is unobservable.  Capping the burst
# length at k splits every would-be burst at arbitrary points (k=1 disables
# bursting outright, large k merges maximally); no cap may change the
# delivered word stream.
# ---------------------------------------------------------------------------
_PROPERTY_SCENARIO = "gt_be_mix"
_PROPERTY_CYCLES = 220
_reference_cache = {}


def _property_reference():
    if "fp" not in _reference_cache:
        with unbatched():
            _reference_cache["fp"] = run_fingerprint(
                _PROPERTY_SCENARIO, _PROPERTY_CYCLES)
    return _reference_cache["fp"]


@settings(max_examples=12, deadline=None)
@given(cap=st.integers(min_value=1, max_value=24))
def test_random_burst_boundaries_preserve_word_streams(cap):
    with capped_bursts(cap):
        capped = run_fingerprint(_PROPERTY_SCENARIO, _PROPERTY_CYCLES)
    assert capped == _property_reference()


@pytest.mark.slow
@settings(max_examples=8, deadline=None)
@given(cap=st.integers(min_value=1, max_value=24))
def test_random_burst_boundaries_with_faults(cap):
    """Same property across a fault plan: barriers + caps still compose."""
    if "fault_fp" not in _reference_cache:
        with unbatched():
            _reference_cache["fault_fp"] = run_fingerprint(
                "link_failure_reroute", _PROPERTY_CYCLES)
    with capped_bursts(cap):
        capped = run_fingerprint("link_failure_reroute", _PROPERTY_CYCLES)
    assert capped == _reference_cache["fault_fp"]
