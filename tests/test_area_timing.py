"""Unit tests for the calibrated area and timing models (Section 5)."""

import pytest

from repro.design.area import (
    AreaModel,
    REFERENCE_KERNEL_AREA_MM2,
    REFERENCE_TOTAL_AREA_MM2,
    SHELL_AREAS_MM2,
)
from repro.design.spec import reference_ni_spec
from repro.design.timing import (
    LatencyModel,
    PAPER_LATENCY_RANGE_CYCLES,
    SOFTWARE_PACKETIZATION_INSTRUCTIONS,
    TimingModel,
)


class TestAreaModel:
    def test_reference_kernel_area_matches_the_paper(self):
        model = AreaModel()
        report = model.reference_report()
        assert report.kernel_mm2 == pytest.approx(REFERENCE_KERNEL_AREA_MM2,
                                                  rel=0.01)

    def test_reference_total_area_matches_the_paper(self):
        report = AreaModel().reference_report()
        assert report.total_mm2 == pytest.approx(REFERENCE_TOTAL_AREA_MM2,
                                                 rel=0.01)

    def test_shell_areas_match_published_figures(self):
        model = AreaModel()
        assert model.shell_area("narrowcast") == pytest.approx(0.004)
        assert model.shell_area("multiconnection") == pytest.approx(0.007)
        assert model.shell_area("dtl_master") == pytest.approx(0.005)
        assert model.shell_area("dtl_slave") == pytest.approx(0.002)
        assert model.shell_area("config") == pytest.approx(0.010)

    def test_shell_fractions_match_paper_percentages(self):
        """Narrowcast is 4% and multi-connection 6% of the kernel area."""
        report = AreaModel().reference_report()
        narrowcast = [v for k, v in report.shells_mm2.items()
                      if k.endswith("narrowcast")][0]
        multiconnection = [v for k, v in report.shells_mm2.items()
                           if k.endswith("multiconnection")][0]
        assert narrowcast / report.kernel_mm2 == pytest.approx(0.04, abs=0.005)
        assert multiconnection / report.kernel_mm2 == pytest.approx(0.06,
                                                                    abs=0.005)

    def test_area_scales_with_queue_size(self):
        model = AreaModel()
        small = model.kernel_area(num_channels=8, queue_words=64,
                                  num_ports=4, num_slots=8)
        large = model.kernel_area(num_channels=8, queue_words=256,
                                  num_ports=4, num_slots=8)
        assert large > small

    def test_area_scales_with_channels_and_ports(self):
        model = AreaModel()
        base = model.kernel_area(4, 64, 2, 8)
        more_channels = model.kernel_area(8, 64, 2, 8)
        more_ports = model.kernel_area(4, 64, 4, 8)
        assert more_channels > base and more_ports > base

    def test_technology_scaling(self):
        area_130 = AreaModel(130).reference_report().total_mm2
        area_65 = AreaModel(65).reference_report().total_mm2
        assert area_65 == pytest.approx(area_130 / 4, rel=0.01)

    def test_unknown_shell_rejected(self):
        with pytest.raises(ValueError):
            AreaModel().shell_area("teleport")

    def test_paper_comparison_table_is_consistent(self):
        comparison = AreaModel().paper_comparison()
        for key, row in comparison.items():
            assert row["model_mm2"] == pytest.approx(row["paper_mm2"], rel=0.02), key

    def test_report_rows_include_total(self):
        rows = AreaModel().reference_report().rows()
        assert rows[0][0] == "NI kernel"
        assert rows[-1][0] == "total"

    def test_report_for_arbitrary_instance(self):
        spec = reference_ni_spec()
        spec.ports[1].protocol = "axi"
        report = AreaModel().ni_area(spec)
        assert report.total_mm2 > report.kernel_mm2
        assert any("axi_master" in name for name in report.shells_mm2)


class TestLatencyModel:
    def test_breakdown_matches_the_paper_stages(self):
        breakdown = LatencyModel().breakdown()
        assert breakdown["master_shell_sequentialization"] == (2, 2)
        assert breakdown["narrowcast_multicast_shell"] == (0, 2)
        assert breakdown["kernel_flit_alignment"] == (1, 3)
        assert breakdown["clock_domain_crossing"] == (2, 2)

    def test_totals_fall_inside_the_paper_range(self):
        model = LatencyModel()
        low, high = PAPER_LATENCY_RANGE_CYCLES
        assert low <= model.min_cycles <= model.max_cycles <= high

    def test_within_paper_range_helper(self):
        model = LatencyModel()
        assert model.within_paper_range(5)
        assert not model.within_paper_range(40)


class TestTimingModel:
    def test_raw_bandwidth_is_16_gbit_per_second(self):
        assert TimingModel().raw_bandwidth_gbit_s == pytest.approx(16.0)

    def test_period(self):
        assert TimingModel().period_ns == pytest.approx(2.0)

    def test_slot_bandwidth_scales_with_reserved_slots(self):
        model = TimingModel()
        one = model.slot_bandwidth_gbit_s(1, 8)
        four = model.slot_bandwidth_gbit_s(4, 8)
        assert four == pytest.approx(4 * one)
        with pytest.raises(ValueError):
            model.slot_bandwidth_gbit_s(9, 8)

    def test_software_stack_latency(self):
        model = TimingModel()
        cycles = model.software_stack_latency_cycles()
        assert cycles == SOFTWARE_PACKETIZATION_INSTRUCTIONS
        assert model.software_stack_latency_cycles(cycles_per_instruction=2.0) \
            == 2 * SOFTWARE_PACKETIZATION_INSTRUCTIONS

    def test_cycles_to_ns(self):
        assert TimingModel().cycles_to_ns(10) == pytest.approx(20.0)
