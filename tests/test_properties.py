"""Property-based tests on system invariants (hypothesis).

These exercise the core data structures and the end-to-end data path with
randomized inputs and assert the invariants the design relies on: FIFO
behaviour, flow-control conservation, path-encoding round trips and slot
table bookkeeping.
"""

from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.queues import HardwareFifo, QueueError
from repro.core.registers import PATH_MAX_HOPS, PATH_MAX_PORT, decode_path, encode_path
from repro.network.packet import Packet, PacketHeader, packet_to_flits
from repro.network.slot_table import SlotTable, SlotTableError
from repro.protocol.transactions import Transaction
from repro.testbench import build_point_to_point


# ---------------------------------------------------------------------------
# HardwareFifo behaves exactly like a bounded deque (no CDC delay).
# ---------------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(st.lists(st.one_of(
    st.tuples(st.just("push"), st.integers(min_value=0, max_value=2**32 - 1)),
    st.tuples(st.just("pop"), st.just(0))), max_size=80),
    st.integers(min_value=1, max_value=16))
def test_fifo_matches_reference_model(operations, capacity):
    fifo = HardwareFifo(capacity)
    reference = deque()
    for op, value in operations:
        if op == "push":
            if len(reference) < capacity:
                fifo.push(value)
                reference.append(value)
            else:
                assert not fifo.can_push()
                with pytest.raises(QueueError):
                    fifo.push(value)
        else:
            if reference:
                assert fifo.pop() == reference.popleft()
            else:
                assert not fifo.can_pop()
        assert fifo.fill == len(reference)
        assert fifo.space == capacity - len(reference)


# ---------------------------------------------------------------------------
# Path register encoding round-trips for every legal path.
# ---------------------------------------------------------------------------
@settings(max_examples=80, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=PATH_MAX_PORT),
                max_size=PATH_MAX_HOPS))
def test_path_encoding_round_trip(path):
    assert decode_path(encode_path(path)) == tuple(path)


# ---------------------------------------------------------------------------
# Packet flit split conserves words for any payload length.
# ---------------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=60))
def test_flit_split_conserves_words(payload_words):
    packet = Packet(PacketHeader(path=(0,), remote_qid=0),
                    list(range(payload_words)))
    flits = packet_to_flits(packet)
    assert sum(f.num_words for f in flits) == packet.total_words
    assert len(flits) == packet.num_flits


# ---------------------------------------------------------------------------
# Slot table: reservations and releases never corrupt other owners.
# ---------------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=7),   # slot
                          st.integers(min_value=0, max_value=3)),  # owner
                max_size=40))
def test_slot_table_reference_model(actions):
    table = SlotTable(8)
    reference = {}
    for slot, owner in actions:
        current = reference.get(slot)
        if current is None or current == owner:
            table.reserve(slot, owner)
            reference[slot] = owner
        else:
            with pytest.raises(SlotTableError):
                table.reserve(slot, owner)
    for slot in range(8):
        assert table.owner(slot) == reference.get(slot)


# ---------------------------------------------------------------------------
# End-to-end: random write bursts are delivered exactly once, in order,
# with correct contents (flow control conserves every word).
# ---------------------------------------------------------------------------
@settings(max_examples=5, deadline=None)
@given(st.lists(st.lists(st.integers(min_value=0, max_value=2**32 - 1),
                         min_size=1, max_size=6),
                min_size=1, max_size=6),
       st.booleans())
def test_end_to_end_write_integrity(bursts, gt):
    tb = build_point_to_point(gt=gt, request_slots=2, response_slots=2,
                              max_transactions=0)
    address = 0
    expected = {}
    for burst in bursts:
        tb.master.issue(Transaction.write(address, burst))
        expected[address] = burst
        address += len(burst)
    tb.run_until_done(max_flit_cycles=30000)
    assert len(tb.master.completed) == len(bursts)
    for base, burst in expected.items():
        assert tb.memory.memory.read_burst(base, len(burst)) == burst
    sent = tb.system.kernel(tb.master_ni).stats.counter("words_sent").value
    received = tb.system.kernel(tb.slave_ni).stats.counter("words_received").value
    assert sent == received
