"""Unit tests for the software-stack and shared-bus baselines."""

import math

import pytest

from repro.baselines.bus import SharedBus, SharedBusMaster
from repro.baselines.software_stack import SoftwareStackModel
from repro.design.timing import SOFTWARE_PACKETIZATION_INSTRUCTIONS


class TestSoftwareStackModel:
    def test_default_uses_47_instructions(self):
        model = SoftwareStackModel()
        assert model.cycles_per_message == SOFTWARE_PACKETIZATION_INSTRUCTIONS

    def test_latency_in_ns(self):
        model = SoftwareStackModel(core_frequency_mhz=500.0)
        assert model.latency_ns == pytest.approx(47 * 2.0)

    def test_cpi_scales_latency(self):
        base = SoftwareStackModel()
        slow = SoftwareStackModel(cycles_per_instruction=1.5)
        assert slow.cycles_per_message == pytest.approx(1.5 * base.cycles_per_message)

    def test_other_instructions_add_to_cost(self):
        model = SoftwareStackModel(other_instructions=53)
        assert model.instructions_per_message == 100

    def test_message_rate_ceiling(self):
        model = SoftwareStackModel(core_frequency_mhz=500.0)
        assert model.max_messages_per_second == pytest.approx(500e6 / 47)

    def test_payload_bandwidth_ceiling(self):
        model = SoftwareStackModel(core_frequency_mhz=500.0)
        gbps = model.max_payload_gbit_s(words_per_message=8)
        assert gbps == pytest.approx(500e6 / 47 * 8 * 32 / 1e9)
        with pytest.raises(ValueError):
            model.max_payload_gbit_s(0)

    def test_comparison_with_hardware_shows_large_ratio(self):
        """The paper's point: 47 instructions versus 4-10 cycles."""
        model = SoftwareStackModel()
        comparison = model.compare_with_hardware(hardware_cycles=10)
        assert comparison["cycle_ratio"] >= 4.7
        comparison = model.compare_with_hardware(hardware_cycles=4)
        assert comparison["cycle_ratio"] >= 11

    def test_validation(self):
        with pytest.raises(ValueError):
            SoftwareStackModel(packetization_instructions=0)
        with pytest.raises(ValueError):
            SoftwareStackModel(cycles_per_instruction=0)
        with pytest.raises(ValueError):
            SoftwareStackModel(core_frequency_mhz=0)


class TestSharedBus:
    def test_single_master_latency_is_service_time(self):
        bus = SharedBus([SharedBusMaster("m0", period_cycles=100, burst_words=4,
                                         slave_latency=2)])
        result = bus.simulate(1000)
        # command (1) + 4 data + 2 slave latency = 7 cycles.
        assert result.mean_latency == pytest.approx(7.0)
        assert result.max_latency == 7

    def test_latency_grows_with_contention(self):
        light = SharedBus.uniform(2, period_cycles=64, burst_words=8)
        heavy = SharedBus.uniform(8, period_cycles=64, burst_words=8)
        light_result = light.simulate(4000)
        heavy_result = heavy.simulate(4000)
        assert heavy_result.mean_latency > light_result.mean_latency
        assert heavy_result.bus_utilization > light_result.bus_utilization

    def test_utilization_saturates_at_one(self):
        bus = SharedBus.uniform(16, period_cycles=8, burst_words=8)
        result = bus.simulate(2000)
        assert result.bus_utilization <= 1.0
        assert result.bus_utilization > 0.9

    def test_aggregate_throughput_bounded_by_bus_capacity(self):
        bus = SharedBus.uniform(8, period_cycles=16, burst_words=8)
        cycles = 4000
        result = bus.simulate(cycles)
        assert result.words_transferred <= cycles

    def test_tdma_gives_each_master_its_share(self):
        bus = SharedBus.uniform(2, period_cycles=32, burst_words=4,
                                arbitration="tdma")
        result = bus.simulate(2000)
        assert result.transactions_completed > 0
        assert set(result.per_master_latency) == {"m0", "m1"}
        assert not any(math.isnan(v) for v in result.per_master_latency.values())

    def test_round_robin_fairness(self):
        bus = SharedBus.uniform(4, period_cycles=32, burst_words=4)
        result = bus.simulate(4000)
        latencies = list(result.per_master_latency.values())
        assert max(latencies) < 4 * min(latencies)

    def test_result_row(self):
        row = SharedBus.uniform(2).simulate(500).as_row()
        assert row["masters"] == 2
        assert "mean_latency" in row

    def test_validation(self):
        with pytest.raises(ValueError):
            SharedBus([])
        with pytest.raises(ValueError):
            SharedBus.uniform(2, arbitration="priority")
        with pytest.raises(ValueError):
            SharedBusMaster("m", period_cycles=0, burst_words=1)
        with pytest.raises(ValueError):
            SharedBus.uniform(1).simulate(0)
