"""Unit tests for the statistics collectors and the tracer."""

import math

import pytest

from repro.sim.stats import Counter, Histogram, LatencyRecorder, RateMeter, StatsRegistry
from repro.sim.trace import Tracer


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter().value == 0

    def test_increment(self):
        counter = Counter()
        counter.increment()
        counter.increment(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter().increment(-1)

    def test_reset(self):
        counter = Counter()
        counter.increment(7)
        counter.reset()
        assert counter.value == 0


class TestHistogram:
    def test_mean_min_max(self):
        histogram = Histogram()
        for sample in (2, 4, 6):
            histogram.add(sample)
        assert histogram.mean == pytest.approx(4.0)
        assert histogram.minimum == 2
        assert histogram.maximum == 6
        assert histogram.count == 3

    def test_weighted_samples(self):
        histogram = Histogram()
        histogram.add(10, weight=3)
        assert histogram.count == 3
        assert histogram.mean == pytest.approx(10.0)

    def test_percentile(self):
        histogram = Histogram()
        for sample in range(1, 101):
            histogram.add(sample)
        assert histogram.percentile(50) == 50
        assert histogram.percentile(100) == 100

    def test_percentile_out_of_range(self):
        histogram = Histogram()
        histogram.add(1)
        with pytest.raises(ValueError):
            histogram.percentile(150)

    def test_empty_histogram(self):
        histogram = Histogram()
        assert histogram.percentile(50) is None
        assert math.isnan(histogram.mean)

    def test_to_dict_sorted(self):
        histogram = Histogram()
        histogram.add(5)
        histogram.add(1)
        histogram.add(5)
        assert histogram.to_dict() == {1: 1, 5: 2}


class TestLatencyRecorder:
    def test_records_latency(self):
        recorder = LatencyRecorder()
        recorder.record(10, 25)
        recorder.record(20, 30)
        assert recorder.count == 2
        assert recorder.minimum == 10
        assert recorder.maximum == 15
        assert recorder.jitter == 5

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(10, 5)

    def test_empty_jitter_is_none(self):
        assert LatencyRecorder().jitter is None


class TestRateMeter:
    def test_rate_over_window(self):
        meter = RateMeter()
        for cycle in range(10):
            meter.add(cycle, 2)
        assert meter.items == 20
        assert meter.rate_per_cycle(10) == pytest.approx(2.0)

    def test_rate_over_observed_span(self):
        meter = RateMeter()
        meter.add(0, 1)
        meter.add(9, 1)
        assert meter.rate_per_cycle() == pytest.approx(0.2)

    def test_throughput_conversion(self):
        meter = RateMeter()
        for cycle in range(100):
            meter.add(cycle, 1)
        # 1 word (32 bits) per cycle at 500 MHz = 16 Gbit/s.
        assert meter.throughput_gbit_s(100, 500.0) == pytest.approx(16.0)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            RateMeter().rate_per_cycle(0)


class TestStatsRegistry:
    def test_collectors_are_memoized(self):
        registry = StatsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.latency("l") is registry.latency("l")
        assert registry.rate("r") is registry.rate("r")

    def test_summary_contains_all_collectors(self):
        registry = StatsRegistry()
        registry.counter("flits").increment(3)
        registry.latency("lat").record(0, 7)
        summary = registry.summary()
        assert summary["counter.flits"] == 3
        assert summary["latency.lat.max"] == 7


class TestTracer:
    def test_records_events(self):
        tracer = Tracer()
        tracer.record(100, "router", "forward", packet=1)
        assert len(tracer.events) == 1
        assert tracer.events[0].details["packet"] == 1

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.record(0, "x", "y")
        assert tracer.events == []

    def test_kind_filtering(self):
        tracer = Tracer(kinds={"forward"})
        tracer.record(0, "r", "forward")
        tracer.record(0, "r", "drop")
        assert len(tracer.events) == 1

    def test_filter_query(self):
        tracer = Tracer()
        tracer.record(0, "a", "x")
        tracer.record(0, "b", "x")
        tracer.record(0, "a", "y")
        assert len(tracer.filter(kind="x")) == 2
        assert len(tracer.filter(source="a")) == 2
        assert len(tracer.filter(kind="x", source="a")) == 1

    def test_filter_predicate(self):
        tracer = Tracer()
        for i in range(6):
            tracer.record(i * 10, "a" if i % 2 else "b", "x", seq=i)
        late = tracer.filter(predicate=lambda e: e.time_ps >= 30)
        assert [e.details["seq"] for e in late] == [3, 4, 5]
        # predicate composes with the kind/source filters.
        both = tracer.filter(source="a",
                             predicate=lambda e: e.details["seq"] > 1)
        assert [e.details["seq"] for e in both] == [3, 5]

    def test_max_events_cap(self):
        tracer = Tracer(max_events=2)
        for _ in range(5):
            tracer.record(0, "s", "k")
        assert len(tracer.events) == 2

    def test_listener_callback(self):
        tracer = Tracer()
        seen = []
        tracer.add_listener(seen.append)
        tracer.record(0, "s", "k")
        assert len(seen) == 1

    def test_dump_and_clear(self):
        tracer = Tracer()
        tracer.record(5, "src", "kind", a=1)
        assert "src" in tracer.dump()
        tracer.clear()
        assert tracer.events == []


class TestTracerRingBuffer:
    def test_ring_buffer_keeps_only_newest_events(self):
        tracer = Tracer(ring_buffer=3)
        for i in range(10):
            tracer.record(i, "s", "k", seq=i)
        assert len(tracer.events) == 3
        assert [e.details["seq"] for e in tracer.events] == [7, 8, 9]

    def test_ring_buffer_overrides_max_events(self):
        tracer = Tracer(ring_buffer=3, max_events=1)
        for i in range(5):
            tracer.record(i, "s", "k", seq=i)
        # max_events stops retention; ring_buffer evicts instead.
        assert [e.details["seq"] for e in tracer.events] == [2, 3, 4]

    def test_ring_buffer_must_be_positive(self):
        with pytest.raises(ValueError, match="ring_buffer"):
            Tracer(ring_buffer=0)

    def test_dump_and_filter_work_on_the_ring(self):
        tracer = Tracer(ring_buffer=2)
        tracer.record(0, "a", "x")
        tracer.record(1, "b", "x")
        tracer.record(2, "a", "y")
        assert len(tracer.filter(source="a")) == 1
        # With a ring buffer the retained window is "the moments around
        # the trigger", so limit= renders the newest events, not the head.
        dumped = tracer.dump(limit=1)
        assert "y" in dumped and "b" not in dumped

    def test_dump_limit_is_chronological_head_without_ring(self):
        tracer = Tracer()
        for i in range(5):
            tracer.record(i, "s", "k", seq=i)
        assert "seq=0" in tracer.dump(limit=1)
        assert "seq=4" not in tracer.dump(limit=1)

    def test_dump_tail_renders_newest_regardless_of_storage(self):
        unbounded = Tracer()
        ring = Tracer(ring_buffer=3)
        for i in range(5):
            unbounded.record(i, "s", "k", seq=i)
            ring.record(i, "s", "k", seq=i)
        for tracer in (unbounded, ring):
            dumped = tracer.dump(tail=2)
            assert "seq=3" in dumped and "seq=4" in dumped
            assert "seq=2" not in dumped
        assert unbounded.dump(tail=0) == ""


class TestTracerTrigger:
    def test_armed_tracer_discards_until_predicate_fires(self):
        tracer = Tracer()
        tracer.arm(lambda e: e.kind == "packet_poisoned")
        tracer.record(0, "link", "flit_forwarded")
        tracer.record(1, "link", "flit_forwarded")
        assert tracer.events == [] and not tracer.triggered
        tracer.record(2, "link", "packet_poisoned", packet=7)
        tracer.record(3, "link", "flit_forwarded")
        # Retention starts at the triggering event, inclusive.
        assert [e.kind for e in tracer.events] == ["packet_poisoned",
                                                   "flit_forwarded"]
        assert tracer.triggered

    def test_disarm_resumes_unconditional_retention(self):
        tracer = Tracer()
        tracer.arm(lambda e: False)
        tracer.record(0, "s", "k")
        assert tracer.events == []
        tracer.disarm()
        tracer.record(1, "s", "k")
        assert len(tracer.events) == 1

    def test_trigger_composes_with_ring_buffer(self):
        # The migScope use case: a tiny window of history around a fault,
        # without ever accumulating the whole run.
        tracer = Tracer(ring_buffer=2)
        tracer.arm(lambda e: e.kind == "fault")
        for i in range(100):
            tracer.record(i, "s", "noise", seq=i)
        tracer.record(100, "s", "fault")
        tracer.record(101, "s", "after")
        assert [e.kind for e in tracer.events] == ["fault", "after"]


# ---------------------------------------------------------------------------
# Sliding-window rate meters (per-link bandwidth, health_report()["links"])
# ---------------------------------------------------------------------------
class TestWindowedRate:
    def _rate(self, window=8):
        from repro.sim.stats import WindowedRate
        return WindowedRate(window)

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            self._rate(0)

    def test_rate_over_window(self):
        meter = self._rate(8)
        for cycle in range(4):
            meter.add(cycle)
        assert meter.rate(3) == pytest.approx(4 / 8)
        assert meter.total == 4

    def test_old_cycles_age_out(self):
        meter = self._rate(4)
        meter.add(0)
        assert meter.rate(0) == pytest.approx(1 / 4)
        # 10 cycles later the window has slid past the recorded item.
        assert meter.rate(10) == pytest.approx(0.0)
        assert meter.total == 1          # cumulative total never decays

    def test_add_run_equals_per_cycle_adds(self):
        burst, flat = self._rate(8), self._rate(8)
        burst.add_run(3, 5)
        for cycle in range(3, 8):
            flat.add(cycle)
        assert burst.total == flat.total
        assert burst.rate(7) == flat.rate(7)
        assert burst.snapshot(9) == flat.snapshot(9)

    def test_add_run_longer_than_window(self):
        meter = self._rate(4)
        meter.add_run(0, 100)            # only the last 4 cycles observable
        assert meter.total == 100
        assert meter.rate(99) == pytest.approx(1.0)

    def test_snapshot_fields(self):
        meter = self._rate(16)
        meter.add(2, amount=3)
        snap = meter.snapshot(2)
        assert snap == {"window": 16.0,
                        "rate_per_cycle": pytest.approx(3 / 16),
                        "total": 3.0}


# ---------------------------------------------------------------------------
# Columnar counter accumulators (batched stats layer)
# ---------------------------------------------------------------------------
class TestCounterColumn:
    def test_flush_folds_sum_into_counter(self):
        from repro.sim.stats import CounterColumn
        counter = Counter("flits")
        column = CounterColumn(counter)
        for amount in (1, 1, 3, 2):
            column.append(amount)
        assert counter.value == 0        # nothing visible until the flush
        assert column.pending == 4
        assert column.flush() == 7
        assert counter.value == 7
        assert column.pending == 0

    def test_flush_empty_is_noop(self):
        from repro.sim.stats import CounterColumn
        counter = Counter("flits")
        column = CounterColumn(counter)
        assert column.flush() == 0
        assert counter.value == 0

    def test_large_column_matches_small(self):
        # Exercises the NumPy fold branch (len > 32) when NumPy is present.
        from repro.sim.stats import CounterColumn
        counter = Counter("flits")
        column = CounterColumn(counter)
        for i in range(100):
            column.append(i)
        assert column.flush() == sum(range(100))
        assert counter.value == sum(range(100))

    def test_flush_columns_helper(self):
        from repro.sim.stats import CounterColumn, flush_columns
        counters = [Counter("a"), Counter("b")]
        columns = [CounterColumn(c) for c in counters]
        columns[0].append(2)
        columns[1].append(5)
        flush_columns(columns)
        assert [c.value for c in counters] == [2, 5]


# ---------------------------------------------------------------------------
# Counter-threshold trace triggers
# ---------------------------------------------------------------------------
class TestArmOnCounter:
    def test_retains_from_threshold_crossing(self):
        counter = Counter("flits_forwarded")
        tracer = Tracer()
        tracer.arm_on_counter(counter, threshold=3)
        for i in range(5):
            tracer.record(i, "router", "forward", seq=i)
            counter.increment()
        # Records while value < 3 are discarded; the first event recorded
        # at value >= 3 (seq=3) starts retention.
        assert [e.details["seq"] for e in tracer.events] == [3, 4]

    def test_lookup_by_name_in_registry(self):
        registry = StatsRegistry()
        registry.counter("drops").increment(10)
        tracer = Tracer()
        tracer.arm_on_counter("drops", threshold=10, registry=registry)
        tracer.record(0, "link", "drop")
        assert len(tracer.events) == 1

    def test_name_without_registry_raises(self):
        with pytest.raises(ValueError):
            Tracer().arm_on_counter("drops", threshold=1)


# ---------------------------------------------------------------------------
# Per-link bandwidth meters end to end (health_report()["links"])
# ---------------------------------------------------------------------------
class TestLinkBandwidthMeters:
    def test_health_report_links_carry_rates(self):
        from repro.api import scenarios
        system = scenarios.build("gt_be_mix")
        system.run_flit_cycles(200)
        links = system.health_report()["links"]
        assert links                      # every link is metered
        carried_total = 0
        for name, info in links.items():
            assert "->" in name
            assert info["window_cycles"] == 64
            assert info["total"] == info["flits_carried"]
            assert 0.0 <= info["rate_per_cycle"] <= 1.0
            carried_total += info["flits_carried"]
        # Traffic flowed, and the busiest link shows a nonzero window rate.
        assert carried_total > 0
        assert max(info["rate_per_cycle"] for info in links.values()) > 0

    def test_meter_totals_are_batching_invariant(self):
        from repro.api import scenarios
        from repro.sim.batching import unbatched

        def totals():
            system = scenarios.build("gt_be_mix")
            system.run_flit_cycles(150)
            return {name: info["total"]
                    for name, info in system.health_report()["links"].items()}

        batched = totals()
        with unbatched():
            reference = totals()
        assert batched == reference
