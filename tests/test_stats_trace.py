"""Unit tests for the statistics collectors and the tracer."""

import math

import pytest

from repro.sim.stats import Counter, Histogram, LatencyRecorder, RateMeter, StatsRegistry
from repro.sim.trace import Tracer


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter().value == 0

    def test_increment(self):
        counter = Counter()
        counter.increment()
        counter.increment(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter().increment(-1)

    def test_reset(self):
        counter = Counter()
        counter.increment(7)
        counter.reset()
        assert counter.value == 0


class TestHistogram:
    def test_mean_min_max(self):
        histogram = Histogram()
        for sample in (2, 4, 6):
            histogram.add(sample)
        assert histogram.mean == pytest.approx(4.0)
        assert histogram.minimum == 2
        assert histogram.maximum == 6
        assert histogram.count == 3

    def test_weighted_samples(self):
        histogram = Histogram()
        histogram.add(10, weight=3)
        assert histogram.count == 3
        assert histogram.mean == pytest.approx(10.0)

    def test_percentile(self):
        histogram = Histogram()
        for sample in range(1, 101):
            histogram.add(sample)
        assert histogram.percentile(50) == 50
        assert histogram.percentile(100) == 100

    def test_percentile_out_of_range(self):
        histogram = Histogram()
        histogram.add(1)
        with pytest.raises(ValueError):
            histogram.percentile(150)

    def test_empty_histogram(self):
        histogram = Histogram()
        assert histogram.percentile(50) is None
        assert math.isnan(histogram.mean)

    def test_to_dict_sorted(self):
        histogram = Histogram()
        histogram.add(5)
        histogram.add(1)
        histogram.add(5)
        assert histogram.to_dict() == {1: 1, 5: 2}


class TestLatencyRecorder:
    def test_records_latency(self):
        recorder = LatencyRecorder()
        recorder.record(10, 25)
        recorder.record(20, 30)
        assert recorder.count == 2
        assert recorder.minimum == 10
        assert recorder.maximum == 15
        assert recorder.jitter == 5

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(10, 5)

    def test_empty_jitter_is_none(self):
        assert LatencyRecorder().jitter is None


class TestRateMeter:
    def test_rate_over_window(self):
        meter = RateMeter()
        for cycle in range(10):
            meter.add(cycle, 2)
        assert meter.items == 20
        assert meter.rate_per_cycle(10) == pytest.approx(2.0)

    def test_rate_over_observed_span(self):
        meter = RateMeter()
        meter.add(0, 1)
        meter.add(9, 1)
        assert meter.rate_per_cycle() == pytest.approx(0.2)

    def test_throughput_conversion(self):
        meter = RateMeter()
        for cycle in range(100):
            meter.add(cycle, 1)
        # 1 word (32 bits) per cycle at 500 MHz = 16 Gbit/s.
        assert meter.throughput_gbit_s(100, 500.0) == pytest.approx(16.0)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            RateMeter().rate_per_cycle(0)


class TestStatsRegistry:
    def test_collectors_are_memoized(self):
        registry = StatsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.latency("l") is registry.latency("l")
        assert registry.rate("r") is registry.rate("r")

    def test_summary_contains_all_collectors(self):
        registry = StatsRegistry()
        registry.counter("flits").increment(3)
        registry.latency("lat").record(0, 7)
        summary = registry.summary()
        assert summary["counter.flits"] == 3
        assert summary["latency.lat.max"] == 7


class TestTracer:
    def test_records_events(self):
        tracer = Tracer()
        tracer.record(100, "router", "forward", packet=1)
        assert len(tracer.events) == 1
        assert tracer.events[0].details["packet"] == 1

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.record(0, "x", "y")
        assert tracer.events == []

    def test_kind_filtering(self):
        tracer = Tracer(kinds={"forward"})
        tracer.record(0, "r", "forward")
        tracer.record(0, "r", "drop")
        assert len(tracer.events) == 1

    def test_filter_query(self):
        tracer = Tracer()
        tracer.record(0, "a", "x")
        tracer.record(0, "b", "x")
        tracer.record(0, "a", "y")
        assert len(tracer.filter(kind="x")) == 2
        assert len(tracer.filter(source="a")) == 2
        assert len(tracer.filter(kind="x", source="a")) == 1

    def test_max_events_cap(self):
        tracer = Tracer(max_events=2)
        for _ in range(5):
            tracer.record(0, "s", "k")
        assert len(tracer.events) == 2

    def test_listener_callback(self):
        tracer = Tracer()
        seen = []
        tracer.add_listener(seen.append)
        tracer.record(0, "s", "k")
        assert len(seen) == 1

    def test_dump_and_clear(self):
        tracer = Tracer()
        tracer.record(5, "src", "kind", a=1)
        assert "src" in tracer.dump()
        tracer.clear()
        assert tracer.events == []


class TestTracerRingBuffer:
    def test_ring_buffer_keeps_only_newest_events(self):
        tracer = Tracer(ring_buffer=3)
        for i in range(10):
            tracer.record(i, "s", "k", seq=i)
        assert len(tracer.events) == 3
        assert [e.details["seq"] for e in tracer.events] == [7, 8, 9]

    def test_ring_buffer_overrides_max_events(self):
        tracer = Tracer(ring_buffer=3, max_events=1)
        for i in range(5):
            tracer.record(i, "s", "k", seq=i)
        # max_events stops retention; ring_buffer evicts instead.
        assert [e.details["seq"] for e in tracer.events] == [2, 3, 4]

    def test_ring_buffer_must_be_positive(self):
        with pytest.raises(ValueError, match="ring_buffer"):
            Tracer(ring_buffer=0)

    def test_dump_and_filter_work_on_the_ring(self):
        tracer = Tracer(ring_buffer=2)
        tracer.record(0, "a", "x")
        tracer.record(1, "b", "x")
        tracer.record(2, "a", "y")
        assert len(tracer.filter(source="a")) == 1
        assert "b" in tracer.dump(limit=1)


class TestTracerTrigger:
    def test_armed_tracer_discards_until_predicate_fires(self):
        tracer = Tracer()
        tracer.arm(lambda e: e.kind == "packet_poisoned")
        tracer.record(0, "link", "flit_forwarded")
        tracer.record(1, "link", "flit_forwarded")
        assert tracer.events == [] and not tracer.triggered
        tracer.record(2, "link", "packet_poisoned", packet=7)
        tracer.record(3, "link", "flit_forwarded")
        # Retention starts at the triggering event, inclusive.
        assert [e.kind for e in tracer.events] == ["packet_poisoned",
                                                   "flit_forwarded"]
        assert tracer.triggered

    def test_disarm_resumes_unconditional_retention(self):
        tracer = Tracer()
        tracer.arm(lambda e: False)
        tracer.record(0, "s", "k")
        assert tracer.events == []
        tracer.disarm()
        tracer.record(1, "s", "k")
        assert len(tracer.events) == 1

    def test_trigger_composes_with_ring_buffer(self):
        # The migScope use case: a tiny window of history around a fault,
        # without ever accumulating the whole run.
        tracer = Tracer(ring_buffer=2)
        tracer.arm(lambda e: e.kind == "fault")
        for i in range(100):
            tracer.record(i, "s", "noise", seq=i)
        tracer.record(100, "s", "fault")
        tracer.record(101, "s", "after")
        assert [e.kind for e in tracer.events] == ["fault", "after"]
