"""Unit tests for connection specs and the register programs opening them."""

import pytest

from repro.config.connection import (
    ChannelEndpointRef,
    ChannelPairSpec,
    ConnectionError_,
    ConnectionSpec,
    build_close_program,
    build_open_program,
    count_register_writes,
)
from repro.core.registers import (
    REG_CTRL,
    REG_PATH,
    REG_REMOTE_QID,
    REG_SPACE,
    SLOT_TABLE_BASE,
    channel_register_address,
    decode_path,
)
from repro.design.generator import build_system
from repro.design.spec import ChannelSpec, NISpec, NoCSpec, PortSpec


def make_system():
    spec = NoCSpec(
        name="t", topology="mesh", rows=1, cols=2, num_slots=8,
        nis=[
            NISpec(name="m", router=(0, 0),
                   ports=[PortSpec(name="p", kind="master",
                                   channels=[ChannelSpec(8, 8)])]),
            NISpec(name="s", router=(0, 1),
                   ports=[PortSpec(name="p", kind="slave",
                                   channels=[ChannelSpec(8, 16)])]),
        ])
    return build_system(spec)


def p2p_spec(request_gt=False, request_slots=0):
    return ConnectionSpec(
        name="c0", kind="p2p",
        pairs=[ChannelPairSpec(master=ChannelEndpointRef("m", 0),
                               slave=ChannelEndpointRef("s", 0),
                               request_gt=request_gt,
                               request_slots=request_slots)])


class TestSpecValidation:
    def test_gt_channel_needs_slots(self):
        with pytest.raises(ConnectionError_):
            ChannelPairSpec(master=ChannelEndpointRef("m", 0),
                            slave=ChannelEndpointRef("s", 0),
                            request_gt=True, request_slots=0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConnectionError_):
            ConnectionSpec(name="x", kind="broadcast")

    def test_p2p_allows_single_pair_only(self):
        pair = ChannelPairSpec(master=ChannelEndpointRef("m", 0),
                               slave=ChannelEndpointRef("s", 0))
        with pytest.raises(ConnectionError_):
            ConnectionSpec(name="x", kind="p2p", pairs=[pair, pair])

    def test_gt_channel_requests(self):
        spec = ConnectionSpec(
            name="c", kind="p2p",
            pairs=[ChannelPairSpec(master=ChannelEndpointRef("m", 0),
                                   slave=ChannelEndpointRef("s", 0),
                                   request_gt=True, request_slots=2,
                                   response_gt=True, response_slots=1)])
        requests = spec.gt_channel_requests()
        assert len(requests) == 2
        assert requests[0][0].ni == "m" and requests[0][2] == 2
        assert requests[1][0].ni == "s" and requests[1][2] == 1

    def test_master_ni_property(self):
        assert p2p_spec().master_ni == "m"
        with pytest.raises(ConnectionError_):
            ConnectionSpec(name="empty").master_ni


class TestOpenProgram:
    def test_program_configures_both_directions(self):
        system = make_system()
        program = build_open_program(system.noc, system.kernels, p2p_spec())
        nis = {write.ni for write in program}
        assert nis == {"m", "s"}
        # Master side: path, remote qid, space, ctrl for the request channel.
        master_regs = {write.address for write in program if write.ni == "m"}
        for register in (REG_PATH, REG_REMOTE_QID, REG_SPACE, REG_CTRL):
            assert channel_register_address(0, register) in master_regs

    def test_space_written_with_remote_destination_capacity(self):
        system = make_system()
        program = build_open_program(system.noc, system.kernels, p2p_spec())
        space_writes = {write.ni: write.value for write in program
                        if write.address == channel_register_address(0, REG_SPACE)}
        # The slave NI's destination queue is 16 words deep (see make_system).
        assert space_writes["m"] == 16
        assert space_writes["s"] == 8

    def test_path_registers_match_noc_routes(self):
        system = make_system()
        program = build_open_program(system.noc, system.kernels, p2p_spec())
        path_writes = {write.ni: write.value for write in program
                       if write.address == channel_register_address(0, REG_PATH)}
        assert decode_path(path_writes["m"]) == system.noc.route("m", "s")
        assert decode_path(path_writes["s"]) == system.noc.route("s", "m")

    def test_last_write_is_acknowledged(self):
        system = make_system()
        program = build_open_program(system.noc, system.kernels, p2p_spec())
        assert program[-1].acknowledged
        assert not any(write.acknowledged for write in program[:-1])

    def test_gt_channel_adds_slot_table_writes(self):
        system = make_system()
        assignment = {("m", 0): [1, 5]}
        program = build_open_program(system.noc, system.kernels,
                                     p2p_spec(request_gt=True, request_slots=2),
                                     assignment)
        slot_writes = [write for write in program
                       if write.address >= SLOT_TABLE_BASE]
        assert len(slot_writes) == 2
        assert {write.address - SLOT_TABLE_BASE for write in slot_writes} == {1, 5}
        assert all(write.value == 1 for write in slot_writes)   # channel 0 + 1

    def test_write_counts_are_close_to_the_paper(self):
        """The paper reports 5 registers at the master NI and 3 at the slave."""
        system = make_system()
        program = build_open_program(system.noc, system.kernels, p2p_spec())
        counts = count_register_writes(program)
        assert 3 <= counts["m"] <= 6
        assert 3 <= counts["s"] <= 6

    def test_custom_thresholds_add_writes(self):
        system = make_system()
        spec = ConnectionSpec(
            name="c0", kind="p2p",
            pairs=[ChannelPairSpec(master=ChannelEndpointRef("m", 0),
                                   slave=ChannelEndpointRef("s", 0),
                                   data_threshold=4, credit_threshold=4)])
        program = build_open_program(system.noc, system.kernels, spec)
        default_program = build_open_program(system.noc, system.kernels,
                                             p2p_spec())
        assert len(program) == len(default_program) + 4

    def test_unknown_ni_rejected(self):
        system = make_system()
        spec = ConnectionSpec(
            name="bad", kind="p2p",
            pairs=[ChannelPairSpec(master=ChannelEndpointRef("ghost", 0),
                                   slave=ChannelEndpointRef("s", 0))])
        with pytest.raises(ConnectionError_):
            build_open_program(system.noc, system.kernels, spec)


class TestCloseProgram:
    def test_close_disables_channels_and_frees_slots(self):
        system = make_system()
        assignment = {("m", 0): [2]}
        program = build_close_program(system.kernels,
                                      p2p_spec(request_gt=True,
                                               request_slots=1),
                                      assignment)
        slot_frees = [w for w in program if w.address >= SLOT_TABLE_BASE]
        ctrl_writes = [w for w in program
                       if w.address == channel_register_address(0, REG_CTRL)]
        assert len(slot_frees) == 1 and slot_frees[0].value == 0
        assert len(ctrl_writes) == 2
        assert all(w.value == 0 for w in ctrl_writes)
        assert program[-1].acknowledged
