"""Golden-route regression: the strategy refactor must not move a byte.

The routes below were captured from the string-dispatch implementation
(PR 4 era) for every classic scenario shape: if the pluggable strategy
layer resolves a single route differently, slot allocation, in-flight
ordering and ultimately every statistic shifts.  These pins hold the
refactor to its invariant — identical routes for existing mesh / ring /
single-router systems.
"""

import warnings

import pytest

from repro.api import scenarios
from repro.network.routing import (
    AutoRouting,
    ShortestPath,
    XYRouting,
    compute_route,
)
from repro.network.topology import Topology, build_port_map

#: Captured with the pre-refactor string dispatch ("auto" everywhere).
GOLDEN_ROUTES = {
    "point_to_point": {
        ("ni_m", "ni_s"): (0, 1),
        ("ni_s", "ni_m"): (0, 1),
    },
    "gt_be_mix": {
        ("m0", "s0"): (0, 1), ("m0", "s1"): (0, 2),
        ("m1", "s0"): (0, 1), ("m1", "s1"): (0, 2),
        ("s0", "m0"): (0, 1), ("s0", "m1"): (0, 2),
        ("s1", "m0"): (0, 1), ("s1", "m1"): (0, 2),
    },
    "ring": {
        ("m0", "mem0"): (0, 1, 1, 2),
        ("m1", "mem1"): (0, 0, 1, 2),
        ("m2", "mem2"): (0, 0, 0, 2),
        ("mem0", "m0"): (0, 0, 0, 2),
        ("mem1", "m1"): (1, 0, 0, 2),
        ("mem2", "m2"): (0, 1, 1, 2),
    },
    "hotspot": {
        ("m0", "hot"): (0, 1, 2), ("m1", "hot"): (1, 2),
        ("m2", "hot"): (1, 2), ("m3", "hot"): (2,),
        ("hot", "m0"): (1, 0, 2), ("hot", "m1"): (0, 2),
        ("hot", "m2"): (1, 2), ("hot", "m3"): (3,),
    },
    "narrowcast": {
        ("ni_m", "ni_s0"): (0, 1), ("ni_m", "ni_s1"): (2,),
        ("ni_s0", "ni_m"): (0, 1), ("ni_s1", "ni_m"): (1,),
    },
}


@pytest.mark.parametrize("scenario_name", sorted(GOLDEN_ROUTES))
def test_scenario_routes_byte_identical(scenario_name):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")  # the ring scenario warns (real CDG cycle)
        system = scenarios.build(scenario_name)
    for (src, dst), expected in GOLDEN_ROUTES[scenario_name].items():
        assert system.noc.route(src, dst) == expected, \
            f"{scenario_name}: {src}->{dst}"


def test_strategy_objects_match_string_dispatch():
    """A strategy instance and its registry name produce the same routes."""
    topo = Topology.mesh(3, 3)
    port_map = build_port_map(topo)
    pairs = [(a, b) for a in topo.routers for b in topo.routers if a != b]
    for name, strategy in (("xy", XYRouting()),
                           ("shortest", ShortestPath()),
                           ("auto", AutoRouting())):
        for src, dst in pairs:
            local = port_map.local_port(dst, 0)
            assert (compute_route(topo, port_map, src, dst, local,
                                  algorithm=name)
                    == compute_route(topo, port_map, src, dst, local,
                                     algorithm=strategy)), (name, src, dst)


def test_compute_route_auto_keeps_seed_semantics():
    """Legacy auto: XY on coordinate nodes (errors propagate), shortest
    otherwise — exactly the seed behavior."""
    mesh = Topology.mesh(2, 2)
    pm = build_port_map(mesh)
    assert (compute_route(mesh, pm, (0, 0), (1, 1), pm.local_port((1, 1), 0))
            == compute_route(mesh, pm, (0, 0), (1, 1),
                             pm.local_port((1, 1), 0), algorithm="xy"))
    ring = Topology.ring(4)
    pm_ring = build_port_map(ring)
    assert (compute_route(ring, pm_ring, 0, 2, pm_ring.local_port(2, 0))
            == compute_route(ring, pm_ring, 0, 2, pm_ring.local_port(2, 0),
                             algorithm="shortest"))


def test_ring_spec_fields_unchanged():
    """The explicit topology-size fix keeps the legacy spec encoding."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        system = scenarios.build("ring")
    spec = system.spec
    assert spec.topology == "ring"
    assert (spec.rows, spec.cols) == (1, 6)
    assert spec.topology_params == {"num_routers": 6}
    assert system.noc.topology.num_routers == 6
