"""Tests for the declarative SystemBuilder front door (repro.api)."""

import pytest

from repro.api import BuilderError, SystemBuilder, scenarios
from repro.core.shells.multicast import MulticastShell
from repro.core.shells.multiconnection import MultiConnectionShell
from repro.core.shells.narrowcast import NarrowcastShell
from repro.core.shells.point_to_point import PointToPointShell
from repro.ip.traffic import ConstantBitRateTraffic
from repro.mem.slave import DRAMBackedSlave
from repro.protocol.transactions import Transaction


def build_p2p(gt=False, **connect_kwargs):
    return (SystemBuilder("t")
            .mesh(1, 2)
            .add_master("cpu", router=(0, 0))
            .add_memory("mem", router=(0, 1))
            .connect("cpu", "mem", gt=gt, **connect_kwargs)
            .build())


class TestFluentBuild:
    def test_quickstart_shape_runs_transactions(self):
        system = build_p2p()
        cpu = system.master("cpu")
        cpu.issue(Transaction.write(0x40, [1, 2, 3]))
        cpu.issue(Transaction.read(0x40, length=3))
        cycles = system.run_until_idle()
        assert cycles < 20000
        assert len(cpu.completed) == 2
        read = cpu.completed[-1]
        assert read.response.read_data == [1, 2, 3]
        assert system.memory("mem").memory.read_burst(0x40, 3) == [1, 2, 3]

    def test_named_accessors_and_default_connection_name(self):
        system = build_p2p()
        assert system.master("cpu").ni == "cpu"
        assert system.memory("mem").ni == "mem"
        info = system.connection("cpu->mem")
        assert info.spec.kind == "p2p"
        assert not info.gt

    def test_unknown_accessor_names_are_actionable(self):
        system = build_p2p()
        with pytest.raises(BuilderError, match="unknown master 'dsp'"):
            system.master("dsp")
        with pytest.raises(BuilderError, match="known: cpu->mem"):
            system.connection("nope")

    def test_gt_connection_records_slot_assignment(self):
        system = build_p2p(gt=True, slots=2)
        info = system.connection("cpu->mem")
        assert info.gt
        slots = info.slot_assignment[("cpu", 0)]
        assert len(slots) == 2
        # The global allocator map agrees.
        assert system.slot_assignment[("cpu", 0)] == slots
        assert ("mem", 0) in info.slot_assignment  # response direction

    def test_run_until_idle_stops_gt_systems(self):
        """GT kernels tick forever (slot sampling); idleness must still stop."""
        system = build_p2p(gt=True, slots=2)
        system.master("cpu").issue(Transaction.write(0x0, [9, 9]))
        cycles = system.run_until_idle(max_flit_cycles=50000)
        assert cycles < 5000
        assert system.master("cpu").done()

    def test_run_until_idle_composes(self):
        pattern = ConstantBitRateTraffic(period_cycles=8, burst_words=2,
                                         write=True, posted=True)
        system = (SystemBuilder("t").mesh(1, 2)
                  .add_master("cpu", router=(0, 0), pattern=pattern,
                              max_transactions=5)
                  .add_memory("mem", router=(0, 1))
                  .connect("cpu", "mem")
                  .build())
        first = system.run_until_idle()
        assert first > 0
        # Already idle: a second call advances (essentially) no further.
        assert system.run_until_idle() <= 1
        assert len(system.master("cpu").completed) == 5

    def test_shared_memory_gets_multiconnection_shell(self):
        builder = (SystemBuilder("hot").mesh(1, 2)
                   .add_memory("mem", router=(0, 1)))
        for index in range(2):
            builder.add_master(f"m{index}", router=(0, 0),
                               pattern=ConstantBitRateTraffic(
                                   period_cycles=6, burst_words=2, write=True,
                                   base_address=index << 12),
                               max_transactions=4)
            builder.connect(f"m{index}", "mem")
        system = builder.build()
        assert isinstance(system.memory("mem").conn_shell,
                          MultiConnectionShell)
        system.run_until_idle()
        assert all(len(system.master(f"m{i}").completed) == 4
                   for i in range(2))
        assert system.memory("mem").memory.writes == 2 * 4 * 2

    def test_narrowcast_connect_builds_narrowcast_shell(self):
        system = (SystemBuilder("nc").mesh(1, 2)
                  .add_master("dsp", router=(0, 0))
                  .add_memory("a", router=(0, 1), words=64)
                  .add_memory("b", router=(0, 1), words=64)
                  .connect("dsp", ["a", "b"],
                           narrowcast_ranges=[(0, 256), (256, 256)])
                  .build())
        assert isinstance(system.master("dsp").conn_shell, NarrowcastShell)
        dsp = system.master("dsp")
        dsp.issue(Transaction.write(0x0, [1]))
        dsp.issue(Transaction.write(0x100, [2]))
        system.run_until_idle()
        assert system.memory("a").memory.read(0) == 1
        assert system.memory("b").memory.read(0) == 2

    def test_multicast_connect_builds_multicast_shell(self):
        system = (SystemBuilder("mc").mesh(1, 2)
                  .add_master("m", router=(0, 0))
                  .add_memory("a", router=(0, 1))
                  .add_memory("b", router=(0, 1))
                  .connect("m", ["a", "b"], multicast=True)
                  .build())
        assert isinstance(system.master("m").conn_shell, MulticastShell)
        assert system.connection("m->a+b").spec.kind == "multicast"
        master = system.master("m")
        master.issue(Transaction.write(0x10, [7, 8]))
        master.issue(Transaction.read(0x10, length=2))
        system.run_until_idle()
        # Every slave executed every transaction; the read completed once
        # all slaves acknowledged and returned the first slave's data.
        assert system.memory("a").memory.read_burst(0x10, 2) == [7, 8]
        assert system.memory("b").memory.read_burst(0x10, 2) == [7, 8]
        assert master.completed[-1].response.read_data == [7, 8]

    def test_dram_backend_attaches_dram_slave(self):
        system = (SystemBuilder("dram").mesh(1, 2)
                  .add_master("cpu", router=(0, 0))
                  .add_memory("mem", router=(0, 1), backend="dram",
                              timing="fast", scheduler="frfcfs",
                              banks=4, row_words=64)
                  .connect("cpu", "mem")
                  .build())
        handle = system.memory("mem")
        assert isinstance(handle.ip, DRAMBackedSlave)
        assert handle.backend == "dram"
        assert handle.dram.geometry.num_banks == 4
        assert handle.dram.controller.scheduler.name == "frfcfs"
        cpu = system.master("cpu")
        cpu.issue(Transaction.write(0x40, [1, 2, 3]))
        cpu.issue(Transaction.read(0x40, length=3))
        system.run_until_idle()
        assert cpu.completed[-1].response.read_data == [1, 2, 3]

    def test_ideal_memory_rejects_dram_accessor(self):
        system = build_p2p()
        assert system.memory("mem").backend == "ideal"
        with pytest.raises(BuilderError, match="ideal backend"):
            system.memory("mem").dram

    def test_close_and_reopen_connection(self):
        system = build_p2p()
        kernel = system.kernel("cpu")
        assert kernel.channel(0).regs.enabled
        system.close_connection("cpu->mem")
        assert not kernel.channel(0).regs.enabled
        system.reopen_connection("cpu->mem")
        assert kernel.channel(0).regs.enabled

    def test_functional_close_ignores_unrelated_config_module(self):
        """A config module declared for other NIs must not hijack
        close_connection of functionally opened connections."""
        system = (SystemBuilder("t").mesh(1, 2)
                  .add_master("cpu", router=(0, 0))
                  .add_memory("mem", router=(0, 1))
                  .add_config_module("cfg", router=(0, 0))
                  .add_node("ni1", router=(0, 1), cnip=True, channels=1)
                  .connect("cpu", "mem")
                  .build())
        assert system.configuration_mode == "functional"
        system.close_connection("cpu->mem")
        # Closed instantly — not deferred into MMIO writes to a CNIP the
        # master NI does not have.
        assert not system.kernel("cpu").channel(0).regs.enabled

    def test_auto_placement_round_robins_routers(self):
        system = (SystemBuilder("auto").mesh(1, 2)
                  .add_master("cpu")
                  .add_memory("mem")
                  .connect("cpu", "mem")
                  .build())
        assert system.spec.ni("cpu").router == (0, 0)
        assert system.spec.ni("mem").router == (0, 1)

    def test_trace_shortcut_records_events(self):
        system = (SystemBuilder("tr").mesh(1, 2)
                  .trace()
                  .add_master("cpu", router=(0, 0))
                  .add_memory("mem", router=(0, 1))
                  .connect("cpu", "mem")
                  .build())
        system.master("cpu").issue(Transaction.write(0x0, [5], posted=True))
        system.run_until_idle()
        assert system.trace_events(kind="forward")  # router forwards
        assert system.trace_events(source="m_conn") is not None


class TestValidationErrors:
    def test_missing_topology(self):
        with pytest.raises(BuilderError, match="no topology declared"):
            SystemBuilder("t").add_master("m", router=0).build()

    def test_duplicate_ip_name(self):
        builder = (SystemBuilder("t").mesh(1, 2)
                   .add_master("x", router=(0, 0))
                   .add_memory("x", router=(0, 1)))
        with pytest.raises(BuilderError,
                           match="duplicate IP/NI name 'x'.*master"):
            builder.build()

    def test_ni_name_collision(self):
        builder = (SystemBuilder("t").mesh(1, 2)
                   .add_master("a", router=(0, 0), ni="shared")
                   .add_memory("b", router=(0, 1), ni="shared"))
        with pytest.raises(BuilderError, match="NI name 'shared'.*collides"):
            builder.build()

    def test_unknown_router(self):
        builder = SystemBuilder("t").mesh(1, 2).add_master("m", router=(5, 5))
        with pytest.raises(BuilderError,
                           match=r"router \(5, 5\) is not part of the "
                                 r"1x2 mesh"):
            builder.build()

    def test_unknown_master_endpoint(self):
        builder = (SystemBuilder("t").mesh(1, 2)
                   .add_memory("mem", router=(0, 1))
                   .connect("ghost", "mem"))
        with pytest.raises(BuilderError,
                           match="unknown master endpoint 'ghost'"):
            builder.build()

    def test_memory_cannot_be_a_connection_master(self):
        builder = (SystemBuilder("t").mesh(1, 2)
                   .add_master("cpu", router=(0, 0))
                   .add_memory("mem", router=(0, 1))
                   .connect("mem", "cpu"))
        with pytest.raises(BuilderError,
                           match="only masters can open connections"):
            builder.build()

    def test_unknown_slave_endpoint(self):
        builder = (SystemBuilder("t").mesh(1, 2)
                   .add_master("cpu", router=(0, 0))
                   .connect("cpu", "nowhere"))
        with pytest.raises(BuilderError,
                           match="unknown slave endpoint 'nowhere'"):
            builder.build()

    def test_master_reused_across_connections(self):
        builder = (SystemBuilder("t").mesh(1, 2)
                   .add_master("cpu", router=(0, 0))
                   .add_memory("a", router=(0, 1))
                   .add_memory("b", router=(0, 1))
                   .connect("cpu", "a")
                   .connect("cpu", "b"))
        with pytest.raises(BuilderError, match="use a single narrowcast"):
            builder.build()

    def test_gt_needs_slots(self):
        builder = (SystemBuilder("t").mesh(1, 2)
                   .add_master("cpu", router=(0, 0))
                   .add_memory("mem", router=(0, 1))
                   .connect("cpu", "mem", gt=True, slots=0))
        with pytest.raises(BuilderError, match="needs at least one slot"):
            builder.build()

    def test_gt_slots_exceed_slot_table(self):
        builder = (SystemBuilder("t").mesh(1, 2, num_slots=4)
                   .add_master("cpu", router=(0, 0))
                   .add_memory("mem", router=(0, 1))
                   .connect("cpu", "mem", gt=True, slots=6))
        with pytest.raises(BuilderError,
                           match="6 GT slots requested but NI 'cpu' has a "
                                 "4-slot table"):
            builder.build()

    def test_aggregate_gt_demand_exceeds_slot_table(self):
        builder = (SystemBuilder("t").mesh(1, 2)
                   .add_master("dsp", router=(0, 0))
                   .add_memory("a", router=(0, 1))
                   .add_memory("b", router=(0, 1))
                   .connect("dsp", ["a", "b"], gt=True, slots=5,
                            narrowcast_ranges=[(0, 64), (64, 64)]))
        with pytest.raises(BuilderError,
                           match="GT slot demand at NI 'dsp' is 10"):
            builder.build()

    def test_multiple_slaves_need_ranges(self):
        builder = (SystemBuilder("t").mesh(1, 2)
                   .add_master("dsp", router=(0, 0))
                   .add_memory("a", router=(0, 1))
                   .add_memory("b", router=(0, 1))
                   .connect("dsp", ["a", "b"]))
        with pytest.raises(BuilderError, match="need.*narrowcast_ranges"):
            builder.build()

    def test_range_count_must_match_slave_count(self):
        builder = (SystemBuilder("t").mesh(1, 2)
                   .add_master("dsp", router=(0, 0))
                   .add_memory("a", router=(0, 1))
                   .add_memory("b", router=(0, 1))
                   .connect("dsp", ["a", "b"], narrowcast_ranges=[(0, 64)]))
        with pytest.raises(BuilderError,
                           match="1 narrowcast ranges for 2 slaves"):
            builder.build()

    def test_multicast_needs_two_slaves(self):
        builder = (SystemBuilder("t").mesh(1, 2)
                   .add_master("m", router=(0, 0))
                   .add_memory("a", router=(0, 1))
                   .connect("m", ["a"], multicast=True))
        with pytest.raises(BuilderError,
                           match="multicast=True needs at least two slave"):
            builder.build()

    def test_multicast_excludes_narrowcast_ranges(self):
        builder = (SystemBuilder("t").mesh(1, 2)
                   .add_master("m", router=(0, 0))
                   .add_memory("a", router=(0, 1))
                   .add_memory("b", router=(0, 1))
                   .connect("m", ["a", "b"], multicast=True,
                            narrowcast_ranges=[(0, 64), (64, 64)]))
        with pytest.raises(BuilderError,
                           match="cannot be combined with narrowcast_ranges"):
            builder.build()

    def test_unknown_memory_backend(self):
        builder = (SystemBuilder("t").mesh(1, 2)
                   .add_memory("mem", router=(0, 1), backend="core_rope"))
        with pytest.raises(BuilderError,
                           match="unknown backend 'core_rope'"):
            builder.build()

    def test_dram_options_rejected_on_ideal_backend(self):
        builder = (SystemBuilder("t").mesh(1, 2)
                   .add_memory("mem", router=(0, 1), scheduler="frfcfs",
                               banks=4))
        with pytest.raises(BuilderError,
                           match="scheduler, banks only apply to "
                                 "backend='dram'"):
            builder.build()

    def test_ideal_options_rejected_on_dram_backend(self):
        builder = (SystemBuilder("t").mesh(1, 2)
                   .add_memory("mem", router=(0, 1), backend="dram",
                               latency=100))
        with pytest.raises(BuilderError,
                           match="latency only apply to backend='ideal'"):
            builder.build()

    def test_unknown_dram_scheduler(self):
        builder = (SystemBuilder("t").mesh(1, 2)
                   .add_memory("mem", router=(0, 1), backend="dram",
                               scheduler="lifo"))
        with pytest.raises(BuilderError,
                           match="'mem': unknown DRAM scheduler 'lifo'"):
            builder.build()

    def test_unknown_dram_timing_preset(self):
        builder = (SystemBuilder("t").mesh(1, 2)
                   .add_memory("mem", router=(0, 1), backend="dram",
                               timing="warp"))
        with pytest.raises(BuilderError,
                           match="'mem': unknown DRAM timing preset"):
            builder.build()

    def test_invalid_dram_geometry(self):
        builder = (SystemBuilder("t").mesh(1, 2)
                   .add_memory("mem", router=(0, 1), backend="dram",
                               banks=0))
        with pytest.raises(BuilderError, match="'mem'.*at least one bank"):
            builder.build()

    def test_centralized_mode_needs_config_module(self):
        builder = (SystemBuilder("t").mesh(1, 2)
                   .configuration("centralized")
                   .add_master("cpu", router=(0, 0))
                   .add_memory("mem", router=(0, 1))
                   .connect("cpu", "mem"))
        with pytest.raises(BuilderError, match="add_config_module"):
            builder.build()

    def test_unknown_configuration_mode(self):
        with pytest.raises(BuilderError, match="unknown configuration mode"):
            SystemBuilder("t").configuration("telepathy")

    def test_connection_needs_a_slave(self):
        builder = (SystemBuilder("t").mesh(1, 2)
                   .add_master("cpu", router=(0, 0))
                   .connect("cpu", [], name="empty"))
        with pytest.raises(BuilderError,
                           match="'empty': needs at least one slave"):
            builder.build()

    def test_duplicate_connection_name(self):
        builder = (SystemBuilder("t").mesh(1, 2)
                   .add_master("a", router=(0, 0))
                   .add_master("b", router=(0, 0))
                   .add_memory("mem", router=(0, 1))
                   .connect("a", "mem", name="c")
                   .connect("b", "mem", name="c"))
        with pytest.raises(BuilderError, match="duplicate connection name"):
            builder.build()


class TestCentralizedConfiguration:
    def test_config_scenario_exposes_manager_and_cnips(self):
        system = scenarios.build("config_system", num_data_nis=2)
        assert system.config_manager is not None
        assert sorted(system.cnip_slaves) == ["ni1", "ni2"]
        assert system.bootstrap_operations == 16
        cycles = system.run_until_idle(
            predicate=system.config_shell.is_idle)
        assert 0 < cycles < 20000
        assert system.config_shell.is_idle()

    def test_centralized_declared_connection_opens_over_noc(self):
        builder = (SystemBuilder("cfg").mesh(1, 2)
                   .configuration("centralized")
                   .add_config_module("cfg", router=(0, 0))
                   .add_node("ni1", router=(0, 1), cnip=True, channels=1)
                   .add_node("ni2", router=(0, 0), cnip=True, channels=1))
        system = builder.build()
        system.run_until_idle(predicate=system.config_shell.is_idle)
        # Open a data connection over the NoC through the manager.
        from repro.config.connection import (
            ChannelEndpointRef, ChannelPairSpec, ConnectionSpec)
        spec = ConnectionSpec(name="d", kind="p2p", pairs=[ChannelPairSpec(
            master=ChannelEndpointRef("ni1", 1),
            slave=ChannelEndpointRef("ni2", 1))])
        handle = system.config_manager.open_connection(spec)
        system.run_until_idle(predicate=system.config_shell.is_idle)
        assert handle.done
        assert system.kernel("ni1").channel(1).regs.enabled


class TestSlotPolicy:
    def test_policy_plumbs_through_to_the_allocator(self):
        system = (SystemBuilder("sp")
                  .mesh(1, 2)
                  .slot_policy("contiguous")
                  .add_master("m", router=(0, 0))
                  .add_memory("s", router=(0, 1))
                  .connect("m", "s", gt=True, slots=3)
                  .build())
        assert system.model.allocator.policy == "contiguous"
        # The GT channels received consecutive injection slots.
        for slots in system.model.allocator.assignment_map().values():
            assert slots == list(range(slots[0], slots[0] + len(slots)))

    def test_default_policy_is_spread(self):
        system = (SystemBuilder("sp").mesh(1, 2)
                  .add_master("m", router=(0, 0))
                  .add_memory("s", router=(0, 1))
                  .connect("m", "s").build())
        assert system.model.allocator.policy == "spread"

    def test_unknown_policy_raises(self):
        with pytest.raises(BuilderError, match="unknown slot policy"):
            SystemBuilder("sp").slot_policy("zigzag")
