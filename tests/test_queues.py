"""Unit tests for the hardware FIFO model (including clock-domain crossing)."""

import pytest

from repro.core.queues import HardwareFifo, QueueError
from repro.sim.engine import Simulator


class TestBasicFifo:
    def test_capacity_must_be_positive(self):
        with pytest.raises(QueueError):
            HardwareFifo(0)

    def test_push_pop_fifo_order(self):
        fifo = HardwareFifo(4)
        for word in (10, 20, 30):
            fifo.push(word)
        assert [fifo.pop() for _ in range(3)] == [10, 20, 30]

    def test_overflow_raises(self):
        fifo = HardwareFifo(2)
        fifo.push(1)
        fifo.push(2)
        assert not fifo.can_push()
        with pytest.raises(QueueError):
            fifo.push(3)

    def test_pop_empty_raises(self):
        with pytest.raises(QueueError):
            HardwareFifo(2).pop()

    def test_space_and_fill_track_contents(self):
        fifo = HardwareFifo(4)
        assert fifo.space == 4
        fifo.push(1)
        assert fifo.space == 3
        assert fifo.fill == 1
        assert fifo.total_fill == 1

    def test_push_many_checks_space(self):
        fifo = HardwareFifo(3)
        fifo.push_many([1, 2])
        with pytest.raises(QueueError):
            fifo.push_many([3, 4])

    def test_pop_many_returns_at_most_available(self):
        fifo = HardwareFifo(4)
        fifo.push_many([1, 2, 3])
        assert fifo.pop_many(10) == [1, 2, 3]
        assert fifo.pop_many(1) == []

    def test_peek_does_not_remove(self):
        fifo = HardwareFifo(4)
        fifo.push(7)
        assert fifo.peek() == 7
        assert fifo.fill == 1

    def test_peek_many(self):
        fifo = HardwareFifo(4)
        fifo.push_many([1, 2, 3])
        assert fifo.peek_many(2) == [1, 2]
        assert fifo.peek_many(10) == [1, 2, 3]

    def test_counters(self):
        fifo = HardwareFifo(4)
        fifo.push_many([1, 2, 3])
        fifo.pop()
        assert fifo.total_pushed == 3
        assert fifo.total_popped == 1
        assert fifo.max_fill_seen == 3

    def test_clear(self):
        fifo = HardwareFifo(4)
        fifo.push_many([1, 2])
        fifo.clear()
        assert fifo.total_fill == 0

    def test_len(self):
        fifo = HardwareFifo(4)
        fifo.push(1)
        assert len(fifo) == 1


class TestClockDomainCrossing:
    def test_word_invisible_until_cdc_delay_elapses(self):
        sim = Simulator()
        fifo = HardwareFifo(4, sim=sim, cdc_delay_ps=4000)
        fifo.push(42)
        # The word occupies space immediately but is not yet readable.
        assert fifo.total_fill == 1
        assert fifo.fill == 0
        assert not fifo.can_pop()
        with pytest.raises(QueueError):
            fifo.pop()
        sim.schedule(4000, lambda: None)
        sim.run()
        assert fifo.fill == 1
        assert fifo.pop() == 42

    def test_partial_visibility(self):
        sim = Simulator()
        fifo = HardwareFifo(4, sim=sim, cdc_delay_ps=1000)
        fifo.push(1)
        sim.schedule(1000, lambda: None)
        sim.run()
        fifo.push(2)  # pushed at t=1000, visible at t=2000
        assert fifo.fill == 1
        assert fifo.pop() == 1

    def test_zero_delay_is_immediately_visible(self):
        fifo = HardwareFifo(4, sim=Simulator(), cdc_delay_ps=0)
        fifo.push(5)
        assert fifo.fill == 1

    def test_negative_delay_rejected(self):
        with pytest.raises(QueueError):
            HardwareFifo(4, cdc_delay_ps=-1)

    def test_space_accounts_for_unsynchronized_words(self):
        sim = Simulator()
        fifo = HardwareFifo(2, sim=sim, cdc_delay_ps=10000)
        fifo.push(1)
        fifo.push(2)
        # The writer sees a full FIFO even though the reader sees nothing yet.
        assert fifo.space == 0
        assert fifo.fill == 0
