"""Unit tests (and property tests) for the Figure 7 message formats."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocol.messages import (
    FLAG_POSTED,
    MessageError,
    RequestMessage,
    ResponseMessage,
    request_from_words,
    response_from_words,
)
from repro.protocol.transactions import Command, ResponseError


class TestRequestMessage:
    def test_write_request_word_count(self):
        msg = RequestMessage(command=Command.WRITE, address=0x40,
                             write_data=[1, 2, 3])
        # header + address + 3 data words
        assert msg.num_words == 5
        assert msg.length == 3
        assert msg.expects_response
        assert msg.response_length == 0

    def test_read_request_word_count(self):
        msg = RequestMessage(command=Command.READ, address=0x40, read_length=8)
        assert msg.num_words == 2
        assert msg.length == 8
        assert msg.response_length == 8

    def test_posted_write_has_no_response(self):
        msg = RequestMessage(command=Command.WRITE_POSTED, address=0,
                             write_data=[1], flags=FLAG_POSTED)
        assert not msg.expects_response

    def test_round_trip_write(self):
        msg = RequestMessage(command=Command.WRITE, address=0xDEADBEEF,
                             write_data=[0xFFFFFFFF, 0, 7], flags=0x5,
                             trans_id=0xAB)
        decoded = request_from_words(msg.to_words())
        assert decoded == msg

    def test_round_trip_read(self):
        msg = RequestMessage(command=Command.READ, address=0x1234,
                             read_length=100, trans_id=3)
        decoded = request_from_words(msg.to_words())
        assert decoded == msg

    def test_words_expected_matches_serialization(self):
        msg = RequestMessage(command=Command.WRITE, address=0, write_data=[1, 2])
        words = msg.to_words()
        assert RequestMessage.words_expected(words[0]) == len(words)
        read = RequestMessage(command=Command.READ, address=0, read_length=9)
        assert RequestMessage.words_expected(read.to_words()[0]) == 2

    def test_field_range_validation(self):
        with pytest.raises(MessageError):
            RequestMessage(command=Command.READ, address=1 << 33, read_length=1)
        with pytest.raises(MessageError):
            RequestMessage(command=Command.READ, address=0, read_length=1,
                           trans_id=300)
        with pytest.raises(MessageError):
            RequestMessage(command=Command.READ, address=0, read_length=1,
                           flags=0x1FF)
        with pytest.raises(MessageError):
            RequestMessage(command=Command.WRITE, address=0,
                           write_data=[0] * 5000)

    def test_malformed_word_streams_rejected(self):
        with pytest.raises(MessageError):
            request_from_words([0])
        msg = RequestMessage(command=Command.WRITE, address=0, write_data=[1, 2])
        with pytest.raises(MessageError):
            request_from_words(msg.to_words()[:-1])   # truncated
        read = RequestMessage(command=Command.READ, address=0, read_length=1)
        with pytest.raises(MessageError):
            request_from_words(read.to_words() + [42])  # trailing junk


class TestResponseMessage:
    def test_read_response_word_count(self):
        msg = ResponseMessage(command=Command.READ, read_data=[1, 2, 3, 4])
        assert msg.num_words == 5
        assert msg.length == 4
        assert msg.ok

    def test_write_ack_is_single_word(self):
        msg = ResponseMessage(command=Command.WRITE, trans_id=9)
        assert msg.num_words == 1

    def test_round_trip(self):
        msg = ResponseMessage(command=Command.READ,
                              error=ResponseError.SLAVE_ERROR,
                              read_data=[7, 8], trans_id=0x44)
        assert response_from_words(msg.to_words()) == msg

    def test_words_expected(self):
        msg = ResponseMessage(command=Command.READ, read_data=[1] * 6)
        assert ResponseMessage.words_expected(msg.to_words()[0]) == 7

    def test_validation(self):
        with pytest.raises(MessageError):
            ResponseMessage(command=Command.READ, trans_id=999)
        with pytest.raises(MessageError):
            response_from_words([])
        msg = ResponseMessage(command=Command.READ, read_data=[1, 2])
        with pytest.raises(MessageError):
            response_from_words(msg.to_words()[:-1])


# ---------------------------------------------------------------------------
# Property-based round-trip tests
# ---------------------------------------------------------------------------
words = st.integers(min_value=0, max_value=0xFFFFFFFF)


@settings(max_examples=60, deadline=None)
@given(address=words,
       data=st.lists(words, min_size=1, max_size=20),
       flags=st.integers(min_value=0, max_value=0xFF),
       trans_id=st.integers(min_value=0, max_value=0xFF),
       posted=st.booleans())
def test_write_request_round_trip_property(address, data, flags, trans_id, posted):
    command = Command.WRITE_POSTED if posted else Command.WRITE
    msg = RequestMessage(command=command, address=address, write_data=data,
                         flags=flags, trans_id=trans_id)
    assert request_from_words(msg.to_words()) == msg


@settings(max_examples=60, deadline=None)
@given(address=words,
       length=st.integers(min_value=1, max_value=0xFFF),
       trans_id=st.integers(min_value=0, max_value=0xFF))
def test_read_request_round_trip_property(address, length, trans_id):
    msg = RequestMessage(command=Command.READ, address=address,
                         read_length=length, trans_id=trans_id)
    decoded = request_from_words(msg.to_words())
    assert decoded == msg
    assert RequestMessage.words_expected(msg.to_words()[0]) == len(msg.to_words())


@settings(max_examples=60, deadline=None)
@given(data=st.lists(words, min_size=0, max_size=20),
       error=st.sampled_from(list(ResponseError)),
       trans_id=st.integers(min_value=0, max_value=0xFF))
def test_response_round_trip_property(data, error, trans_id):
    msg = ResponseMessage(command=Command.READ, error=error, read_data=data,
                          trans_id=trans_id)
    assert response_from_words(msg.to_words()) == msg
