"""Channel-dependency-graph deadlock analysis (repro.analysis.deadlock)."""

import warnings

import pytest

from repro.analysis.deadlock import (
    DeadlockError,
    DeadlockWarning,
    analyze_noc_routes,
    analyze_sequences,
    analyze_strategy,
    assert_deadlock_free,
    channel_dependency_graph,
    find_cycle,
)
from repro.api.builder import BuilderError, SystemBuilder
from repro.ip.traffic import ConstantBitRateTraffic
from repro.network.routing import TableRouting, TorusDimensionOrdered
from repro.network.topology import Topology


def _cbr():
    return ConstantBitRateTraffic(period_cycles=8, burst_words=2, write=True)


class TestDependencyGraph:
    def test_graph_nodes_and_edges(self):
        graph = channel_dependency_graph([
            ("r1", [("a", "b"), ("b", "c")]),
            ("r2", [("b", "c"), ("c", "d")]),
        ])
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 2
        assert graph.edges[("a", "b"), ("b", "c")]["routes"] == ["r1"]

    def test_shared_dependency_records_both_routes(self):
        graph = channel_dependency_graph([
            ("r1", [("a", "b"), ("b", "c")]),
            ("r2", [("a", "b"), ("b", "c")]),
        ])
        assert graph.edges[("a", "b"), ("b", "c")]["routes"] == ["r1", "r2"]

    def test_find_cycle(self):
        graph = channel_dependency_graph([
            ("r1", [("a", "b"), ("b", "c")]),
            ("r2", [("b", "c"), ("c", "a")]),
            ("r3", [("c", "a"), ("a", "b")]),
        ])
        cycle = find_cycle(graph)
        assert cycle is not None and len(cycle) == 3

    def test_single_hop_routes_never_cycle(self):
        report = analyze_sequences([("r", [0, 1]), ("s", [1, 0])])
        assert report.ok and report.num_dependencies == 0


class TestStrategyAnalysis:
    def test_mesh_xy_all_pairs_deadlock_free(self):
        report = analyze_strategy(Topology.mesh(3, 3), "xy")
        assert report.ok
        assert report.num_routes == 72
        assert report.cycle_routes() == []

    def test_ring_shortest_all_pairs_deadlocks(self):
        report = analyze_strategy(Topology.ring(5), "shortest")
        assert not report.ok
        assert report.cycle_routes()
        assert "cycle" in report.describe()

    def test_torus_shortest_all_pairs_deadlocks(self):
        report = analyze_strategy(Topology.torus(4, 4), "shortest")
        assert not report.ok

    @pytest.mark.parametrize("rows,cols", [(3, 3), (4, 4), (5, 5), (2, 5)])
    def test_torus_dimension_ordered_deadlock_free(self, rows, cols):
        report = analyze_strategy(Topology.torus(rows, cols), "torus")
        assert report.ok, report.describe()

    def test_tree_shortest_deadlock_free(self):
        report = analyze_strategy(Topology.tree(2, 3), "shortest")
        assert report.ok

    def test_table_routing_cycle_detected(self):
        ring = Topology.ring(3)
        table = TableRouting({
            (0, 2): [0, 1, 2], (1, 0): [1, 2, 0], (2, 1): [2, 0, 1]})
        report = analyze_strategy(ring, table,
                                  pairs=[(0, 2), (1, 0), (2, 1)])
        assert not report.ok

    def test_table_routing_acyclic_paths_pass(self):
        ring = Topology.ring(4)
        table = TableRouting({
            (0, 2): [0, 1, 2], (1, 3): [1, 0, 3]})
        report = analyze_strategy(ring, table, pairs=[(0, 2), (1, 3)])
        assert report.ok

    def test_assert_deadlock_free(self):
        good = analyze_strategy(Topology.mesh(2, 2), "xy")
        assert assert_deadlock_free(good) is good
        bad = analyze_strategy(Topology.ring(5), "shortest")
        with pytest.raises(DeadlockError, match="cycle"):
            assert_deadlock_free(bad)


def _cyclic_ring_builder(check="warn"):
    """Five BE pairs on a 5-ring, each two hops ahead: the request routes
    chase each other around the ring, so the CDG has a cycle."""
    builder = (SystemBuilder("cyclic_ring")
               .ring(5)
               .options(deadlock_check=check))
    for i in range(5):
        builder.add_master(f"m{i}", router=i, pattern=_cbr(),
                           max_transactions=2)
        builder.add_memory(f"x{i}", router=(i + 2) % 5)
        builder.connect(f"m{i}", f"x{i}")
    return builder


class TestBuilderIntegration:
    def test_cyclic_be_routes_warn_by_default(self):
        with pytest.warns(DeadlockWarning, match="cycle"):
            system = _cyclic_ring_builder().build()
        assert system.deadlock_report is not None
        assert not system.deadlock_report.ok

    def test_error_mode_raises_builder_error(self):
        with pytest.raises(BuilderError, match="deadlock|cycle"):
            _cyclic_ring_builder(check="error").build()

    def test_off_mode_skips_analysis(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeadlockWarning)
            system = _cyclic_ring_builder(check="off").build()
        assert system.deadlock_report is None

    def test_gt_connections_are_exempt(self):
        """The same cyclic routes as GT connections pass: TDMA never blocks."""
        builder = (SystemBuilder("gt_ring")
                   .ring(5)
                   .options(deadlock_check="error"))
        for i in range(5):
            builder.add_master(f"m{i}", router=i, pattern=_cbr(),
                               max_transactions=2)
            builder.add_memory(f"x{i}", router=(i + 2) % 5)
            builder.connect(f"m{i}", f"x{i}", gt=True, slots=1)
        system = builder.build()
        assert system.deadlock_report.ok
        assert system.deadlock_report.num_routes == 0

    def test_table_routing_override_fixes_cycle(self):
        """Per-connection TableRouting can break the cycle the default
        shortest-path routes create."""
        builder = (SystemBuilder("fixed_ring")
                   .ring(5)
                   .options(deadlock_check="error"))
        for i in range(5):
            builder.add_master(f"m{i}", router=i, pattern=_cbr(),
                               max_transactions=2)
            builder.add_memory(f"x{i}", router=(i + 2) % 5)
            # Route every pair through the "line" 0..4 (never crossing the
            # 4-0 wraparound link): monotone segments cannot cycle.
            hi = (i + 2) % 5
            if i + 2 <= 4:
                fwd = list(range(i, i + 3))
            else:  # wrap pairs go backwards along the line instead
                fwd = list(range(i, hi - 1, -1))
            back = list(reversed(fwd))
            table = TableRouting({(fwd[0], fwd[-1]): fwd,
                                  (back[0], back[-1]): back})
            builder.connect(f"m{i}", f"x{i}", routing=table)
        system = builder.build()
        assert system.deadlock_report.ok
        assert system.run_until_idle(max_flit_cycles=20000) > 0
        assert all(handle.done() for handle in system.masters.values())

    def test_invalid_deadlock_check_mode_rejected(self):
        with pytest.raises(BuilderError, match="deadlock_check"):
            SystemBuilder("bad").options(deadlock_check="maybe")

    def test_report_on_noc_routes_names_connections(self):
        with pytest.warns(DeadlockWarning):
            system = _cyclic_ring_builder().build()
        report = system.deadlock_report
        assert any(name.endswith(":request") or name.endswith(":response")
                   for name in report.cycle_routes())
        # The builder report uses the NoC link-id convention.
        rebuilt = analyze_noc_routes(
            system.noc, [("m0", "m0", "x0", None)])
        assert rebuilt.num_channels >= 3
