"""Smoke tests for the tracked perf benchmark suite (benchmarks/perf).

The quick smoke keeps the harness itself from rotting; the full suite run is
marked ``slow`` so ``-m "not slow"`` skips it.
"""

import json
import os
import subprocess
import sys

import pytest

_REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
_RUN_PERF = os.path.join(_REPO_ROOT, "benchmarks", "perf", "run_perf.py")
_SCENARIOS = ("idle_mesh", "saturated_mix", "saturated_grid",
              "saturated_torus", "saturated_dram", "bus_vs_noc")


def _invoke(args, output):
    env = dict(os.environ)
    src = os.path.join(_REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, _RUN_PERF, "--output", str(output)] + args,
        capture_output=True, text=True, env=env, timeout=600)


def _run(args, tmp_path):
    output = tmp_path / "BENCH_PERF.json"
    completed = _invoke(args, output)
    assert completed.returncode == 0, completed.stdout + completed.stderr
    with open(output) as handle:
        return json.load(handle)


def test_quick_smoke(tmp_path):
    report = _run(["--quick"], tmp_path)
    assert report["quick"] is True
    assert set(report["scenarios"]) == set(_SCENARIOS)
    for name in _SCENARIOS:
        entry = report["scenarios"][name]
        assert entry["results_identical"], name
        assert entry["activity"]["executed_events"] > 0
        assert entry["activity"]["median_wall_s"] > 0
    # The headline acceptance criterion, at quick scale.
    assert report["scenarios"]["idle_mesh"]["event_reduction"] >= 10


def test_list_flag_names_every_scenario(tmp_path):
    completed = _invoke(["--list"], tmp_path / "unused.json")
    assert completed.returncode == 0, completed.stderr
    for name in _SCENARIOS:
        assert name in completed.stdout
    assert not (tmp_path / "unused.json").exists()


def test_only_flag_reruns_one_scenario_and_merges(tmp_path):
    report = _run(["--quick"], tmp_path)
    assert set(report["scenarios"]) == set(_SCENARIOS)
    before = report["scenarios"]["idle_mesh"]
    merged = _run(["--quick", "--only", "saturated_dram"], tmp_path)
    # The rerun scenario was refreshed; the others were kept, not dropped.
    assert set(merged["scenarios"]) == set(_SCENARIOS)
    assert merged["scenarios"]["idle_mesh"] == before
    assert merged["scenarios"]["saturated_dram"]["results_identical"]


def test_only_flag_refuses_to_merge_mixed_regimes(tmp_path):
    """A --quick rerun must not be merged into a full-run file: the other
    scenarios' numbers would silently change meaning."""
    output = tmp_path / "BENCH_PERF.json"
    _run(["--quick"], tmp_path)
    with open(output) as handle:
        report = json.load(handle)
    report["quick"] = False
    report["repeats"] = 3
    with open(output, "w") as handle:
        json.dump(report, handle)
    completed = _invoke(["--quick", "--only", "saturated_dram"], output)
    assert completed.returncode != 0
    assert "mixed measurement regimes" in completed.stdout + completed.stderr


def test_only_flag_rejects_unknown_scenario(tmp_path):
    completed = _invoke(["--quick", "--only", "warp_drive"],
                        tmp_path / "out.json")
    assert completed.returncode != 0
    assert "warp_drive" in completed.stdout + completed.stderr


@pytest.mark.slow
def test_full_suite(tmp_path):
    report = _run(["--repeats", "1"], tmp_path)
    assert report["quick"] is False
    assert report["scenarios"]["idle_mesh"]["event_reduction"] >= 10
    for name in _SCENARIOS:
        assert report["scenarios"][name]["results_identical"], name


def test_checked_in_bench_perf_json_is_current_schema():
    """BENCH_PERF.json at the repo root tracks the perf trajectory."""
    path = os.path.join(_REPO_ROOT, "BENCH_PERF.json")
    assert os.path.exists(path), "run benchmarks/perf/run_perf.py"
    with open(path) as handle:
        report = json.load(handle)
    assert set(report["scenarios"]) == set(_SCENARIOS)
    idle = report["scenarios"]["idle_mesh"]
    assert idle["results_identical"]
    assert idle["event_reduction"] >= 10
