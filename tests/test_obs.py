"""repro.obs: probe network, deterministic sampling, timeline exports.

Covers the observability contract end to end: probes attach only when
declared (``SystemBuilder.observe``), captures and triggers behave like
the tracer's migScope semantics, the sampled metric series is identical
across every engine mode (batched/unbatched, activity/always-tick), and
the VCD / Perfetto / JSON-lines exports are pure functions of the run
(pinned by golden fingerprints).
"""

import hashlib
import io
import json

import pytest

from repro.api import scenarios
from repro.api.builder import BuilderError, SystemBuilder
from repro.ip.traffic import ConstantBitRateTraffic
from repro.obs import MetricsSampler, ObsError, Probe
from repro.sim.batching import unbatched
from repro.sim.clock import always_tick

GOLDEN_VCD_SHA = \
    "496dd6daae379f7ca890e06ddb103fca862f565bbd0a50b57cce84cfe26eed94"
GOLDEN_VCD_SIGNALS = 84
GOLDEN_PERFETTO_SHA = \
    "9e52cd1c47c16359f3460536d9d37c09676816f7b3869e743d2b9e5fddaf24ea"
GOLDEN_PERFETTO_EVENTS = 3924


def _small_builder(observe=True, **observe_kwargs):
    builder = (SystemBuilder("obs_unit")
               .mesh(1, 2)
               .add_master("cpu", router=(0, 0),
                           pattern=ConstantBitRateTraffic(
                               period_cycles=12, burst_words=4, write=True),
                           max_transactions=20)
               .add_memory("mem", router=(0, 1), words=4096)
               .connect("cpu", "mem", gt=True, slots=2))
    if observe:
        builder.observe(**observe_kwargs)
    return builder


def _run_obs_tour(**params):
    system = scenarios.build("obs_tour", **params)
    cycles = system.run_until_idle(max_flit_cycles=400000)
    assert cycles < 400000
    return system


class _FakeProbe(Probe):
    """A probe over one mutable value, for unit tests."""

    def __init__(self, capture_depth=4):
        super().__init__("fake", capture_depth)
        self.value = 0
        self._add_reader("v", lambda cycle: self.value, signal=True)
        self._add_reader("total", lambda cycle: cycle, signal=False)


# ---------------------------------------------------------------------------
# Declaration: observe() is opt-in, validated, and otherwise absent
# ---------------------------------------------------------------------------
class TestObserveDeclaration:
    def test_no_observe_means_no_obs(self):
        system = _small_builder(observe=False).build()
        assert system.obs is None
        report = system.report()
        assert "metrics" not in report and "captures" not in report

    def test_observe_attaches_probe_network(self):
        system = _small_builder().build()
        assert system.obs is not None
        names = {probe.name for probe in system.obs}
        # Links, routers and NIs are all covered by default.
        assert any(name.startswith("link.") for name in names)
        assert "router.R(0, 0)" in names and "router.R(0, 1)" in names
        assert "ni.cpu" in names and "ni.mem" in names
        assert "faults" in names

    def test_target_selection(self):
        system = (_small_builder(observe=False)
                  .observe("links").build())
        kinds = {probe.kind for probe in system.obs}
        assert kinds == {"link"}

    def test_unknown_target_rejected(self):
        with pytest.raises(BuilderError, match="unknown observe target"):
            _small_builder(observe=False).observe("caches")

    def test_bad_knobs_rejected(self):
        with pytest.raises(BuilderError, match="period"):
            _small_builder(observe=False).observe(period=0)
        with pytest.raises(BuilderError, match="capture_depth"):
            _small_builder(observe=False).observe(capture_depth=0)
        with pytest.raises(BuilderError, match="series_cap"):
            _small_builder(observe=False).observe(series_cap=1)

    def test_probe_lookup(self):
        system = _small_builder().build()
        assert system.obs.probe("ni.cpu").kind == "ni"
        with pytest.raises(ObsError, match="unknown probe"):
            system.obs.probe("ni.nope")


# ---------------------------------------------------------------------------
# Probe captures: change detection, ring bound, armed trigger
# ---------------------------------------------------------------------------
class TestProbeCaptures:
    def test_captures_only_changes(self):
        probe = _FakeProbe()
        sink = [[], []]
        for cycle in range(4):
            probe.sample(cycle, sink)
        probe.value = 7
        probe.sample(4, sink)
        records = probe.captures()
        # Initial value plus one transition; steady cycles capture nothing.
        assert [(r["cycle"], r["value"], r["prev"]) for r in records] == \
            [(0, 0, None), (4, 7, 0)]
        # Non-signal readers still feed the series columns.
        assert sink[1] == [0, 1, 2, 3, 4]

    def test_capture_ring_is_bounded(self):
        probe = _FakeProbe(capture_depth=3)
        sink = [[], []]
        for cycle in range(10):
            probe.value = cycle
            probe.sample(cycle, sink)
        records = probe.captures()
        assert len(records) == 3
        assert [r["cycle"] for r in records] == [7, 8, 9]

    def test_armed_probe_discards_until_trigger(self):
        probe = _FakeProbe()
        probe.arm(lambda record: record.value >= 5)
        sink = [[], []]
        for cycle in range(8):
            probe.value = cycle
            probe.sample(cycle, sink)
        assert [r["value"] for r in probe.captures()] == [5, 6, 7]
        probe.disarm()
        assert probe.triggered

    def test_disabled_probe_is_inert(self):
        probe = _FakeProbe()
        probe.enabled = False
        sink = [[], []]
        probe.sample(0, sink)
        assert sink == [[], []] and probe.captures() == []

    def test_bad_capture_depth(self):
        with pytest.raises(ObsError, match="capture_depth"):
            _FakeProbe(capture_depth=0)


# ---------------------------------------------------------------------------
# Sampler: stride grid, bounded memory via decimation
# ---------------------------------------------------------------------------
class TestMetricsSampler:
    def test_samples_on_the_stride_grid(self):
        probe = _FakeProbe()
        sampler = MetricsSampler([probe], period=4, series_cap=64)
        for cycle in range(17):
            sampler.tick(cycle)
        assert sampler.cycles == [0, 4, 8, 12, 16]
        assert sampler.barrier.cycle == 20
        assert sampler.metric_names == ["fake.v", "fake.total"]
        assert sampler.column("fake.total") == [0, 4, 8, 12, 16]

    def test_decimation_doubles_stride_and_keeps_grid(self):
        probe = _FakeProbe()
        sampler = MetricsSampler([probe], period=2, series_cap=4)
        for cycle in range(41):
            probe.value = cycle
            sampler.tick(cycle)
        # Overflowing the cap three times doubles the stride each time
        # (2 -> 4 -> 8 -> 16); retained rows always sit on the final grid.
        assert sampler.stride == 16
        assert sampler.decimations == 3
        assert all(cycle % 16 == 0 for cycle in sampler.cycles)
        assert len(sampler.cycles) <= 4 + 1
        # Columns stay row-aligned with the cycles index.
        assert sampler.column("fake.v") == sampler.cycles
        assert sampler.samples_taken == 9

    def test_disabled_probe_contributes_none_rows(self):
        probe = _FakeProbe()
        sampler = MetricsSampler([probe], period=2, series_cap=16)
        sampler.tick(0)
        probe.enabled = False
        sampler.tick(2)
        assert sampler.column("fake.v") == [0, None]

    def test_disabled_sampler_is_idle(self):
        sampler = MetricsSampler([], period=8)
        assert not sampler.is_idle() and sampler.is_quiescent()
        sampler.enabled = False
        assert sampler.is_idle()
        sampler.tick(0)
        assert sampler.cycles == []

    def test_unknown_column_raises_with_known_names(self):
        sampler = MetricsSampler([_FakeProbe()], period=2)
        with pytest.raises(ObsError, match="fake.v"):
            sampler.column("nope")

    def test_bad_knobs(self):
        with pytest.raises(ObsError):
            MetricsSampler([], period=0)
        with pytest.raises(ObsError):
            MetricsSampler([], period=4, series_cap=1)


# ---------------------------------------------------------------------------
# Determinism: series identical in every engine mode; obs changes nothing
# ---------------------------------------------------------------------------
class TestObsDeterminism:
    def _golden(self):
        system = _run_obs_tour()
        return (json.dumps(system.obs.series(), sort_keys=True),
                json.dumps(system.obs.captures(), sort_keys=True),
                json.dumps(system.fingerprint(), sort_keys=True))

    def test_series_identical_batched_vs_unbatched(self):
        base = self._golden()
        with unbatched():
            assert self._golden() == base

    def test_series_identical_activity_vs_always_tick(self):
        base = self._golden()
        with always_tick():
            assert self._golden() == base

    def test_observing_does_not_change_results(self):
        def fingerprint(observe):
            system = _small_builder(observe=observe).build()
            system.run_until_idle()
            return json.dumps(system.fingerprint(), sort_keys=True)

        assert fingerprint(True) == fingerprint(False)


# ---------------------------------------------------------------------------
# Report and structured exports
# ---------------------------------------------------------------------------
class TestReportAndExports:
    def test_report_ties_everything_together(self):
        system = _run_obs_tour()
        report = system.report()
        assert report["system"] == "obs_tour"
        assert report["now_ps"] == system.sim.now
        assert set(report["counters"]) == set(system.kernels)
        assert report["health"]["retries"] > 0
        assert report["metrics"]["cycles"]
        fault_records = report["captures"]["faults"]
        assert [r["signal"] for r in fault_records] == \
            ["transient_start", "transient_end"]
        assert fault_records[0]["cycle"] == 40
        json.dumps(report, sort_keys=True)  # fully serialisable

    def test_dump_jsonl(self):
        system = _run_obs_tour()
        buffer = io.StringIO()
        count = system.obs.dump_jsonl(buffer)
        lines = buffer.getvalue().splitlines()
        assert count == len(lines) > 0
        for line in lines:
            record = json.loads(line)
            assert {"component", "cycle", "signal", "value",
                    "prev"} <= set(record)

    def test_fault_probe_records_window_edges(self):
        system = _run_obs_tour()
        records = system.obs.probe("faults").captures()
        assert records[0]["value"]["drop_probability"] == pytest.approx(0.3)


# ---------------------------------------------------------------------------
# Waveform (VCD) export
# ---------------------------------------------------------------------------
class TestVcdExport:
    def test_vcd_parses_and_matches_golden(self):
        system = _run_obs_tour(traced=True)
        buffer = io.StringIO()
        signals = system.obs.write_vcd(buffer)
        text = buffer.getvalue()
        assert signals == GOLDEN_VCD_SIGNALS
        assert text.count("$var ") == signals
        assert "$timescale 1ps $end" in text
        assert "$dumpvars" in text
        # Timestamps are cycle * flit period, strictly increasing.
        stamps = [int(line[1:]) for line in text.splitlines()
                  if line.startswith("#")]
        period = system.obs.flit_period_ps
        assert stamps == sorted(stamps)
        assert all(stamp % period == 0 for stamp in stamps)
        assert hashlib.sha256(text.encode()).hexdigest() == GOLDEN_VCD_SHA

    def test_vcd_signal_subset(self):
        system = _run_obs_tour()
        buffer = io.StringIO()
        count = system.obs.write_vcd(buffer, signals=["ni.cpu.slot_owner"])
        assert count == 1
        assert "slot_owner" in buffer.getvalue()


# ---------------------------------------------------------------------------
# Chrome/Perfetto trace_event export
# ---------------------------------------------------------------------------
class TestPerfettoExport:
    def test_perfetto_parses_and_matches_golden(self):
        system = _run_obs_tour(traced=True)
        events = system.tracer.events
        trace = system.obs.perfetto(events)
        assert trace["displayTimeUnit"] == "ns"
        rows = trace["traceEvents"]
        assert len(rows) == GOLDEN_PERFETTO_EVENTS
        spans = [row for row in rows if row.get("ph") == "X"]
        formed = [e for e in events if e.kind == "packet_formed"]
        delivered = [e for e in events if e.kind == "packet_delivered"]
        # Every delivered packet reconstructs one inject->deliver span.
        assert len(spans) == len(delivered) > 0
        assert len(formed) >= len(delivered)
        for span in spans:
            assert span["dur"] >= 0
            assert span["args"]["hops"] >= 0
        blob = json.dumps(trace, sort_keys=True)
        assert hashlib.sha256(blob.encode()).hexdigest() == \
            GOLDEN_PERFETTO_SHA

    def test_packet_ids_are_run_local(self):
        # The export depends only on the events passed in, not on the
        # process-global packet counter: two identical runs export
        # identically even though their raw packet ids differ.
        def export():
            system = _run_obs_tour(traced=True)
            return json.dumps(system.obs.perfetto(system.tracer.events),
                              sort_keys=True)

        assert export() == export()

    def test_write_perfetto_to_path(self, tmp_path):
        system = _run_obs_tour(traced=True)
        target = tmp_path / "trace.json"
        count = system.obs.write_perfetto(system.tracer.events, str(target))
        with open(target) as handle:
            trace = json.load(handle)
        assert count == len(trace["traceEvents"])
