"""Unit tests for topologies, port maps and source-route computation."""

import pytest

from repro.network.routing import (
    RouteError,
    compute_route,
    ports_from_router_sequence,
    route_hop_count,
    router_sequence_shortest,
    router_sequence_xy,
    xy_route,
)
from repro.network.topology import (
    Topology,
    TopologyError,
    attach_points,
    build_port_map,
    mesh_coordinates,
)


class TestTopology:
    def test_mesh_size_and_connectivity(self):
        topo = Topology.mesh(2, 3)
        assert topo.num_routers == 6
        assert topo.is_connected()
        assert topo.degree((0, 0)) == 2
        assert topo.degree((0, 1)) == 3

    def test_mesh_invalid_dimensions(self):
        with pytest.raises(TopologyError):
            Topology.mesh(0, 3)

    def test_ring(self):
        topo = Topology.ring(5)
        assert topo.num_routers == 5
        assert all(topo.degree(n) == 2 for n in topo.routers)

    def test_single_router(self):
        topo = Topology.single_router()
        assert topo.num_routers == 1
        assert topo.diameter() == 0

    def test_self_loop_rejected(self):
        topo = Topology()
        topo.add_router("a")
        with pytest.raises(TopologyError):
            topo.connect("a", "a")

    def test_shortest_path(self):
        topo = Topology.mesh(1, 4)
        path = topo.shortest_path((0, 0), (0, 3))
        assert path == [(0, 0), (0, 1), (0, 2), (0, 3)]

    def test_shortest_path_unknown_node(self):
        topo = Topology.mesh(1, 2)
        with pytest.raises(TopologyError):
            topo.shortest_path((0, 0), (5, 5))

    def test_no_path_raises(self):
        topo = Topology()
        topo.add_router("a")
        topo.add_router("b")
        with pytest.raises(TopologyError):
            topo.shortest_path("a", "b")

    def test_neighbors_unknown_node(self):
        with pytest.raises(TopologyError):
            Topology.mesh(1, 2).neighbors((9, 9))

    def test_diameter_of_mesh(self):
        assert Topology.mesh(2, 2).diameter() == 2
        assert Topology.mesh(3, 3).diameter() == 4

    def test_mesh_coordinates_helper(self):
        assert mesh_coordinates((1, 2)) == (1, 2)
        with pytest.raises(TopologyError):
            mesh_coordinates("router0")

    def test_attach_points_round_robin(self):
        topo = Topology.mesh(1, 2)
        mapping = attach_points(topo, ["a", "b", "c"])
        assert len(mapping) == 3
        assert mapping["a"] != mapping["b"]
        assert mapping["a"] == mapping["c"]


class TestPortMap:
    def test_neighbor_ports_then_locals(self):
        topo = Topology.mesh(1, 2)
        port_map = build_port_map(topo, {(0, 0): 2, (0, 1): 1})
        # (0,0) has one neighbour -> port 0, then locals 1 and 2.
        assert port_map.port_toward((0, 0), (0, 1)) == 0
        assert port_map.local_ports[(0, 0)] == [1, 2]
        assert port_map.num_ports[(0, 0)] == 3
        assert port_map.local_port((0, 1), 0) == 1

    def test_default_one_local_port(self):
        topo = Topology.mesh(1, 2)
        port_map = build_port_map(topo)
        assert port_map.num_ports[(0, 0)] == 2

    def test_missing_local_port_raises(self):
        topo = Topology.mesh(1, 2)
        port_map = build_port_map(topo, {(0, 0): 1})
        with pytest.raises(TopologyError):
            port_map.local_port((0, 0), 5)

    def test_unknown_neighbor_raises(self):
        topo = Topology.mesh(1, 2)
        port_map = build_port_map(topo)
        with pytest.raises(TopologyError):
            port_map.port_toward((0, 0), (5, 5))


class TestRouting:
    def setup_method(self):
        self.topo = Topology.mesh(2, 3)
        self.port_map = build_port_map(self.topo, {n: 1 for n in self.topo.routers})

    def test_xy_sequence_goes_x_first(self):
        sequence = router_sequence_xy(self.topo, (0, 0), (1, 2))
        assert sequence == [(0, 0), (0, 1), (0, 2), (1, 2)]

    def test_xy_sequence_same_router(self):
        assert router_sequence_xy(self.topo, (1, 1), (1, 1)) == [(1, 1)]

    def test_shortest_sequence_length(self):
        sequence = router_sequence_shortest(self.topo, (0, 0), (1, 2))
        assert len(sequence) == 4

    def test_ports_from_sequence_ends_with_local_port(self):
        sequence = [(0, 0), (0, 1)]
        local = self.port_map.local_port((0, 1), 0)
        route = ports_from_router_sequence(self.port_map, sequence, local)
        assert len(route) == 2
        assert route[-1] == local
        assert route[0] == self.port_map.port_toward((0, 0), (0, 1))

    def test_empty_sequence_rejected(self):
        with pytest.raises(RouteError):
            ports_from_router_sequence(self.port_map, [], 0)

    def test_xy_route_hop_count(self):
        local = self.port_map.local_port((1, 2), 0)
        route = xy_route(self.topo, self.port_map, (0, 0), (1, 2), local)
        assert route_hop_count(route) == 4

    def test_compute_route_auto_uses_xy_on_mesh(self):
        local = self.port_map.local_port((1, 2), 0)
        auto = compute_route(self.topo, self.port_map, (0, 0), (1, 2), local)
        xy = compute_route(self.topo, self.port_map, (0, 0), (1, 2), local,
                           algorithm="xy")
        assert auto == xy

    def test_compute_route_shortest_on_non_mesh(self):
        ring = Topology.ring(4)
        port_map = build_port_map(ring, {n: 1 for n in ring.routers})
        local = port_map.local_port(2, 0)
        route = compute_route(ring, port_map, 0, 2, local)
        assert route_hop_count(route) == 3

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(RouteError):
            compute_route(self.topo, self.port_map, (0, 0), (0, 1), 0,
                          algorithm="magic")

    def test_single_router_route_is_just_local_port(self):
        topo = Topology.single_router()
        port_map = build_port_map(topo, {0: 2})
        route = compute_route(topo, port_map, 0, 0, port_map.local_port(0, 1))
        assert route == (port_map.local_port(0, 1),)
