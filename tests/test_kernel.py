"""Unit tests for the NI kernel: packetization, scheduling, flow control.

Two kernels are connected back to back by a pair of links (no router) and
clocked manually, which exposes the kernel's cycle behaviour directly.
"""

import pytest

from repro.core.channel import FlowControlError
from repro.core.kernel import NIKernel
from repro.core.registers import RegisterError
from repro.network.link import Link
from repro.network.packet import MAX_HEADER_CREDITS
from repro.sim.clock import Clock
from repro.sim.engine import Simulator


class KernelPair:
    """Two kernels joined by two links, driven by one flit clock."""

    def __init__(self, num_slots=8, queue_words=8, max_packet_words=23,
                 be_arbiter="round_robin", channels=1):
        self.sim = Simulator()
        self.clock = Clock(self.sim, 500.0 / 3.0, name="flit")
        self.a = NIKernel("A", self.sim, num_slots=num_slots,
                          max_packet_words=max_packet_words,
                          be_arbiter=be_arbiter,
                          flit_period_ps=self.clock.period_ps)
        self.b = NIKernel("B", self.sim, num_slots=num_slots,
                          max_packet_words=max_packet_words,
                          flit_period_ps=self.clock.period_ps)
        for _ in range(channels):
            self.a.add_channel(queue_words, queue_words, cdc_cycles=0)
            self.b.add_channel(queue_words, queue_words, cdc_cycles=0)
        self.a.add_port("p", list(range(channels)))
        self.b.add_port("p", list(range(channels)))
        ab = Link("a->b")
        ba = Link("b->a")
        self.a.attach_links(to_network=ab, from_network=ba)
        self.b.attach_links(to_network=ba, from_network=ab)
        for component in (self.a, self.b, ab, ba):
            self.clock.add_component(component)

    def open_channel(self, index=0, gt=False, slots=(), queue_words=8):
        for kernel, peer in ((self.a, self.b), (self.b, self.a)):
            channel = kernel.channel(index)
            channel.regs.enabled = True
            channel.regs.gt = gt
            channel.regs.path = ()
            channel.regs.remote_qid = index
            channel.space = peer.channel(index).dest_queue.capacity
        for slot in slots:
            self.a.slot_table.reserve(slot, index)

    def run(self, cycles):
        self.clock.start()
        self.sim.run_for(cycles * self.clock.period_ps)


class TestBestEffortTransfer:
    def test_words_are_delivered_in_order(self):
        pair = KernelPair()
        pair.open_channel()
        words = list(range(6))
        pair.a.port("p").channel(0).source_queue.push_many(words)
        pair.run(20)
        received = [pair.b.port("p").pop(0) for _ in range(6)]
        assert received == words

    def test_space_decreases_when_sending_and_recovers_with_credits(self):
        pair = KernelPair()
        pair.open_channel()
        channel_a = pair.a.channel(0)
        initial_space = channel_a.space
        pair.a.port("p").channel(0).source_queue.push_many([1, 2, 3, 4])
        pair.run(10)
        assert channel_a.space == initial_space - 4
        # Consuming at B produces credits that return to A (piggybacked on a
        # credit-only packet since B has no data to send).
        for _ in range(4):
            pair.b.port("p").pop(0)
        pair.run(20)
        assert channel_a.space == initial_space

    def test_sender_never_overflows_destination_queue(self):
        pair = KernelPair(queue_words=4)
        pair.open_channel()
        # Push more than the destination can hold; without consuming, only the
        # destination capacity may be transferred.
        source = pair.a.channel(0).source_queue
        source.push_many([1, 2, 3, 4])
        pair.run(30)
        source.push_many([5, 6, 7, 8])
        pair.run(30)
        assert pair.b.channel(0).dest_queue.total_fill == 4
        assert pair.a.channel(0).space == 0

    def test_credits_are_piggybacked_on_reverse_data(self):
        pair = KernelPair()
        pair.open_channel()
        # A -> B data, then B -> A data; B's packet must carry credits.
        pair.a.channel(0).source_queue.push_many([1, 2])
        pair.run(10)
        pair.b.port("p").pop(0)
        pair.b.port("p").pop(0)
        pair.b.channel(0).source_queue.push_many([9])
        pair.run(10)
        assert pair.a.channel(0).space == pair.b.channel(0).dest_queue.capacity
        assert pair.a.stats.counter("credits_received").value >= 2

    def test_data_threshold_defers_small_packets(self):
        pair = KernelPair()
        pair.open_channel()
        pair.a.channel(0).regs.data_threshold = 4
        pair.a.channel(0).source_queue.push_many([1, 2])
        pair.run(20)
        assert pair.b.channel(0).dest_queue.total_fill == 0
        pair.a.channel(0).source_queue.push_many([3, 4])
        pair.run(20)
        assert pair.b.channel(0).dest_queue.total_fill == 4

    def test_flush_overrides_data_threshold(self):
        pair = KernelPair()
        pair.open_channel()
        pair.a.channel(0).regs.data_threshold = 6
        pair.a.port("p").push(0, 1)
        pair.a.port("p").push(0, 2)
        pair.run(10)
        assert pair.b.channel(0).dest_queue.total_fill == 0
        pair.a.port("p").flush(0)
        pair.run(10)
        assert pair.b.channel(0).dest_queue.total_fill == 2

    def test_credit_threshold_batches_credit_only_packets(self):
        pair = KernelPair()
        pair.open_channel()
        pair.b.channel(0).regs.credit_threshold = 4
        pair.a.channel(0).source_queue.push_many([1, 2, 3])
        pair.run(10)
        for _ in range(3):
            pair.b.port("p").pop(0)
        pair.run(20)
        # Only 3 credits accumulated, threshold is 4: nothing returned yet.
        assert pair.a.channel(0).space == pair.b.channel(0).dest_queue.capacity - 3
        pair.a.channel(0).source_queue.push_many([4])
        pair.run(10)
        pair.b.port("p").pop(0)
        pair.run(20)
        assert pair.a.channel(0).space == pair.b.channel(0).dest_queue.capacity

    def test_packet_payload_bounded_by_max_packet_words(self):
        pair = KernelPair(max_packet_words=4, queue_words=16)
        pair.open_channel(queue_words=16)
        pair.a.channel(0).space = 16
        pair.a.channel(0).source_queue.push_many(list(range(12)))
        pair.run(30)
        histogram = pair.a.stats.histogram("packet_payload_words")
        assert histogram.maximum <= 4
        assert pair.a.stats.counter("be_packets_sent").value >= 3

    def test_round_robin_across_two_be_channels(self):
        pair = KernelPair(channels=2)
        pair.open_channel(0)
        pair.open_channel(1)
        pair.a.channel(0).source_queue.push_many([1, 2])
        pair.a.channel(1).source_queue.push_many([3, 4])
        pair.run(20)
        assert pair.b.channel(0).dest_queue.total_fill == 2
        assert pair.b.channel(1).dest_queue.total_fill == 2


class TestGuaranteedTransfer:
    def test_gt_channel_only_uses_reserved_slots(self):
        pair = KernelPair()
        pair.open_channel(gt=True, slots=(0,))
        pair.a.channel(0).source_queue.push_many(list(range(8)))
        pair.run(16)  # two slot-table revolutions
        # One slot in 8, two revolutions, up to 2 payload words per head flit.
        sent = pair.a.stats.counter("gt_packets_sent").value
        assert 1 <= sent <= 3
        assert pair.a.stats.counter("be_packets_sent").value == 0

    def test_gt_packets_span_consecutive_slots(self):
        pair = KernelPair()
        pair.open_channel(gt=True, slots=(0, 1, 2))
        pair.a.channel(0).source_queue.push_many(list(range(8)))
        pair.run(9)
        # A single packet of up to 3 flits (8 payload words) fits in the
        # consecutive reservation run.
        assert pair.a.stats.counter("gt_packets_sent").value == 1
        assert pair.a.stats.counter("gt_flits_sent").value == 3

    def test_unused_gt_slot_falls_back_to_best_effort(self):
        pair = KernelPair(channels=2)
        pair.open_channel(0, gt=True, slots=tuple(range(8)))   # all slots GT
        pair.open_channel(1, gt=False)
        # The GT channel has nothing to send; the BE channel must still move.
        pair.a.channel(1).source_queue.push_many([7, 8, 9])
        pair.run(20)
        assert pair.b.channel(1).dest_queue.total_fill == 3

    def test_gt_and_be_share_the_link(self):
        pair = KernelPair(channels=2)
        pair.open_channel(0, gt=True, slots=(0, 4))
        pair.open_channel(1, gt=False)
        pair.a.channel(0).source_queue.push_many(list(range(8)))
        pair.a.channel(1).source_queue.push_many(list(range(8)))
        pair.run(40)
        assert pair.b.channel(0).dest_queue.total_fill == 8
        assert pair.b.channel(1).dest_queue.total_fill == 8


class TestKernelErrors:
    def test_packet_to_unknown_queue_rejected(self):
        pair = KernelPair()
        pair.open_channel()
        pair.a.channel(0).regs.remote_qid = 5
        pair.a.channel(0).source_queue.push(1)
        with pytest.raises(RegisterError):
            pair.run(10)

    def test_flow_control_violation_detected(self):
        pair = KernelPair(queue_words=4)
        pair.open_channel()
        # Lie about the remote buffer size: the destination queue overflows.
        pair.a.channel(0).space = 100
        pair.a.channel(0).source_queue.push_many([1, 2, 3, 4])
        pair.run(10)
        pair.a.channel(0).source_queue.push_many([5, 6, 7, 8])
        with pytest.raises(FlowControlError):
            pair.run(30)

    def test_constructor_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            NIKernel("x", sim, num_slots=0)
        with pytest.raises(ValueError):
            NIKernel("x", sim, max_packet_words=0)

    def test_unknown_port_and_channel(self):
        kernel = NIKernel("x", Simulator())
        with pytest.raises(RegisterError):
            kernel.channel(0)
        with pytest.raises(KeyError):
            kernel.port("nope")

    def test_duplicate_port_name_rejected(self):
        kernel = NIKernel("x", Simulator())
        kernel.add_channel()
        kernel.add_port("p", [0])
        with pytest.raises(ValueError):
            kernel.add_port("p", [0])

    def test_queue_words_total(self):
        kernel = NIKernel("x", Simulator())
        kernel.add_channel(8, 8)
        kernel.add_channel(4, 4)
        assert kernel.queue_words_total() == 24

    def test_credits_bounded_by_header_field(self):
        pair = KernelPair(queue_words=64)
        pair.open_channel(queue_words=64)
        # Accumulate many credits at B, then let them flow back to A.
        pair.a.channel(0).source_queue.push_many(list(range(40)))
        pair.run(60)
        popped = pair.b.port("p").pop_many(0, 40)
        assert len(popped) == 40
        pair.run(20)
        # All credits eventually return (conservation) ...
        assert pair.a.channel(0).space == 64
        # ... but no single header can carry more than MAX_HEADER_CREDITS, so
        # returning 40 credits needs at least two packets from B.
        assert pair.b.stats.counter("credits_sent").value == 40
        assert pair.b.stats.counter("be_packets_sent").value >= 2
        assert 40 > MAX_HEADER_CREDITS
