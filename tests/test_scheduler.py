"""Unit tests for the best-effort channel arbiters."""

import pytest

from repro.core.channel import Channel
from repro.core.scheduler import (
    QueueFillArbiter,
    RoundRobinArbiter,
    WeightedRoundRobinArbiter,
    available_arbiters,
    make_arbiter,
)


def make_channels(count):
    channels = []
    for index in range(count):
        channel = Channel(index=index, name=f"ch{index}")
        channel.regs.enabled = True
        channel.space = 100
        channels.append(channel)
    return channels


class TestRoundRobin:
    def test_cycles_through_eligible_channels(self):
        arbiter = RoundRobinArbiter()
        channels = make_channels(3)
        grants = [arbiter.select([0, 1, 2], channels) for _ in range(6)]
        assert grants == [0, 1, 2, 0, 1, 2]

    def test_skips_ineligible_channels(self):
        arbiter = RoundRobinArbiter()
        channels = make_channels(4)
        grants = [arbiter.select([1, 3], channels) for _ in range(4)]
        assert grants == [1, 3, 1, 3]

    def test_empty_eligible_returns_none(self):
        assert RoundRobinArbiter().select([], make_channels(2)) is None

    def test_continues_after_the_last_grant(self):
        arbiter = RoundRobinArbiter()
        channels = make_channels(3)
        assert arbiter.select([0, 1, 2], channels) == 0
        # Channel 1 temporarily has nothing to send.
        assert arbiter.select([2], channels) == 2
        assert arbiter.select([0, 1, 2], channels) == 0


class TestWeightedRoundRobin:
    def test_weights_give_consecutive_grants(self):
        arbiter = WeightedRoundRobinArbiter(weights={0: 3, 1: 1})
        channels = make_channels(2)
        grants = [arbiter.select([0, 1], channels) for _ in range(8)]
        assert grants == [0, 0, 0, 1, 0, 0, 0, 1]

    def test_default_weight_behaves_like_round_robin(self):
        arbiter = WeightedRoundRobinArbiter()
        channels = make_channels(2)
        grants = [arbiter.select([0, 1], channels) for _ in range(4)]
        assert grants == [0, 1, 0, 1]

    def test_current_channel_losing_eligibility_moves_on(self):
        arbiter = WeightedRoundRobinArbiter(weights={0: 4})
        channels = make_channels(2)
        assert arbiter.select([0, 1], channels) == 0
        assert arbiter.select([1], channels) == 1

    def test_invalid_default_weight(self):
        with pytest.raises(ValueError):
            WeightedRoundRobinArbiter(default_weight=0)

    def test_empty_eligible_resets_state(self):
        arbiter = WeightedRoundRobinArbiter(weights={0: 2})
        channels = make_channels(2)
        arbiter.select([0, 1], channels)
        assert arbiter.select([], channels) is None
        assert arbiter.select([1], channels) == 1


class TestQueueFill:
    def test_grants_fullest_channel(self):
        arbiter = QueueFillArbiter()
        channels = make_channels(3)
        channels[0].source_queue.push_many([1])
        channels[1].source_queue.push_many([1, 2, 3, 4])
        channels[2].source_queue.push_many([1, 2])
        assert arbiter.select([0, 1, 2], channels) == 1

    def test_sendable_limited_by_space(self):
        arbiter = QueueFillArbiter()
        channels = make_channels(2)
        channels[0].source_queue.push_many([1, 2, 3, 4])
        channels[0].space = 1              # only one word sendable
        channels[1].source_queue.push_many([1, 2])
        assert arbiter.select([0, 1], channels) == 1

    def test_tie_breaks_on_lowest_index(self):
        arbiter = QueueFillArbiter()
        channels = make_channels(2)
        channels[0].source_queue.push_many([1, 2])
        channels[1].source_queue.push_many([3, 4])
        assert arbiter.select([0, 1], channels) == 0

    def test_credit_only_channel_can_be_granted(self):
        arbiter = QueueFillArbiter()
        channels = make_channels(2)
        channels[1].add_credit(3)
        assert arbiter.select([1], channels) == 1


class TestFactory:
    def test_make_arbiter_by_name(self):
        assert isinstance(make_arbiter("round_robin"), RoundRobinArbiter)
        assert isinstance(make_arbiter("weighted_round_robin"),
                          WeightedRoundRobinArbiter)
        assert isinstance(make_arbiter("queue_fill"), QueueFillArbiter)

    def test_unknown_arbiter_rejected(self):
        with pytest.raises(ValueError):
            make_arbiter("lottery")

    def test_available_arbiters_lists_all(self):
        assert set(available_arbiters()) == {"round_robin",
                                             "weighted_round_robin",
                                             "queue_fill"}
