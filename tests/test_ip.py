"""Unit tests for the IP-module models: traffic patterns, memories, slaves."""

import pytest

from repro.ip.memory import MemoryRangeError, SharedMemory
from repro.ip.slave import MemorySlave, RegisterSlave
from repro.ip.traffic import (
    BurstyTraffic,
    ConstantBitRateTraffic,
    RandomTraffic,
    VideoLineTraffic,
    merge_patterns,
)
from repro.protocol.transactions import Command, ResponseError, Transaction


class TestSharedMemory:
    def test_read_default_fill(self):
        memory = SharedMemory(fill=0xAA)
        assert memory.read(0x10) == 0xAA

    def test_write_then_read(self):
        memory = SharedMemory()
        memory.write(4, 123)
        assert memory.read(4) == 123
        assert memory.reads == 1 and memory.writes == 1

    def test_burst_round_trip(self):
        memory = SharedMemory()
        memory.write_burst(0x100, [1, 2, 3])
        assert memory.read_burst(0x100, 3) == [1, 2, 3]

    def test_bounds_enforced_when_sized(self):
        memory = SharedMemory(size_words=16)
        memory.write(15, 1)
        with pytest.raises(MemoryRangeError):
            memory.write(16, 1)
        with pytest.raises(MemoryRangeError):
            memory.read(-1)

    def test_values_masked_to_32_bits(self):
        memory = SharedMemory()
        memory.write(0, 1 << 36)
        assert memory.read(0) == 0


class TestMemorySlave:
    def test_executes_after_latency(self):
        slave = MemorySlave("m", latency_cycles=3)
        slave.enqueue(Transaction.write(0, [5]))
        slave.tick(0)
        assert slave.pop_response() is None
        slave.tick(3)
        txn, response = slave.pop_response()
        assert response.ok
        assert slave.memory.read(0) == 5
        del txn

    def test_zero_latency_executes_same_tick(self):
        slave = MemorySlave("m", latency_cycles=0)
        slave.enqueue(Transaction.read(0, 1))
        slave.tick(0)
        assert slave.pop_response() is not None

    def test_read_returns_memory_contents(self):
        slave = MemorySlave("m", latency_cycles=0)
        slave.memory.write(8, 77)
        slave.enqueue(Transaction.read(8, 1))
        slave.tick(0)
        _, response = slave.pop_response()
        assert response.read_data == [77]

    def test_out_of_range_reports_error(self):
        slave = MemorySlave("m", memory=SharedMemory(size_words=4),
                            latency_cycles=0)
        slave.enqueue(Transaction.read(100, 1))
        slave.tick(0)
        _, response = slave.pop_response()
        assert response.error == ResponseError.DECODE_ERROR

    def test_throughput_limit_per_cycle(self):
        slave = MemorySlave("m", latency_cycles=0, transactions_per_cycle=1)
        slave.enqueue(Transaction.read(0, 1))
        slave.enqueue(Transaction.read(4, 1))
        slave.tick(0)
        assert slave.pop_response() is not None
        assert slave.pop_response() is None
        slave.tick(1)
        assert slave.pop_response() is not None

    def test_responses_in_fifo_order(self):
        slave = MemorySlave("m", latency_cycles=0, transactions_per_cycle=4)
        first = Transaction.read(0, 1)
        second = Transaction.read(4, 1)
        slave.enqueue(first)
        slave.enqueue(second)
        slave.tick(0)
        assert slave.pop_response()[0] is first
        assert slave.pop_response()[0] is second

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            MemorySlave("m", latency_cycles=-1)
        with pytest.raises(ValueError):
            MemorySlave("m", transactions_per_cycle=0)


class TestRegisterSlave:
    def test_read_write(self):
        slave = RegisterSlave("r", num_registers=4)
        slave.enqueue(Transaction.write(1, [11, 22]))
        slave.pop_response()
        slave.enqueue(Transaction.read(1, 2))
        _, response = slave.pop_response()
        assert response.read_data == [11, 22]

    def test_out_of_range(self):
        slave = RegisterSlave("r", num_registers=2)
        slave.enqueue(Transaction.read(1, 2))
        _, response = slave.pop_response()
        assert response.error == ResponseError.DECODE_ERROR

    def test_needs_at_least_one_register(self):
        with pytest.raises(ValueError):
            RegisterSlave("r", num_registers=0)


class TestTrafficPatterns:
    def test_cbr_period_and_burst(self):
        pattern = ConstantBitRateTraffic(period_cycles=4, burst_words=2)
        issued = [pattern.transactions_for_cycle(c) for c in range(8)]
        counts = [len(x) for x in issued]
        assert counts == [1, 0, 0, 0, 1, 0, 0, 0]
        assert issued[0][0].burst_length == 2
        assert pattern.expected_words_per_cycle() == pytest.approx(0.5)

    def test_cbr_read_mode(self):
        pattern = ConstantBitRateTraffic(period_cycles=2, burst_words=4,
                                         write=False)
        txn = pattern.transactions_for_cycle(0)[0]
        assert txn.command == Command.READ
        assert txn.read_length == 4

    def test_cbr_addresses_stride_and_wrap(self):
        pattern = ConstantBitRateTraffic(period_cycles=1, burst_words=1,
                                         address_stride=4, address_wrap=8)
        addresses = [pattern.transactions_for_cycle(c)[0].address
                     for c in range(4)]
        assert addresses == [0, 4, 0, 4]

    def test_cbr_start_cycle(self):
        pattern = ConstantBitRateTraffic(period_cycles=2, start_cycle=6)
        assert pattern.transactions_for_cycle(4) == []
        assert len(pattern.transactions_for_cycle(6)) == 1

    def test_cbr_validation(self):
        with pytest.raises(ValueError):
            ConstantBitRateTraffic(period_cycles=0)
        with pytest.raises(ValueError):
            ConstantBitRateTraffic(period_cycles=1, burst_words=0)

    def test_bursty_duty_cycle(self):
        pattern = BurstyTraffic(on_cycles=2, off_cycles=6, burst_words=1)
        counts = [len(pattern.transactions_for_cycle(c)) for c in range(16)]
        assert sum(counts) == 4
        assert counts[0] == 1 and counts[1] == 1 and counts[2] == 0
        assert pattern.expected_words_per_cycle() == pytest.approx(0.25)

    def test_random_traffic_is_deterministic_per_seed(self):
        a = RandomTraffic(0.3, seed=7)
        b = RandomTraffic(0.3, seed=7)
        for cycle in range(50):
            ta = a.transactions_for_cycle(cycle)
            tb = b.transactions_for_cycle(cycle)
            assert len(ta) == len(tb)
            if ta:
                assert ta[0].command == tb[0].command
                assert ta[0].address == tb[0].address

    def test_random_traffic_rate_matches_probability(self):
        pattern = RandomTraffic(0.5, burst_words=1, seed=3)
        injected = sum(len(pattern.transactions_for_cycle(c))
                       for c in range(2000))
        assert 800 < injected < 1200

    def test_random_traffic_validation(self):
        with pytest.raises(ValueError):
            RandomTraffic(1.5)
        with pytest.raises(ValueError):
            RandomTraffic(0.5, read_fraction=2.0)

    def test_video_line_structure(self):
        pattern = VideoLineTraffic(pixels_per_line=16, burst_words=8,
                                   cycles_per_burst=4, blanking_cycles=8)
        line_cycles = pattern.line_cycles
        transactions = []
        for cycle in range(line_cycles):
            transactions.extend(pattern.transactions_for_cycle(cycle))
        assert len(transactions) == 2                       # two bursts per line
        assert sum(t.burst_length for t in transactions) == 16
        assert pattern.expected_words_per_cycle() == pytest.approx(16 / line_cycles)

    def test_video_line_addresses_advance_per_line(self):
        pattern = VideoLineTraffic(pixels_per_line=8, burst_words=8,
                                   cycles_per_burst=4, blanking_cycles=4)
        first_line = pattern.transactions_for_cycle(0)[0]
        second_line = pattern.transactions_for_cycle(pattern.line_cycles)[0]
        assert second_line.address == first_line.address + 8 * 4

    def test_merge_patterns(self):
        patterns = [ConstantBitRateTraffic(period_cycles=1, burst_words=1),
                    ConstantBitRateTraffic(period_cycles=1, burst_words=2)]
        merged = list(merge_patterns(patterns, cycle=0))
        assert len(merged) == 2
