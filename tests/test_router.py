"""Unit tests for the GT/BE router."""

import pytest

from repro.network.link import Link
from repro.network.packet import Packet, PacketError, PacketHeader, packet_to_flits
from repro.network.router import BufferOverflowError, Router, SlotConflictError
from repro.network.slot_table import RouterSlotTable


def make_packet(path, payload_words=2, gt=False, qid=0, channel_key=None):
    header = PacketHeader(path=path, remote_qid=qid, is_gt=gt,
                          channel_key=channel_key)
    return Packet(header, list(range(payload_words)))


class RouterHarness:
    """A router with links on every port and manual clocking.

    Each :meth:`step` performs one flit cycle: input links commit the flits
    injected during the previous step, the router ticks, output links commit,
    and everything that appeared on the outputs is collected.
    """

    def __init__(self, num_ports=3, **kwargs):
        self.router = Router("R", num_ports, **kwargs)
        self.num_ports = num_ports
        self.in_links = []
        self.out_links = []
        for port in range(num_ports):
            in_link = Link(f"in{port}")
            out_link = Link(f"out{port}")
            self.router.connect_input(port, in_link)
            self.router.connect_output(port, out_link)
            self.in_links.append(in_link)
            self.out_links.append(out_link)
        self.cycle = 0
        self.collected = {port: [] for port in range(num_ports)}

    def inject(self, port, flit):
        self.in_links[port].send(flit)

    def step(self):
        for link in self.in_links:
            link.post_tick(self.cycle)
        self.router.tick(self.cycle)
        for port, link in enumerate(self.out_links):
            link.post_tick(self.cycle)
            flit = link.take()
            if flit is not None:
                self.collected[port].append(flit)
        self.cycle += 1

    def run(self, cycles):
        for _ in range(cycles):
            self.step()

    def output(self, port):
        return self.collected[port]


class TestGTForwarding:
    def test_gt_flit_forwarded_in_one_cycle(self):
        harness = RouterHarness()
        flit = packet_to_flits(make_packet(path=(2,), gt=True))[0]
        harness.inject(0, flit)
        harness.step()
        assert harness.output(2) == [flit]

    def test_gt_multiflit_packet_keeps_order_and_output(self):
        harness = RouterHarness()
        packet = make_packet(path=(1,), payload_words=8, gt=True)
        flits = packet_to_flits(packet)
        for flit in flits:
            harness.inject(0, flit)
            harness.step()
        assert harness.output(1) == flits

    def test_two_gt_flits_for_same_output_raise(self):
        harness = RouterHarness(strict_gt=True)
        f0 = packet_to_flits(make_packet(path=(2,), gt=True,
                                         channel_key=("a", 0)))[0]
        f1 = packet_to_flits(make_packet(path=(2,), gt=True,
                                         channel_key=("b", 0)))[0]
        harness.inject(0, f0)
        harness.inject(1, f1)
        with pytest.raises(SlotConflictError):
            harness.step()

    def test_gt_conflict_tolerated_when_not_strict(self):
        harness = RouterHarness(strict_gt=False)
        f0 = packet_to_flits(make_packet(path=(2,), gt=True))[0]
        f1 = packet_to_flits(make_packet(path=(2,), gt=True))[0]
        harness.inject(0, f0)
        harness.inject(1, f1)
        harness.run(3)
        assert harness.router.stats.counter("gt_conflicts").value >= 1
        assert len(harness.output(2)) == 2

    def test_gt_to_different_outputs_forwarded_same_cycle(self):
        harness = RouterHarness()
        f0 = packet_to_flits(make_packet(path=(1,), gt=True))[0]
        f1 = packet_to_flits(make_packet(path=(2,), gt=True))[0]
        harness.inject(0, f0)
        harness.inject(2, f1)
        harness.step()
        assert harness.output(1) == [f0]
        assert harness.output(2) == [f1]


class TestBEForwarding:
    def test_be_flit_forwarded(self):
        harness = RouterHarness()
        flit = packet_to_flits(make_packet(path=(1,)))[0]
        harness.inject(0, flit)
        harness.step()
        assert harness.output(1) == [flit]

    def test_gt_has_priority_over_be(self):
        harness = RouterHarness()
        be = packet_to_flits(make_packet(path=(2,)))[0]
        gt = packet_to_flits(make_packet(path=(2,), gt=True))[0]
        harness.inject(0, be)
        harness.inject(1, gt)
        harness.run(2)
        assert harness.output(2) == [gt, be]

    def test_wormhole_keeps_be_packet_contiguous_on_its_output(self):
        harness = RouterHarness()
        long_packet = make_packet(path=(2,), payload_words=8)   # 3 flits
        competitor = make_packet(path=(2,), payload_words=1)    # 1 flit
        long_flits = packet_to_flits(long_packet)
        competitor_flit = packet_to_flits(competitor)[0]
        harness.inject(0, long_flits[0])
        harness.step()
        # The competitor shows up at another input while the long packet is
        # mid-flight; the output is locked until the tail passes.
        harness.inject(1, competitor_flit)
        harness.inject(0, long_flits[1])
        harness.step()
        harness.inject(0, long_flits[2])
        harness.run(4)
        order = [f.packet.packet_id for f in harness.output(2)]
        assert order == [long_packet.packet_id] * 3 + [competitor.packet_id]

    def test_round_robin_alternates_between_inputs(self):
        harness = RouterHarness()
        flits_a = [packet_to_flits(make_packet(path=(2,), payload_words=1))[0]
                   for _ in range(2)]
        flits_b = [packet_to_flits(make_packet(path=(2,), payload_words=1))[0]
                   for _ in range(2)]
        harness.inject(0, flits_a[0])
        harness.inject(1, flits_b[0])
        harness.step()
        harness.inject(0, flits_a[1])
        harness.inject(1, flits_b[1])
        harness.run(4)
        out = harness.output(2)
        assert len(out) == 4
        # Never two consecutive grants to the same input when both compete.
        sources = [f.packet.packet_id in {p.packet.packet_id for p in flits_a}
                   for f in out[:2]]
        assert sources[0] != sources[1]

    def test_be_backpressure_holds_flit_when_output_is_blocked(self):
        router = Router("R", 2, be_buffer_flits=4)
        in_link = Link("in")
        out_link = Link("out")
        router.connect_input(0, in_link)
        router.connect_output(1, out_link)
        # Pre-occupy the output link so can_send_be() is False.
        out_link.send(packet_to_flits(make_packet(path=(1,)))[0])
        flit = packet_to_flits(make_packet(path=(1,)))[0]
        in_link.send(flit)
        in_link.post_tick(0)
        router.tick(0)
        assert router.be_queue_depth(0) == 1
        assert router.stats.counter("be_backpressure_stalls").value == 1

    def test_be_buffer_overflow_detected(self):
        router = Router("R", 2, be_buffer_flits=1)
        in_link = Link("in")
        out_link = Link("out")
        router.connect_input(0, in_link)
        router.connect_output(1, out_link)
        out_link.send(packet_to_flits(make_packet(path=(1,)))[0])  # block output
        in_link.send(packet_to_flits(make_packet(path=(1,)))[0])
        in_link.post_tick(0)
        router.tick(0)          # buffer now full, output blocked
        in_link.send(packet_to_flits(make_packet(path=(1,)))[0])
        in_link.post_tick(1)
        with pytest.raises(BufferOverflowError):
            router.tick(1)

    def test_be_space_reports_free_buffer(self):
        router = Router("R", 2, be_buffer_flits=4)
        assert router.be_space(0) == 4

    def test_route_mismatch_detected(self):
        harness = RouterHarness()
        packet = make_packet(path=(1,))
        flit = packet_to_flits(packet)[0]
        packet.advance_route()  # corrupt the route pointer
        harness.inject(0, flit)
        with pytest.raises(PacketError):
            harness.step()


class TestRouterSlotChecking:
    def test_slot_mismatch_counted(self):
        table = RouterSlotTable(num_outputs=3, num_slots=4)
        table.reserve(2, 0, ("owner", 0))
        harness = RouterHarness(slot_table=table)
        # A GT flit from a different channel arrives in slot 0 wanting output 2.
        flit = packet_to_flits(make_packet(path=(2,), gt=True,
                                           channel_key=("intruder", 1)))[0]
        harness.inject(0, flit)
        harness.step()
        assert harness.router.stats.counter(
            "slot_reservation_mismatches").value == 1

    def test_matching_reservation_not_flagged(self):
        table = RouterSlotTable(num_outputs=3, num_slots=4)
        table.reserve(2, 0, ("owner", 0))
        harness = RouterHarness(slot_table=table)
        flit = packet_to_flits(make_packet(path=(2,), gt=True,
                                           channel_key=("owner", 0)))[0]
        harness.inject(0, flit)
        harness.step()
        assert harness.router.stats.counter(
            "slot_reservation_mismatches").value == 0


class TestRouterConstruction:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Router("R", 0)
        with pytest.raises(ValueError):
            Router("R", 2, be_buffer_flits=0)

    def test_port_bounds_checked(self):
        router = Router("R", 2)
        with pytest.raises(ValueError):
            router.connect_input(5, Link("x"))

    def test_buffered_flits_starts_at_zero(self):
        assert Router("R", 2).buffered_flits() == 0

    def test_statistics_track_in_and_out_flits(self):
        harness = RouterHarness()
        harness.inject(0, packet_to_flits(make_packet(path=(1,), gt=True))[0])
        harness.inject(1, packet_to_flits(make_packet(path=(2,)))[0])
        harness.run(2)
        assert harness.router.stats.counter("gt_flits_in").value == 1
        assert harness.router.stats.counter("be_flits_in").value == 1
        assert harness.router.stats.counter("gt_flits_out").value == 1
        assert harness.router.stats.counter("be_flits_out").value == 1
