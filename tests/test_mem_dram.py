"""Tests for the banked DRAM memory backend (repro.mem).

Covers the timing/geometry layer, the bank state machine (open rows,
refresh closure), the controller's scheduling policies (in-order FCFS vs
open-page FR-FCFS, starvation bounding, in-order response release), the
DRAMBackedSlave drop-in behaviour behind the slave shell, determinism, and
byte-identity between the idle-skip and always-tick engine modes.
"""

import math

import pytest

from repro.api import BuilderError, SystemBuilder, scenarios
from repro.analysis.guarantees import GTGuarantees
from repro.analysis.verification import (
    ip_cycles_to_flit_cycles,
    verify_end_to_end_latency,
)
from repro.mem import (
    DRAMBackedSlave,
    DRAMBank,
    DRAMController,
    DRAMGeometry,
    DRAMTiming,
    FRFCFSScheduler,
    SchedulerError,
    TIMING_PRESETS,
    TimingError,
    make_scheduler,
    resolve_timing,
)
from repro.protocol.transactions import Transaction
from repro.sim.clock import always_tick


def normalize(obj):
    if isinstance(obj, float):
        return "NaN" if math.isnan(obj) else obj
    if isinstance(obj, dict):
        return {key: normalize(value) for key, value in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [normalize(value) for value in obj]
    return obj


def drain(slave, max_cycles=20000):
    """Tick a stand-alone slave until idle; returns (responses, cycles)."""
    responses = []
    cycle = 0
    while not slave.idle():
        slave.tick(cycle)
        while True:
            produced = slave.pop_response()
            if produced is None:
                break
            responses.append(produced)
        cycle += 1
        assert cycle < max_cycles, "slave never drained"
    return responses, cycle


# ---------------------------------------------------------------------------
# Timing and geometry
# ---------------------------------------------------------------------------
class TestTiming:
    def test_presets_resolve_and_instances_pass_through(self):
        assert resolve_timing("fast") is TIMING_PRESETS["fast"]
        timing = DRAMTiming(tRCD=2, tRP=2, tCL=2, tRAS=5)
        assert resolve_timing(timing) is timing

    def test_unknown_preset_is_actionable(self):
        with pytest.raises(TimingError, match="unknown DRAM timing preset"):
            resolve_timing("warp")

    def test_invalid_parameters_rejected(self):
        with pytest.raises(TimingError):
            DRAMTiming(tRCD=0)
        with pytest.raises(TimingError):
            DRAMTiming(tRFC=600, tREFI=500)
        with pytest.raises(TimingError):
            DRAMTiming(tRAS=2, tRCD=4)

    def test_access_cost_ordering(self):
        timing = TIMING_PRESETS["default"]
        hit = timing.row_hit_cycles(4)
        closed = timing.row_closed_cycles(4)
        conflict = timing.row_conflict_cycles(4)
        assert hit < closed < conflict <= timing.worst_case_access_cycles(4)

    def test_transfer_rounds_up_to_bus_width(self):
        timing = DRAMTiming(words_per_cycle=2)
        assert timing.transfer_cycles(4) == 2
        assert timing.transfer_cycles(5) == 3
        assert timing.transfer_cycles(0) == 1

    def test_worst_case_service_scales_with_queue_depth(self):
        timing = TIMING_PRESETS["fast"]
        one = timing.worst_case_service_cycles(4, queue_depth=1)
        four = timing.worst_case_service_cycles(4, queue_depth=4)
        assert four > 4 * (one - 2 * timing.tRFC)
        assert four >= 4 * timing.worst_case_access_cycles(4)
        with pytest.raises(TimingError):
            timing.worst_case_service_cycles(4, queue_depth=0)

    def test_worst_case_service_covers_every_straddled_refresh(self):
        # slow preset: 50 conflicts span > tREFI, so a single-tRFC bound
        # would undercount — the bound must budget one refresh per
        # (tREFI - tRFC) useful cycles.
        timing = TIMING_PRESETS["slow"]
        busy = 50 * timing.worst_case_access_cycles(4)
        assert busy > timing.tREFI
        bound = timing.worst_case_service_cycles(4, queue_depth=50)
        min_refreshes = busy // timing.tREFI
        assert bound >= busy + (min_refreshes + 1) * timing.tRFC

    def test_geometry_maps_columns_banks_rows(self):
        geometry = DRAMGeometry(num_banks=4, row_words=64)
        assert geometry.locate(0) == (0, 0)
        assert geometry.locate(63) == (0, 0)
        assert geometry.locate(64) == (1, 0)        # next bank
        assert geometry.locate(4 * 64) == (0, 1)    # wraps to next row
        with pytest.raises(TimingError):
            DRAMGeometry(num_banks=0)
        with pytest.raises(TimingError):
            DRAMGeometry(row_words=0)


class TestBankState:
    def test_refresh_closes_rows(self):
        bank = DRAMBank()
        bank.open_row = 5
        bank.activate_cycle = 10
        tREFI = 100
        assert bank.effective_row(50, tREFI) == 5
        # First refresh at cycle 100 closes the row.
        assert bank.effective_row(150, tREFI) is None
        # A row activated after that refresh survives until the next one.
        bank.activate_cycle = 120
        assert bank.effective_row(150, tREFI) == 5
        assert bank.effective_row(250, tREFI) is None


# ---------------------------------------------------------------------------
# Controller and schedulers
# ---------------------------------------------------------------------------
def same_bank_interleave(geometry, bursts_per_row=6):
    """Writes alternating between row 0 and row 1 of bank 0."""
    stride = geometry.row_words * geometry.num_banks
    transactions = []
    for index in range(bursts_per_row):
        transactions.append(Transaction.write(index * 4, [1, 2, 3, 4]))
        transactions.append(Transaction.write(stride + index * 4, [5, 6, 7, 8]))
    return transactions


class TestController:
    def make(self, scheduler):
        geometry = DRAMGeometry(num_banks=4, row_words=32)
        return DRAMController(TIMING_PRESETS["fast"], geometry,
                              scheduler=scheduler), geometry

    def run_all(self, controller, transactions, max_cycles=20000):
        for transaction in transactions:
            controller.admit(transaction, 0)
        released = []
        for cycle in range(max_cycles):
            controller.tick(cycle)
            while True:
                completed = controller.pop_completed()
                if completed is None:
                    break
                released.append(completed)
            if not controller.busy:
                return released, cycle
        raise AssertionError("controller never drained")

    def test_unknown_scheduler_is_actionable(self):
        with pytest.raises(SchedulerError, match="unknown DRAM scheduler"):
            make_scheduler("lifo")
        with pytest.raises(SchedulerError):
            FRFCFSScheduler(starvation_limit=0)

    def test_responses_release_in_arrival_order_under_both_policies(self):
        for scheduler in ("fcfs", "frfcfs"):
            controller, geometry = self.make(scheduler)
            transactions = same_bank_interleave(geometry)
            released, _ = self.run_all(controller, transactions)
            assert [t.address for t, _, _ in released] == \
                [t.address for t in transactions], scheduler

    def test_frfcfs_turns_conflicts_into_hits_and_finishes_sooner(self):
        fcfs, geometry = self.make("fcfs")
        _, fcfs_cycles = self.run_all(fcfs, same_bank_interleave(geometry))
        frfcfs, geometry = self.make("frfcfs")
        _, frfcfs_cycles = self.run_all(frfcfs,
                                        same_bank_interleave(geometry))
        assert frfcfs_cycles < fcfs_cycles
        assert (frfcfs.stats.counter("dram_row_hits").value
                > fcfs.stats.counter("dram_row_hits").value)
        assert (frfcfs.stats.counter("dram_row_conflicts").value
                < fcfs.stats.counter("dram_row_conflicts").value)

    def test_starvation_limit_bounds_bypassing(self):
        geometry = DRAMGeometry(num_banks=4, row_words=32)
        controller = DRAMController(
            TIMING_PRESETS["fast"], geometry,
            scheduler=FRFCFSScheduler(starvation_limit=2))
        stride = geometry.row_words * geometry.num_banks
        # One row-1 request buried under a long row-0 hit streak.
        transactions = [Transaction.write(0, [1])]
        transactions.append(Transaction.write(stride, [9]))
        transactions += [Transaction.write(4 * (i + 1), [1])
                         for i in range(12)]
        released, _ = self.run_all(controller, transactions)
        assert len(released) == len(transactions)
        # The buried request was served after at most starvation_limit
        # bypasses: with an unlimited scheduler the whole row-0 streak
        # (13 requests) would have gone first.
        done_cycles = {t.address: done for t, _, done in released}
        row0_dones = sorted(done for address, done in done_cycles.items()
                            if address < stride)
        assert done_cycles[stride] < row0_dones[-1]

    def test_refresh_stalls_are_counted_and_slow_service(self):
        timing = DRAMTiming(tRCD=2, tRP=2, tCL=2, tRAS=5, tREFI=50, tRFC=20)
        controller = DRAMController(timing, DRAMGeometry(num_banks=2,
                                                         row_words=32))
        # Steady stream long enough to straddle several refresh windows.
        transactions = [Transaction.write(4 * i, [1, 2]) for i in range(40)]
        released, cycles = self.run_all(controller, transactions)
        assert len(released) == 40
        assert controller.stats.counter("dram_refresh_stalls").value > 0
        assert cycles > 40 * timing.row_hit_cycles(2) // 2

    def test_no_service_completes_inside_a_refresh_window(self):
        """An access whose command/transfer sequence would straddle a
        refresh window must restart after it — the device cannot service
        during refresh."""
        timing = DRAMTiming(tRCD=3, tRP=3, tCL=3, tRAS=7, tREFI=40, tRFC=12)
        geometry = DRAMGeometry(num_banks=2, row_words=32)
        controller = DRAMController(timing, geometry)
        stride = geometry.row_words * geometry.num_banks
        # Row-conflict stream: every access pays the long precharge path,
        # so many would straddle the frequent refresh windows if unchecked.
        transactions = [Transaction.write((i % 2) * stride + 4 * i, [1, 2])
                        for i in range(30)]
        released = TestController().run_all(controller, transactions)[0]
        assert len(released) == 30
        for _, _, done in released:
            offset = done % timing.tREFI
            assert not (0 < offset <= timing.tRFC) or done < timing.tREFI, \
                f"transfer finished at {done}, inside a refresh window"
        assert controller.stats.counter("dram_refresh_stalls").value > 0

    def test_row_hit_rate_reporting(self):
        controller, geometry = self.make("frfcfs")
        assert math.isnan(controller.row_hit_rate)
        self.run_all(controller, same_bank_interleave(geometry))
        assert 0.0 < controller.row_hit_rate < 1.0


# ---------------------------------------------------------------------------
# The DRAM-backed slave IP
# ---------------------------------------------------------------------------
class TestDRAMBackedSlave:
    def test_read_back_and_bounded_memory_errors(self):
        slave = DRAMBackedSlave("d", timing="fast")
        slave.enqueue(Transaction.write(0x20, [1, 2, 3]))
        slave.enqueue(Transaction.read(0x20, length=3))
        responses, _ = drain(slave)
        assert responses[1][1].read_data == [1, 2, 3]
        assert slave.memory.writes == 3 and slave.memory.reads == 3

    def test_decode_error_on_out_of_range_access(self):
        from repro.ip.memory import SharedMemory
        from repro.protocol.transactions import ResponseError
        slave = DRAMBackedSlave("d", memory=SharedMemory(16), timing="fast")
        slave.enqueue(Transaction.write(64, [1]))
        responses, _ = drain(slave)
        assert responses[0][1].error == ResponseError.DECODE_ERROR
        assert slave.stats.counter("errors").value == 1

    def test_read_after_write_same_address_under_frfcfs(self):
        slave = DRAMBackedSlave("d", timing="fast", scheduler="frfcfs")
        slave.enqueue(Transaction.write(0x10, [42]))
        slave.enqueue(Transaction.write(5000, [7]))   # other row, bypassable
        slave.enqueue(Transaction.read(0x10, length=1))
        responses, _ = drain(slave)
        assert [t.address for t, _ in responses] == [0x10, 5000, 0x10]
        assert responses[2][1].read_data == [42]

    def test_idle_protocol(self):
        slave = DRAMBackedSlave("d", timing="fast")
        assert slave.is_idle() and slave.idle()
        slave.enqueue(Transaction.write(0, [1]))
        assert not slave.is_idle()
        drain(slave)
        assert slave.is_idle()
        # An idle tick is an observable no-op (wake-protocol requirement).
        before = normalize(slave.service_summary())
        slave.tick(10 ** 6)
        assert normalize(slave.service_summary()) == before

    def test_variable_latency_unlike_ideal_memory(self):
        """Same request stream, different service latencies: the thing the
        fixed-latency MemorySlave cannot produce."""
        geometry_stride = 256 * 8  # next row of the same bank, default geo
        slave = DRAMBackedSlave("d", timing="default")
        slave.enqueue(Transaction.write(0, [1] * 4))
        slave.enqueue(Transaction.write(4, [1] * 4))               # row hit
        slave.enqueue(Transaction.write(geometry_stride, [1] * 4))  # conflict
        drain(slave)
        samples = slave.stats.latency("dram_service").samples
        assert len(set(samples)) > 1, samples

    def test_service_summary_shape(self):
        slave = DRAMBackedSlave("d", timing="fast")
        slave.enqueue(Transaction.write(0, [1]))
        drain(slave)
        summary = slave.service_summary()
        assert summary["requests"] == 1
        assert summary["service_latency"]["count"] == 1


# ---------------------------------------------------------------------------
# Full-stack scenarios
# ---------------------------------------------------------------------------
class TestDRAMScenarios:
    def test_dram_hotspot_completes_and_reports_row_state(self):
        system = scenarios.build("dram_hotspot", num_masters=4,
                                 max_transactions=8)
        cycles = system.run_until_idle(max_flit_cycles=100000)
        assert cycles < 100000
        for index in range(4):
            assert len(system.master(f"m{index}").completed) == 8
        summary = system.memory("dram").dram.service_summary()
        assert summary["requests"] == 4 * 8
        assert system.memory("dram").backend == "dram"

    def test_video_pipeline_dram_streams_lines(self):
        system = scenarios.build("video_pipeline_dram", num_producers=2,
                                 lines=2)
        cycles = system.run_until_idle(max_flit_cycles=100000)
        assert cycles < 100000
        assert all(handle.done() for handle in system.masters.values())
        assert system.memory("frame").memory.writes > 0

    def test_frfcfs_beats_fcfs_on_measured_throughput(self):
        """The bursty read/write mix finishes the same workload in fewer
        cycles under FR-FCFS — i.e. higher measured throughput."""

        def run(scheduler):
            system = scenarios.build("dram_scheduler_mix",
                                     scheduler=scheduler)
            cycles = system.run_until_idle(max_flit_cycles=200000)
            assert all(h.done() for h in system.masters.values()), scheduler
            words = sum(h.stats.counter("words_completed").value
                        for h in system.masters.values())
            return cycles, words, system.memory("dram").dram

        fcfs_cycles, fcfs_words, fcfs_dram = run("fcfs")
        frfcfs_cycles, frfcfs_words, frfcfs_dram = run("frfcfs")
        assert fcfs_words == frfcfs_words  # same workload
        assert frfcfs_cycles < fcfs_cycles
        assert frfcfs_words / frfcfs_cycles > fcfs_words / fcfs_cycles
        assert frfcfs_dram.row_hit_rate > fcfs_dram.row_hit_rate

    def test_multicast_scenario_replicates_writes(self):
        system = scenarios.build("multicast", num_slaves=3,
                                 max_transactions=6)
        system.run_until_idle(max_flit_cycles=100000)
        writes = {name: handle.memory.writes
                  for name, handle in system.memories.items()}
        assert len(writes) == 3
        assert len(set(writes.values())) == 1  # every copy executed all
        assert all(count > 0 for count in writes.values())

    @pytest.mark.parametrize("name,params", [
        ("dram_hotspot", {"max_transactions": 6}),
        ("dram_scheduler_mix", {"max_transactions": 8}),
        ("video_pipeline_dram", {"lines": 2}),
    ])
    def test_deterministic_across_runs(self, name, params):
        def fingerprint():
            system = scenarios.build(name, **params)
            system.run_until_idle(max_flit_cycles=200000)
            return normalize(system.fingerprint())

        assert fingerprint() == fingerprint()

    @pytest.mark.parametrize("name,params", [
        ("dram_hotspot", {"max_transactions": 6}),
        ("dram_scheduler_mix", {"max_transactions": 8}),
        ("saturated_dram", {}),
    ])
    def test_engine_modes_byte_identical(self, name, params):
        """DRAM-backed systems must produce identical results whether the
        clocks idle-skip or tick every cycle (wake-protocol compliance)."""

        def fingerprint():
            system = scenarios.build(name, **params)
            system.run_flit_cycles(600)
            return normalize({
                "fp": system.fingerprint(),
                "dram": {mem_name: handle.dram.service_summary()
                         for mem_name, handle in system.memories.items()
                         if handle.backend == "dram"},
            })

        active = fingerprint()
        with always_tick():
            baseline = fingerprint()
        assert active == baseline


class TestEndToEndGuarantee:
    def test_gt_dram_round_trip_meets_folded_bound(self):
        """A GT connection to a DRAM-backed memory stays within the
        end-to-end bound that folds worst-case memory service latency
        between the two network latency bounds."""
        system = (SystemBuilder("e2e").mesh(1, 2)
                  .add_master("cpu", router=(0, 0))
                  .add_memory("mem", router=(0, 1), backend="dram",
                              timing="fast")
                  .connect("cpu", "mem", gt=True, slots=4)
                  .build())
        cpu = system.master("cpu")
        burst = 4
        outstanding = 4
        for index in range(outstanding):
            cpu.issue(Transaction.write(index * 16, [index] * burst))
        system.run_until_idle(max_flit_cycles=50000)
        assert len(cpu.completed) == outstanding

        info = system.connection("cpu->mem")
        hops = system.noc.hop_count("cpu", "mem")
        request = GTGuarantees(
            slot_pattern=info.slot_assignment[("cpu", 0)], num_slots=8,
            hops=hops, packet_flits=2)
        response = GTGuarantees(
            slot_pattern=info.slot_assignment[("mem", 0)], num_slots=8,
            hops=hops, packet_flits=2)
        timing = TIMING_PRESETS["fast"]
        service = ip_cycles_to_flit_cycles(
            timing.worst_case_service_cycles(burst, queue_depth=outstanding))
        # Measured latencies are in IP-port cycles (500 MHz): convert.
        measured = [ip_cycles_to_flit_cycles(sample)
                    for sample in cpu.stats.latency("latency").samples]
        report = verify_end_to_end_latency(
            request, response, measured,
            memory_service_flit_cycles=service,
            extra_allowance=12)  # shell (de)sequentialization + CDC slack
        assert report.all_satisfied, report.rows()
