"""Unit tests for the transaction model."""

import pytest

from repro.protocol.transactions import (
    Command,
    ResponseError,
    Transaction,
    TransactionError,
    TransactionResponse,
    TransactionStatus,
)


class TestConstruction:
    def test_read_factory(self):
        txn = Transaction.read(0x100, length=4)
        assert txn.command == Command.READ
        assert txn.read_length == 4
        assert txn.expects_response
        assert txn.is_read and not txn.is_write
        assert txn.burst_length == 4

    def test_write_factory(self):
        txn = Transaction.write(0x200, [1, 2, 3])
        assert txn.command == Command.WRITE
        assert txn.write_data == [1, 2, 3]
        assert txn.expects_response
        assert txn.is_write
        assert txn.burst_length == 3

    def test_posted_write_has_no_response(self):
        txn = Transaction.write(0x200, [1], posted=True)
        assert txn.command == Command.WRITE_POSTED
        assert not txn.expects_response

    def test_write_without_data_rejected(self):
        with pytest.raises(TransactionError):
            Transaction(command=Command.WRITE, address=0)

    def test_read_with_data_rejected(self):
        with pytest.raises(TransactionError):
            Transaction(command=Command.READ, address=0, write_data=[1],
                        read_length=1)

    def test_read_without_length_rejected(self):
        with pytest.raises(TransactionError):
            Transaction(command=Command.READ, address=0)

    def test_oversized_bursts_rejected(self):
        with pytest.raises(TransactionError):
            Transaction.read(0, length=5000)
        with pytest.raises(TransactionError):
            Transaction.write(0, [0] * 5000)

    def test_address_and_data_masked_to_32_bits(self):
        txn = Transaction.write(0x1_FFFF_FFFF, [0x1_0000_0002])
        assert txn.address == 0xFFFFFFFF
        assert txn.write_data == [2]

    def test_unique_uids(self):
        assert Transaction.read(0, 1).uid != Transaction.read(0, 1).uid

    def test_read_linked_and_write_conditional(self):
        rl = Transaction(command=Command.READ_LINKED, address=4, read_length=1)
        wc = Transaction(command=Command.WRITE_CONDITIONAL, address=4,
                         write_data=[1])
        assert rl.expects_response and wc.expects_response


class TestCompletion:
    def test_successful_completion(self):
        txn = Transaction.read(0, 2)
        txn.issue_cycle = 10
        txn.complete(TransactionResponse(read_data=[5, 6]), cycle=25)
        assert txn.status == TransactionStatus.COMPLETED
        assert txn.response.read_data == [5, 6]
        assert txn.latency_cycles == 15

    def test_error_completion(self):
        txn = Transaction.write(0, [1])
        txn.complete(TransactionResponse(error=ResponseError.SLAVE_ERROR))
        assert txn.status == TransactionStatus.ERROR
        assert not txn.response.ok

    def test_latency_unknown_before_completion(self):
        assert Transaction.read(0, 1).latency_cycles is None


class TestTransactionResponse:
    def test_ok_flag(self):
        assert TransactionResponse().ok
        assert not TransactionResponse(error=ResponseError.DECODE_ERROR).ok
