"""Unit tests for the configuration managers (functional, centralized model,
distributed model)."""

import pytest

from repro.config.connection import (
    ChannelEndpointRef,
    ChannelPairSpec,
    ConnectionSpec,
)
from repro.config.manager import (
    ConfigJob,
    ConfigurationError,
    DistributedConfigurationModel,
    FunctionalConfigurator,
)
from repro.config.slot_allocation import CentralizedSlotAllocator, SlotRequest
from repro.design.generator import build_system
from repro.design.spec import ChannelSpec, NISpec, NoCSpec, PortSpec


def make_system(num_slots=8):
    spec = NoCSpec(
        name="t", topology="mesh", rows=1, cols=2, num_slots=num_slots,
        nis=[
            NISpec(name="m", router=(0, 0),
                   ports=[PortSpec(name="p", kind="master",
                                   channels=[ChannelSpec(), ChannelSpec()])]),
            NISpec(name="s", router=(0, 1),
                   ports=[PortSpec(name="p", kind="slave",
                                   channels=[ChannelSpec(), ChannelSpec()])]),
        ])
    return build_system(spec)


def p2p(master_ch=0, slave_ch=0, gt=False, slots=2, name="c"):
    return ConnectionSpec(
        name=name, kind="p2p",
        pairs=[ChannelPairSpec(master=ChannelEndpointRef("m", master_ch),
                               slave=ChannelEndpointRef("s", slave_ch),
                               request_gt=gt, request_slots=slots if gt else 0)])


class TestFunctionalConfigurator:
    def test_open_connection_programs_both_kernels(self):
        system = make_system()
        configurator = system.functional_configurator()
        configurator.open_connection(system.noc, p2p())
        master_channel = system.kernel("m").channel(0)
        slave_channel = system.kernel("s").channel(0)
        assert master_channel.regs.enabled and slave_channel.regs.enabled
        assert master_channel.regs.remote_qid == 0
        assert master_channel.space == slave_channel.dest_queue.capacity
        assert master_channel.regs.path == system.noc.route("m", "s")

    def test_gt_connection_reserves_slots_in_the_ni_table(self):
        system = make_system()
        configurator = system.functional_configurator()
        configurator.open_connection(system.noc, p2p(gt=True, slots=3))
        assert len(system.kernel("m").slot_table.slots_of(0)) == 3
        assert system.kernel("m").channel(0).regs.gt

    def test_close_connection_disables_and_releases(self):
        system = make_system()
        configurator = system.functional_configurator()
        spec = p2p(gt=True, slots=2)
        configurator.open_connection(system.noc, spec)
        configurator.close_connection(spec)
        assert not system.kernel("m").channel(0).regs.enabled
        assert system.kernel("m").slot_table.slots_of(0) == []
        # The slots are free again for another connection.
        configurator.open_connection(system.noc, p2p(master_ch=1, slave_ch=1,
                                                     gt=True, slots=8,
                                                     name="c2"))

    def test_unsatisfiable_gt_request_raises(self):
        system = make_system()
        configurator = system.functional_configurator()
        configurator.open_connection(system.noc, p2p(gt=True, slots=8))
        with pytest.raises(ConfigurationError):
            configurator.open_connection(system.noc,
                                         p2p(master_ch=1, slave_ch=1,
                                             gt=True, slots=1, name="c2"))

    def test_unknown_ni_rejected(self):
        system = make_system()
        configurator = FunctionalConfigurator({"m": system.kernel("m")})
        with pytest.raises(Exception):
            configurator.open_connection(system.noc, p2p())

    def test_register_write_counter(self):
        system = make_system()
        configurator = system.functional_configurator()
        program = configurator.open_connection(system.noc, p2p())
        assert configurator.stats.counter("register_writes").value == len(program)


def make_jobs(count, slots_each=1, hops=2, register_writes=8, num_slots=8):
    jobs = []
    for index in range(count):
        links = [((f"r{h}", f"r{h + 1}")) for h in range(hops)]
        jobs.append(ConfigJob(
            name=f"conn{index}",
            slot_requests=[SlotRequest(f"ni{index}", 0, slots_each, links)],
            register_writes=register_writes))
    del num_slots
    return jobs


class TestDistributedConfigurationModel:
    def test_centralized_time_scales_with_connections(self):
        model = DistributedConfigurationModel(num_slots=16)
        small = model.run_centralized(make_jobs(2))
        large = model.run_centralized(make_jobs(4))
        assert large.total_cycles > small.total_cycles
        assert small.conflicts == 0 and large.conflicts == 0

    def test_distributed_parallelism_reduces_time_for_large_jobs(self):
        model = DistributedConfigurationModel(num_slots=32)
        jobs = make_jobs(8, slots_each=1)
        central = model.run_centralized(jobs)
        distributed = model.run_distributed(jobs, ports=4)
        assert distributed.total_cycles < central.total_cycles

    def test_distributed_needs_router_slot_writes(self):
        model = DistributedConfigurationModel(num_slots=32)
        jobs = make_jobs(4)
        central = model.run_centralized(jobs)
        distributed = model.run_distributed(jobs, ports=2)
        assert distributed.register_writes > central.register_writes

    def test_conflicts_only_possible_with_shared_links(self):
        model = DistributedConfigurationModel(num_slots=8, snapshot_staleness=4)
        # All jobs use the same links: contention is possible.
        shared = [ConfigJob(name=f"c{i}",
                            slot_requests=[SlotRequest(f"ni{i}", 0, 2,
                                                       [("r0", "r1")])],
                            register_writes=8)
                  for i in range(3)]
        result = model.run_distributed(shared, ports=3)
        assert result.conflicts >= 0     # model runs; conflicts are bounded
        assert result.failed == 0

    def test_overload_reports_failures(self):
        model = DistributedConfigurationModel(num_slots=4)
        jobs = [ConfigJob(name=f"c{i}",
                          slot_requests=[SlotRequest(f"ni{i}", 0, 3,
                                                     [("r0", "r1")])],
                          register_writes=4)
                for i in range(3)]
        central = model.run_centralized(jobs)
        assert central.failed >= 1

    def test_invalid_port_count(self):
        model = DistributedConfigurationModel()
        with pytest.raises(ConfigurationError):
            model.run_distributed(make_jobs(2), ports=0)

    def test_result_rows_are_serializable(self):
        model = DistributedConfigurationModel()
        row = model.run_centralized(make_jobs(1)).as_row()
        assert row["model"] == "centralized"
        assert set(row) >= {"cycles", "register_writes", "conflicts"}


class TestAllocatorSharedWithManager:
    def test_allocator_state_shared_between_connections(self):
        system = make_system()
        allocator = CentralizedSlotAllocator(8)
        configurator = FunctionalConfigurator(system.kernels, allocator)
        configurator.open_connection(system.noc, p2p(gt=True, slots=4))
        configurator.open_connection(system.noc, p2p(master_ch=1, slave_ch=1,
                                                     gt=True, slots=4,
                                                     name="c2"))
        # Both connections traverse the same inter-router link: their NI slot
        # tables must be disjoint.
        slots_0 = set(system.kernel("m").slot_table.slots_of(0))
        slots_1 = set(system.kernel("m").slot_table.slots_of(1))
        assert not slots_0 & slots_1
