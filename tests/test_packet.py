"""Unit tests for packets, headers and flits."""

import pytest

from repro.network.packet import (
    FLIT_WORDS,
    MAX_HEADER_CREDITS,
    Flit,
    Packet,
    PacketError,
    PacketHeader,
    packet_to_flits,
)


def make_packet(payload_words, path=(1, 2), **header_kwargs):
    header = PacketHeader(path=path, remote_qid=0, **header_kwargs)
    return Packet(header, list(range(payload_words)))


class TestPacketHeader:
    def test_path_is_stored_as_tuple(self):
        header = PacketHeader(path=[1, 2, 3], remote_qid=0)
        assert header.path == (1, 2, 3)

    def test_negative_queue_id_rejected(self):
        with pytest.raises(PacketError):
            PacketHeader(path=(0,), remote_qid=-1)

    def test_credits_bounded_by_header_field(self):
        PacketHeader(path=(0,), remote_qid=0, credits=MAX_HEADER_CREDITS)
        with pytest.raises(PacketError):
            PacketHeader(path=(0,), remote_qid=0, credits=MAX_HEADER_CREDITS + 1)

    def test_negative_credits_rejected(self):
        with pytest.raises(PacketError):
            PacketHeader(path=(0,), remote_qid=0, credits=-1)


class TestPacket:
    def test_total_words_includes_header(self):
        assert make_packet(5).total_words == 6

    def test_num_flits_rounds_up(self):
        assert make_packet(0).num_flits == 1   # header only
        assert make_packet(2).num_flits == 1   # 3 words exactly
        assert make_packet(3).num_flits == 2
        assert make_packet(8).num_flits == 3

    def test_header_overhead(self):
        assert make_packet(0).header_overhead == pytest.approx(1.0)
        assert make_packet(9).header_overhead == pytest.approx(0.1)

    def test_route_advances_hop_by_hop(self):
        packet = make_packet(1, path=(3, 1, 4))
        assert packet.peek_route() == 3
        assert packet.advance_route() == 3
        assert packet.advance_route() == 1
        assert packet.advance_route() == 4
        assert packet.hops_remaining == 0

    def test_route_exhaustion_raises(self):
        packet = make_packet(1, path=(2,))
        packet.advance_route()
        with pytest.raises(PacketError):
            packet.peek_route()

    def test_reset_route(self):
        packet = make_packet(1, path=(2, 3))
        packet.advance_route()
        packet.reset_route()
        assert packet.peek_route() == 2

    def test_packet_ids_are_unique(self):
        assert make_packet(1).packet_id != make_packet(1).packet_id


class TestFlitSplitting:
    def test_header_only_packet_is_one_flit(self):
        flits = packet_to_flits(make_packet(0))
        assert len(flits) == 1
        assert flits[0].is_head and flits[0].is_tail
        assert flits[0].num_words == 1

    def test_word_accounting_across_flits(self):
        packet = make_packet(7)  # 8 words total -> 3 flits: 3 + 3 + 2
        flits = packet_to_flits(packet)
        assert [f.num_words for f in flits] == [3, 3, 2]
        assert sum(f.num_words for f in flits) == packet.total_words

    def test_exactly_one_head_and_one_tail(self):
        flits = packet_to_flits(make_packet(10))
        assert sum(f.is_head for f in flits) == 1
        assert sum(f.is_tail for f in flits) == 1
        assert flits[0].is_head
        assert flits[-1].is_tail

    def test_flit_indices_are_sequential(self):
        flits = packet_to_flits(make_packet(9))
        assert [f.index for f in flits] == list(range(len(flits)))

    def test_flit_is_gt_follows_header(self):
        header = PacketHeader(path=(0,), remote_qid=0, is_gt=True)
        flits = packet_to_flits(Packet(header, [1, 2, 3, 4]))
        assert all(f.is_gt for f in flits)

    def test_flit_word_capacity_is_three(self):
        assert FLIT_WORDS == 3
        flits = packet_to_flits(make_packet(20))
        assert all(f.num_words <= FLIT_WORDS for f in flits)
