"""SystemBuilder's pluggable topology front door: torus / tree / double-ring
/ custom declarations, routing knobs, validation, and spec round-trips."""

import pytest

from repro.api.builder import BuilderError, SystemBuilder
from repro.api import scenarios
from repro.design.generator import build_system
from repro.design.xml_io import from_xml, to_xml
from repro.ip.traffic import ConstantBitRateTraffic
from repro.network.routing import TableRouting, TorusDimensionOrdered
from repro.network.topology import Topology


def _cbr(period=8, words=2):
    return ConstantBitRateTraffic(period_cycles=period, burst_words=words,
                                  write=True)


def _pair_system(builder, src_router, dst_router, **connect_kwargs):
    return (builder
            .add_master("m", router=src_router, pattern=_cbr(),
                        max_transactions=4)
            .add_memory("mem", router=dst_router)
            .connect("m", "mem", **connect_kwargs)
            .build())


class TestTorusBuilder:
    def test_builds_and_runs(self):
        system = _pair_system(SystemBuilder("t").torus(3, 3),
                              (0, 0), (0, 2))
        # Dimension-ordered torus routing reaches (0,2) over the wrap link.
        assert len(system.noc.route("m", "mem")) == 2
        system.run_until_idle(max_flit_cycles=20000)
        assert system.master("m").done()

    def test_default_routing_is_torus(self):
        system = _pair_system(SystemBuilder("t").torus(3, 3),
                              (0, 0), (0, 2))
        assert system.spec.routing == "torus"
        assert system.noc.routing_algorithm == "torus"

    def test_routing_override_per_connection(self):
        system = _pair_system(SystemBuilder("t").torus(3, 3),
                              (0, 0), (0, 2), routing="shortest")
        # The connection's channels were programmed with shortest-path
        # routes; both strategies reach the target here, but the spec
        # records the override.
        assert system.connection("m->mem").spec.routing.name == "shortest"

    def test_unknown_routing_rejected(self):
        with pytest.raises(BuilderError, match="registered"):
            SystemBuilder("t").torus(2, 2, routing="magic") \
                .add_master("m", router=(0, 0)) \
                .add_memory("mem", router=(1, 1)) \
                .connect("m", "mem").build()

    def test_unknown_connect_routing_rejected(self):
        with pytest.raises(BuilderError, match="registered"):
            SystemBuilder("t").mesh(1, 2).connect("a", "b", routing="magic")

    def test_bad_dimensions_rejected(self):
        with pytest.raises(BuilderError, match="torus"):
            SystemBuilder("t").torus(0, 3).build()


class TestTreeBuilder:
    def test_builds_and_runs(self):
        system = _pair_system(SystemBuilder("t").tree(2, 2), 3, 0)
        assert system.noc.topology.num_routers == 7
        system.run_until_idle(max_flit_cycles=20000)
        assert system.master("m").done()

    def test_routers_carry_level_attributes(self):
        system = _pair_system(SystemBuilder("t").tree(2, 2), 3, 0)
        assert system.noc.topology.node_attrs(3)["level"] == 2


class TestDoubleRingBuilder:
    def test_builds_and_runs(self):
        system = _pair_system(SystemBuilder("d").double_ring(3),
                              ("in", 0), ("out", 1))
        assert system.noc.topology.num_routers == 6
        system.run_until_idle(max_flit_cycles=20000)
        assert system.master("m").done()


class TestCustomTopologyBuilder:
    def _floorplan(self):
        return Topology.custom(
            ["cpu", "dsp", "mem_ctrl"],
            [("cpu", "dsp"), ("dsp", "mem_ctrl"), ("cpu", "mem_ctrl")],
            name="mini_soc")

    def test_builds_and_runs(self):
        system = _pair_system(
            SystemBuilder("c").custom_topology(self._floorplan()),
            "cpu", "mem_ctrl")
        # cpu's port 1 leads to mem_ctrl (neighbours sorted by repr), whose
        # local NI port sits after its two neighbour ports.
        assert system.noc.route("m", "mem") == (1, 2)
        system.run_until_idle(max_flit_cycles=20000)
        assert system.master("m").done()

    def test_non_topology_rejected(self):
        with pytest.raises(BuilderError, match="Topology"):
            SystemBuilder("c").custom_topology("not a graph")

    def test_disconnected_rejected(self):
        lonely = Topology.custom(["a", "b", "c"], [("a", "b")])
        with pytest.raises(BuilderError, match="not connected"):
            SystemBuilder("c").custom_topology(lonely) \
                .add_master("m", router="a").build()

    def test_unknown_router_message_names_topology(self):
        with pytest.raises(BuilderError, match="mini_soc"):
            SystemBuilder("c").custom_topology(self._floorplan()) \
                .add_master("m", router="gpu").build()

    def test_graph_extended_after_declaration_stays_in_sync(self):
        topo = self._floorplan()
        builder = SystemBuilder("c").custom_topology(topo)
        topo.add_router("gpu")
        topo.connect("gpu", "cpu")
        system = _pair_system(builder, "gpu", "mem_ctrl")
        assert system.noc.topology.num_routers == 4
        rebuilt = build_system(from_xml(to_xml(system.spec)))
        assert set(rebuilt.noc.topology.graph.nodes) == \
            {"cpu", "dsp", "mem_ctrl", "gpu"}

    def test_spec_round_trips_through_xml(self):
        system = _pair_system(
            SystemBuilder("c").custom_topology(self._floorplan()),
            "cpu", "mem_ctrl")
        spec = from_xml(to_xml(system.spec))
        assert spec.topology == "custom"
        rebuilt = build_system(spec)
        assert set(rebuilt.noc.topology.graph.nodes) == \
            {"cpu", "dsp", "mem_ctrl"}
        assert rebuilt.noc.route("m", "mem") == \
            system.noc.route("m", "mem")


class TestSpecRoundTrips:
    @pytest.mark.parametrize("declare,expect_routers", [
        (lambda b: b.torus(2, 3), 6),
        (lambda b: b.tree(2, 2), 7),
        (lambda b: b.double_ring(3), 6),
        (lambda b: b.ring(4), 4),
    ])
    def test_topology_params_survive_xml(self, declare, expect_routers):
        builder = declare(SystemBuilder("rt"))
        builder.add_master("m", pattern=_cbr(), max_transactions=1)
        system = builder.build()
        spec = from_xml(to_xml(system.spec))
        assert spec.topology_params == system.spec.topology_params
        rebuilt = build_system(spec)
        assert rebuilt.noc.topology.num_routers == expect_routers

    def test_routing_strategy_serializes_as_name(self):
        system = (SystemBuilder("rt")
                  .torus(2, 3, routing=TorusDimensionOrdered())
                  .add_master("m", pattern=_cbr(), max_transactions=1)
                  .build())
        spec = from_xml(to_xml(system.spec))
        assert spec.routing == "torus"

    def test_explicit_routing_survives_topology_declaration_order(self):
        """routing() is order-independent with the topology methods: a
        later topology default must not clobber an explicit choice."""
        before = (SystemBuilder("a").routing("xy").mesh(2, 2)
                  .add_master("m", pattern=_cbr(), max_transactions=1)
                  .build())
        assert before.noc.routing_algorithm == "xy"
        torus = (SystemBuilder("b").routing("shortest").torus(3, 3)
                 .add_master("m", pattern=_cbr(), max_transactions=1)
                 .build())
        assert torus.noc.routing_algorithm == "shortest"
        # Without an explicit choice the torus default still applies.
        plain = (SystemBuilder("c").torus(3, 3)
                 .add_master("m", pattern=_cbr(), max_transactions=1)
                 .build())
        assert plain.noc.routing_algorithm == "torus"

    def test_typoed_routing_fails_at_spec_construction(self):
        from repro.design.spec import NoCSpec, SpecError
        with pytest.raises(SpecError, match="routing"):
            NoCSpec(routing="shortestt")

    def test_ambiguous_custom_node_id_refused_at_serialization(self):
        from repro.design.spec import SpecError
        tricky = Topology.custom(["ok", "2"], [("ok", "2")])
        system = _pair_system(SystemBuilder("tk").custom_topology(tricky),
                              "ok", "2")
        with pytest.raises(SpecError, match="does not survive"):
            to_xml(system.spec)

    def test_unserializable_routing_rejected_not_dropped(self):
        """A TableRouting (or a torus strategy with explicit dimensions)
        cannot ride in a name: to_xml must refuse, not silently degrade."""
        from repro.design.spec import SpecError
        table = TableRouting({(0, 1): [0, 1]})
        system = (SystemBuilder("rt").ring(3, routing=table)
                  .add_master("m", pattern=_cbr(), max_transactions=1)
                  .build())
        with pytest.raises(SpecError, match="TableRouting"):
            to_xml(system.spec)
        system.spec.routing = TorusDimensionOrdered(rows=2, cols=2)
        with pytest.raises(SpecError, match="dimensions"):
            to_xml(system.spec)

    def test_factory_tree_wrapped_as_custom_serializes(self):
        """The tree factory's parent=None root attribute must survive the
        XML attr encoding."""
        system = _pair_system(
            SystemBuilder("tc").custom_topology(Topology.tree(2, 1)), 1, 0)
        rebuilt = build_system(from_xml(to_xml(system.spec)))
        assert rebuilt.noc.topology.node_attrs(0)["parent"] is None
        assert rebuilt.noc.topology.node_attrs(1)["parent"] == 0

    def test_deadlock_report_blames_override_strategy(self):
        system = _pair_system(SystemBuilder("t").torus(3, 3),
                              (0, 0), (0, 2), routing="shortest")
        assert system.deadlock_report.strategy == "shortest"

    def test_single_node_custom_topology_round_trips(self):
        lone = Topology.custom(["hub"], name="lone")
        system = (SystemBuilder("lone").custom_topology(lone)
                  .add_master("m", router="hub", pattern=_cbr(),
                              max_transactions=1)
                  .build())
        rebuilt = build_system(from_xml(to_xml(system.spec)))
        assert set(rebuilt.noc.topology.graph.nodes) == {"hub"}

    def test_mixed_node_id_types_supported(self):
        mixed = Topology.custom([0, 1, "io"],
                                [(0, 1), (1, "io"), (0, "io")])
        system = _pair_system(SystemBuilder("mx").custom_topology(mixed),
                              0, "io")
        system.run_until_idle(max_flit_cycles=20000)
        assert system.master("m").done()
        rebuilt = build_system(from_xml(to_xml(system.spec)))
        assert set(rebuilt.noc.topology.graph.nodes) == {0, 1, "io"}


class TestNewScenarios:
    @pytest.mark.parametrize("name", ["torus_neighbor", "tree_hotspot",
                                      "irregular_soc"])
    def test_runs_to_completion(self, name):
        system = scenarios.build(name)
        assert system.deadlock_report is not None
        assert system.deadlock_report.ok
        system.run_until_idle(max_flit_cycles=60000)
        assert all(handle.done() for handle in system.masters.values())
        moved = sum(handle.memory.writes
                    for handle in system.memories.values())
        assert moved > 0

    def test_irregular_soc_shape(self):
        system = scenarios.build("irregular_soc")
        topo = system.noc.topology
        assert topo.num_routers == 10
        assert topo.node_attrs("dsp_a")["block"] == "dsp"
        assert system.spec.topology == "custom"

    def test_saturated_torus_builds(self):
        system = scenarios.build("saturated_torus")
        assert system.noc.topology.graph.graph["torus_cols"] == 4
        system.run_flit_cycles(200)
        assert system.noc.total_flits_forwarded() > 0

    def test_torus_neighbor_wrap_column_single_hop(self):
        system = scenarios.build("torus_neighbor")
        # The last column's master reaches its wraparound neighbour (column
        # 0) in a single hop thanks to the torus links.
        assert len(system.noc.route("m0_2", "mem0_2")) == 2
