"""Unit tests for the global configuration address map."""

import pytest

from repro.config.address_map import (
    AddressMapError,
    ConfigAddressMap,
    NI_WINDOW_WORDS,
)


class TestConfigAddressMap:
    def test_each_ni_gets_a_disjoint_window(self):
        amap = ConfigAddressMap(["ni0", "ni1", "ni2"])
        assert amap.base("ni0") == 0
        assert amap.base("ni1") == NI_WINDOW_WORDS
        assert amap.base("ni2") == 2 * NI_WINDOW_WORDS

    def test_global_address_and_decode_round_trip(self):
        amap = ConfigAddressMap(["a", "b"])
        for ni in ("a", "b"):
            for local in (0, 7, NI_WINDOW_WORDS - 1):
                gaddr = amap.global_address(ni, local)
                assert amap.decode(gaddr) == (ni, local)

    def test_local_address_outside_window_rejected(self):
        amap = ConfigAddressMap(["a"])
        with pytest.raises(AddressMapError):
            amap.global_address("a", NI_WINDOW_WORDS)

    def test_unknown_ni_rejected(self):
        amap = ConfigAddressMap(["a"])
        with pytest.raises(AddressMapError):
            amap.base("z")

    def test_decode_outside_every_window_rejected(self):
        amap = ConfigAddressMap(["a"])
        with pytest.raises(AddressMapError):
            amap.decode(5 * NI_WINDOW_WORDS)

    def test_duplicate_and_empty_names_rejected(self):
        with pytest.raises(AddressMapError):
            ConfigAddressMap([])
        with pytest.raises(AddressMapError):
            ConfigAddressMap(["a", "a"])

    def test_len_and_names(self):
        amap = ConfigAddressMap(["a", "b"])
        assert len(amap) == 2
        assert amap.ni_names == ["a", "b"]
