"""Determinism and seed-equivalence tests for the activity-driven engine.

A mixed GT/BE mesh scenario must produce:

* identical ``StatsRegistry`` contents and identical event-execution order
  across two runs of the activity-driven engine (run-to-run determinism);
* identical ``StatsRegistry`` contents under seed (always-tick) semantics
  (idle-skip is an optimization, not a model change).
"""

import math

from repro.sim.clock import always_tick
from repro.testbench import build_gt_be_mix, build_point_to_point


def _normalize(obj):
    if isinstance(obj, float) and math.isnan(obj):
        return "NaN"
    if isinstance(obj, dict):
        return {key: _normalize(value) for key, value in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_normalize(value) for value in obj]
    return obj


def _run_mix(record_events=False):
    """Run the mixed GT/BE mesh and fingerprint every statistics registry."""
    tb = build_gt_be_mix(num_gt=2, num_be=2, gt_slots=2,
                         gt_pattern_period=10, be_pattern_period=5)
    event_order = []
    if record_events:
        tb.system.sim.event_hook = (
            lambda time, priority, seq: event_order.append(
                (time, priority, seq)))
    tb.run_flit_cycles(1500)
    fingerprint = {}
    for pair in tb.pairs:
        fingerprint[pair.name] = {
            "master_ip": pair.master.stats.summary(),
            "master_shell": pair.master_shell.stats.summary(),
            "latency_samples": pair.master.stats.latency("latency").samples,
            "memory": pair.memory.stats.summary(),
            "master_kernel": tb.system.kernel(pair.master_ni).stats.summary(),
            "slave_kernel": tb.system.kernel(pair.slave_ni).stats.summary(),
            "channel": tb.system.kernel(pair.master_ni).channel(0)
                       .stats.summary(),
        }
    fingerprint["routers"] = {
        repr(node): router.stats.summary()
        for node, router in tb.system.noc.routers.items()}
    fingerprint["events"] = tb.system.sim.executed_events
    return _normalize(fingerprint), event_order


class TestRunToRunDeterminism:
    def test_identical_stats_across_runs(self):
        first, _ = _run_mix()
        second, _ = _run_mix()
        assert first == second

    def test_identical_event_execution_order(self):
        _, first_order = _run_mix(record_events=True)
        _, second_order = _run_mix(record_events=True)
        assert first_order  # the hook actually observed events
        assert first_order == second_order


class TestSeedEquivalence:
    def test_mix_stats_match_always_tick_engine(self):
        active, _ = _run_mix()
        with always_tick():
            seed, _ = _run_mix()
        # Executed-event counts are the optimization itself; everything the
        # model computes must match exactly.
        active.pop("events")
        seed.pop("events")
        assert active == seed

    def test_p2p_gt_results_match_always_tick_engine(self):
        def run():
            tb = build_point_to_point(gt=True, max_transactions=25)
            tb.run_until_done()
            return _normalize({
                "latency": tb.master.latency_summary(),
                "samples": tb.master.stats.latency("latency").samples,
                "master_kernel":
                    tb.system.kernel(tb.master_ni).stats.summary(),
                "slave_kernel": tb.system.kernel(tb.slave_ni).stats.summary(),
            })

        active = run()
        with always_tick():
            seed = run()
        assert active == seed

    def test_slow_port_clock_results_match_always_tick_engine(self):
        """Port clocks slower than the flit clock invert the seed's heap
        ordering at coincident instants; the deterministic creation-order
        tie-break keeps both engine modes identical regardless."""

        def run():
            tb = build_point_to_point(gt=False, max_transactions=15,
                                      port_clock_mhz=100.0)
            tb.run_until_done(max_flit_cycles=60000)
            return _normalize({
                "latency": tb.master.latency_summary(),
                "samples": tb.master.stats.latency("latency").samples,
                "master_kernel":
                    tb.system.kernel(tb.master_ni).stats.summary(),
                "slave_kernel": tb.system.kernel(tb.slave_ni).stats.summary(),
            })

        active = run()
        with always_tick():
            seed = run()
        assert active["latency"]["count"] == 15
        assert active == seed

    def test_activity_engine_executes_fewer_events_on_mixed_traffic(self):
        _, _ = _run_mix()  # warm import paths
        tb = build_gt_be_mix(num_gt=1, num_be=1)
        tb.run_flit_cycles(1500)
        active_events = tb.system.sim.executed_events
        with always_tick():
            tb2 = build_gt_be_mix(num_gt=1, num_be=1)
            tb2.run_flit_cycles(1500)
            seed_events = tb2.system.sim.executed_events
        assert active_events < seed_events
