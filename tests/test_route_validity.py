"""Property test: every computed route is physically valid.

For random connected custom topologies and every registered strategy that
applies, a source route must (1) traverse only links that exist, (2) agree
with ``PortMap.port_toward`` at every intermediate hop, and (3) end on the
destination NI's local port.  This is the contract the NI kernels and
routers rely on: a single bad port index would misdeliver a packet.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.routing import (
    ShortestPath,
    TableRouting,
    TorusDimensionOrdered,
    XYRouting,
)
from repro.network.topology import Topology, build_port_map


@st.composite
def connected_topologies(draw):
    """A random connected custom topology of 2..8 routers.

    A random spanning tree guarantees connectivity; extra random edges add
    cycles and irregularity.
    """
    num_nodes = draw(st.integers(min_value=2, max_value=8))
    nodes = [f"n{i}" for i in range(num_nodes)]
    edges = set()
    for i in range(1, num_nodes):
        parent = draw(st.integers(min_value=0, max_value=i - 1))
        edges.add((nodes[parent], nodes[i]))
    extra = draw(st.lists(
        st.tuples(st.integers(0, num_nodes - 1),
                  st.integers(0, num_nodes - 1)),
        max_size=6))
    for a, b in extra:
        if a != b:
            edges.add((nodes[min(a, b)], nodes[max(a, b)]))
    return Topology.custom(nodes, sorted(edges))


def _assert_route_valid(topology, port_map, strategy, src, dst,
                        final_local_port):
    sequence = strategy.router_sequence(topology, src, dst)
    route = strategy.route(topology, port_map, src, dst, final_local_port)
    assert sequence[0] == src and sequence[-1] == dst
    assert len(route) == len(sequence)
    for here, nxt, port in zip(sequence, sequence[1:], route):
        # The hop uses an existing link and the port the map assigns to it.
        assert topology.graph.has_edge(here, nxt)
        assert port == port_map.port_toward(here, nxt)
    assert route[-1] == final_local_port
    assert final_local_port in port_map.local_ports[dst]


@settings(max_examples=60, deadline=None)
@given(topology=connected_topologies(), data=st.data())
def test_shortest_path_routes_are_valid(topology, data):
    port_map = build_port_map(topology)
    routers = topology.routers
    src = data.draw(st.sampled_from(routers))
    dst = data.draw(st.sampled_from(routers))
    _assert_route_valid(topology, port_map, ShortestPath(), src, dst,
                        port_map.local_port(dst, 0))


@settings(max_examples=60, deadline=None)
@given(topology=connected_topologies(), data=st.data())
def test_table_routes_are_valid(topology, data):
    """A table built from any existing paths yields valid port routes."""
    port_map = build_port_map(topology)
    routers = topology.routers
    src = data.draw(st.sampled_from(routers))
    dst = data.draw(st.sampled_from(routers))
    sequence = topology.shortest_path(src, dst)
    strategy = TableRouting({(src, dst): sequence})
    _assert_route_valid(topology, port_map, strategy, src, dst,
                        port_map.local_port(dst, 0))


@settings(max_examples=40, deadline=None)
@given(rows=st.integers(1, 5), cols=st.integers(1, 5), data=st.data())
def test_mesh_and_torus_routes_are_valid(rows, cols, data):
    mesh = Topology.mesh(rows, cols)
    torus = Topology.torus(rows, cols)
    mesh_map = build_port_map(mesh)
    torus_map = build_port_map(torus)
    src = data.draw(st.sampled_from(mesh.routers))
    dst = data.draw(st.sampled_from(mesh.routers))
    _assert_route_valid(mesh, mesh_map, XYRouting(), src, dst,
                        mesh_map.local_port(dst, 0))
    _assert_route_valid(torus, torus_map, TorusDimensionOrdered(), src, dst,
                        torus_map.local_port(dst, 0))
