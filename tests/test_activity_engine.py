"""Tests for activity-driven scheduling: idle-skip clocks, wake-ups, the
tuple-based event heap, and the slotted hot-path objects."""

import pytest

from repro.design.generator import build_system
from repro.design.spec import ChannelSpec, NISpec, NoCSpec, PortSpec
from repro.network.packet import Flit, Packet, PacketHeader, packet_to_flits
from repro.sim.clock import (
    Clock,
    ClockedComponent,
    always_tick,
    run_cycles,
    set_default_idle_skip,
    ungated,
)
from repro.sim.engine import SimulationError, Simulator


class Worker(ClockedComponent):
    """Ticks while it has pending work; idle otherwise."""

    def __init__(self):
        self.work = 0
        self.ticks = []

    def tick(self, cycle):
        self.ticks.append(cycle)
        if self.work:
            self.work -= 1

    def is_idle(self):
        return self.work == 0

    def add_work(self, amount=1):
        self.work += amount
        self.notify_active()


class AlwaysBusy(ClockedComponent):
    def __init__(self):
        self.ticks = []

    def tick(self, cycle):
        self.ticks.append(cycle)


# ---------------------------------------------------------------------------
# Clock idle-skip and wake-up
# ---------------------------------------------------------------------------
class TestIdleSkip:
    def test_clock_sleeps_when_all_components_idle(self):
        sim = Simulator()
        clock = Clock(sim, 500.0)
        worker = Worker()
        clock.add_component(worker)
        clock.start()
        sim.run_for(20000)
        # Edge 0 fires, observes the idle worker, and the clock sleeps.
        assert worker.ticks == [0]
        assert clock.sleeping
        assert sim.pending_events() == 0
        # Time still advances through the requested window.
        assert sim.now == 20000

    def test_wake_fires_next_edge_strictly_after_stimulus(self):
        sim = Simulator()
        clock = Clock(sim, 500.0)  # 2000 ps period
        worker = Worker()
        clock.add_component(worker)
        clock.start()
        sim.run_for(10000)
        assert worker.ticks == [0] and clock.sleeping
        # Stimulus at t=10000 (an edge instant): the first edge that can
        # react is the next one, cycle 6 at t=12000 — matching always-tick,
        # where the edge at the stimulus instant ran before the stimulus.
        worker.add_work(1)
        assert not clock.sleeping
        sim.run_for(4000)
        assert worker.ticks == [0, 6]

    def test_cycle_index_is_time_derived_across_sleep(self):
        sim = Simulator()
        clock = Clock(sim, 500.0)
        worker = Worker()
        clock.add_component(worker)
        clock.start()
        sim.run_for(100000)
        worker.add_work(2)
        sim.run_for(100000)
        # Woken at t=100000 -> edges at cycles 51 and 52 drain the work, then
        # the clock sleeps again.  Slot alignment (cycle % S) is preserved.
        assert worker.ticks == [0, 51, 52]
        assert clock.cycle == 52

    def test_default_component_keeps_clock_awake(self):
        sim = Simulator()
        clock = Clock(sim, 500.0)
        busy = AlwaysBusy()
        clock.add_component(busy)
        clock.start()
        sim.run_for(10000)
        assert busy.ticks == [0, 1, 2, 3, 4, 5]
        assert not clock.sleeping

    def test_always_tick_mode_never_sleeps(self):
        sim = Simulator()
        with always_tick():
            clock = Clock(sim, 500.0)
        worker = Worker()
        clock.add_component(worker)
        clock.start()
        sim.run_for(10000)
        assert worker.ticks == [0, 1, 2, 3, 4, 5]
        assert not clock.sleeping

    def test_set_default_idle_skip_returns_previous(self):
        previous = set_default_idle_skip(False)
        try:
            assert previous is True
            assert Clock(Simulator(), 500.0).idle_skip is False
        finally:
            set_default_idle_skip(previous)

    def test_commit_event_skipped_without_post_tick_components(self):
        sim = Simulator()
        clock = Clock(sim, 500.0, idle_skip=False)
        clock.add_component(AlwaysBusy())   # no post_tick override
        clock.start()
        sim.run_for(10000)
        # 6 edges (0..5), no commit events: one event per cycle plus the
        # pending edge for cycle 6.
        assert sim.executed_events == 6

    def test_component_added_to_sleeping_clock_gets_ticked(self):
        sim = Simulator()
        clock = Clock(sim, 500.0)
        clock.add_component(Worker())
        clock.start()
        sim.run_for(10000)
        assert clock.sleeping
        late = AlwaysBusy()
        clock.add_component(late)
        assert not clock.sleeping
        sim.run_for(10000)
        assert late.ticks  # the late component ticks from the next edge on

    def test_coincident_edges_run_in_clock_creation_order(self):
        """Cross-clock stimulus at a coincident instant is observed one
        period late by an earlier-created clock — identically in both
        engine modes, even when the stimulating clock is slower."""

        class Receiver(ClockedComponent):
            def __init__(self):
                self.mailbox = 0
                self.seen_at = None

            def tick(self, cycle):
                if self.mailbox and self.seen_at is None:
                    self.seen_at = cycle

            def is_idle(self):
                return not self.mailbox

        class Sender(ClockedComponent):
            def __init__(self, receiver, at_cycle):
                self.receiver = receiver
                self.at_cycle = at_cycle

            def tick(self, cycle):
                if cycle == self.at_cycle:
                    self.receiver.mailbox += 1
                    self.receiver.notify_active()

            def is_idle(self):
                return False

        def run(idle_skip):
            sim = Simulator()
            fast = Clock(sim, 500.0, idle_skip=idle_skip)    # created first
            slow = Clock(sim, 250.0, idle_skip=idle_skip)    # 4000 ps
            receiver = Receiver()
            fast.add_component(receiver)
            slow.add_component(Sender(receiver, at_cycle=5))  # t = 20000 ps
            fast.start()
            slow.start()
            sim.run_for(60000)
            return receiver.seen_at

        # The stimulus lands at t=20000 ps, a coincident edge instant.  The
        # earlier-created fast clock's edge (cycle 10) runs first, so the
        # stimulus is observed at cycle 11 — in both modes.
        assert run(idle_skip=True) == run(idle_skip=False) == 11

    def test_idle_mesh_executes_at_least_10x_fewer_events(self):
        def run():
            nis = [NISpec(name=f"ni{r}_{c}", router=(r, c),
                          ports=[PortSpec(name="p", kind="master", shell=None,
                                          channels=[ChannelSpec(8, 8)])])
                   for r in range(4) for c in range(4)]
            spec = NoCSpec(name="idle", topology="mesh", rows=4, cols=4,
                           nis=nis)
            system = build_system(spec)
            system.run_flit_cycles(1000)
            return system.sim.executed_events

        active = run()
        with always_tick():
            seed = run()
        assert seed >= 10 * active


# ---------------------------------------------------------------------------
# run_cycles contract
# ---------------------------------------------------------------------------
class TestRunCycles:
    def test_exactly_n_edges_from_fresh_clock(self):
        sim = Simulator()
        clock = Clock(sim, 500.0)
        busy = AlwaysBusy()
        clock.add_component(busy)
        run_cycles(sim, clock, 3)
        assert busy.ticks == [0, 1, 2]
        assert clock.cycle == 2

    def test_consecutive_calls_compose(self):
        sim = Simulator()
        clock = Clock(sim, 500.0)
        busy = AlwaysBusy()
        clock.add_component(busy)
        run_cycles(sim, clock, 3)
        run_cycles(sim, clock, 2)
        assert busy.ticks == [0, 1, 2, 3, 4]

    def test_zero_cycles_is_a_no_op(self):
        sim = Simulator()
        clock = Clock(sim, 500.0)
        busy = AlwaysBusy()
        clock.add_component(busy)
        run_cycles(sim, clock, 0)
        assert busy.ticks == []

    def test_negative_cycles_raises(self):
        sim = Simulator()
        clock = Clock(sim, 500.0)
        with pytest.raises(SimulationError):
            run_cycles(sim, clock, -1)

    def test_time_advances_through_idle_windows(self):
        sim = Simulator()
        clock = Clock(sim, 500.0)
        worker = Worker()
        clock.add_component(worker)
        run_cycles(sim, clock, 5)
        # Only edge 0 executed (idle-skip), but the window covers 5 instants.
        assert worker.ticks == [0]
        assert sim.now == clock.edge_time(4)
        run_cycles(sim, clock, 5)
        assert sim.now == clock.edge_time(9)


# ---------------------------------------------------------------------------
# Event heap: cancellation accounting and compaction
# ---------------------------------------------------------------------------
class TestEventHeap:
    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        first = sim.schedule(10, lambda: None)
        sim.schedule(20, lambda: None)
        assert sim.pending_events() == 2
        first.cancel()
        assert sim.pending_events() == 1
        first.cancel()  # double-cancel is a no-op
        assert sim.pending_events() == 1
        sim.run()
        assert sim.pending_events() == 0
        assert sim.executed_events == 1

    def test_cancel_after_execution_is_a_no_op(self):
        sim = Simulator()
        event = sim.schedule(10, lambda: None)
        sim.run()
        event.cancel()
        assert sim.pending_events() == 0

    def test_peek_does_not_lose_live_events(self):
        sim = Simulator()
        cancelled = sim.schedule(5, lambda: None)
        hits = []
        sim.schedule(10, lambda: hits.append(sim.now))
        cancelled.cancel()
        sim.run(until=3)   # peeks past the cancelled head without executing
        assert sim.pending_events() == 1
        sim.run()
        assert hits == [10]

    def test_mass_cancellation_compacts_the_heap(self):
        sim = Simulator()
        events = [sim.schedule(i + 1, lambda: None) for i in range(1000)]
        for event in events[:900]:
            event.cancel()
        assert sim.pending_events() == 100
        # The heap itself was compacted, not just the accounting.
        assert len(sim._queue) < 1000
        sim.run()
        assert sim.executed_events == 100

    def test_run_until_advances_time_on_empty_queue(self):
        sim = Simulator()
        sim.run(until=12345)
        assert sim.now == 12345


# ---------------------------------------------------------------------------
# Slotted hot-path objects
# ---------------------------------------------------------------------------
class TestSlots:
    def _flit(self):
        header = PacketHeader(path=(1,), remote_qid=0)
        packet = Packet(header, [1, 2, 3, 4])
        return packet_to_flits(packet)[0]

    def test_flit_has_no_dict(self):
        flit = self._flit()
        assert not hasattr(flit, "__dict__")
        with pytest.raises(AttributeError):
            flit.arbitrary_attribute = 1

    def test_packet_header_has_no_dict(self):
        header = PacketHeader(path=(1,), remote_qid=0)
        assert not hasattr(header, "__dict__")
        with pytest.raises(AttributeError):
            header.arbitrary_attribute = 1

    def test_packet_has_no_dict(self):
        packet = Packet(PacketHeader(path=(1,), remote_qid=0), [1])
        assert not hasattr(packet, "__dict__")

    def test_event_handle_has_no_dict(self):
        event = Simulator().schedule(10, lambda: None)
        assert not hasattr(event, "__dict__")


# ---------------------------------------------------------------------------
# Burst delivery vs the wake protocol (batched pipeline invariant): a link
# holding any part of a burst must report busy, so the consumer's clock
# keeps ticking until the last flit is consumed.  PR 1's wake protocol is
# the invariant batching most easily breaks — a link that reported idle
# while a burst sat staged would let the clock sleep and strand the flits.
# ---------------------------------------------------------------------------
class TestBurstWakeProtocol:
    def _gt_flits(self, count):
        from repro.network.packet import Packet, PacketHeader, packet_to_flits
        header = PacketHeader(path=(0,), remote_qid=0, is_gt=True)
        # FLIT_WORDS is 3: one header word + 2 payload words per flit.
        payload = list(range(3 * count - 1))
        flits = packet_to_flits(Packet(header, payload))
        assert len(flits) == count
        return flits

    def _build(self, burst_len):
        from repro.network.link import Link

        class Producer(ClockedComponent):
            """Sends one burst at cycle 1, then reports idle forever."""

            def __init__(self, link, flits):
                self.link = link
                self.flits = flits
                self.sent = False

            def tick(self, cycle):
                if not self.sent and cycle >= 1:
                    self.link.send_burst(list(self.flits), cycle)
                    self.sent = True

            def is_idle(self):
                return self.sent

        class Consumer(ClockedComponent):
            """Drains the link; deliberately always reports idle.

            Only the link's own busy state may hold the clock awake:
            if Link.is_idle() lied, the clock would sleep mid-burst and
            the received count would fall short.
            """

            def __init__(self, link):
                self.link = link
                self.received = []

            def tick(self, cycle):
                burst = self.link.take_staged_burst()
                if burst is not None:
                    self.received.extend(burst)
                    return
                flit = self.link.take()
                if flit is not None:
                    self.received.append(flit)

            def is_idle(self):
                return True

        sim = Simulator()
        clock = Clock(sim, 500.0, name="flit")
        link = Link("l")
        flits = self._gt_flits(burst_len)
        producer = Producer(link, flits)
        consumer = Consumer(link)
        # Tick order mirrors the real pipeline: producer (kernel) first,
        # then the consumer (router); the link commits on post_tick.
        clock.add_component(producer)
        clock.add_component(consumer)
        clock.add_component(link)
        return sim, clock, link, consumer, flits

    def test_staged_burst_holds_clock_awake_until_drained(self):
        sim, clock, link, consumer, flits = self._build(4)
        clock.start()
        sim.run(until=sim.now + 40 * clock.period_ps)
        assert consumer.received == flits
        assert link.is_idle()
        # With everything drained the clock must now be asleep (no events).
        assert sim.pending_events() == 0

    def test_trickled_be_burst_holds_clock_awake_until_drained(self):
        from repro.network.link import Link
        from repro.network.packet import Packet, PacketHeader, packet_to_flits
        sim, clock, link, consumer, _ = self._build(1)
        header = PacketHeader(path=(0,), remote_qid=0, is_gt=False)
        be_flits = packet_to_flits(Packet(header, list(range(8))))
        assert len(be_flits) > 2
        # Replace the producer's single-flit burst with a BE burst, which
        # the link delivers by trickling one flit per cycle.
        producer = clock._components[0]
        producer.flits = be_flits
        clock.start()
        sim.run(until=sim.now + 60 * clock.period_ps)
        assert consumer.received == be_flits
        assert link.is_idle()
        assert sim.pending_events() == 0

    def test_broken_idle_report_would_strand_the_burst(self):
        """Negative control: prove the test pins Link.is_idle, not luck.

        Runs ungated: this pins the *idle-skip* wake protocol, where the
        clock's only activity signal is ``is_idle``.  Under tick gating the
        link's truthful ``next_action_cycle`` (dense while flits are staged)
        keeps the clock awake even with a lying ``is_idle`` — which the next
        test pins as the layered-contract behavior.
        """
        with ungated():
            sim, clock, link, consumer, flits = self._build(4)
        link.is_idle = lambda: True  # simulate the bug batching could add
        clock.start()
        sim.run(until=sim.now + 40 * clock.period_ps)
        # The clock slept mid-burst: flits stranded inside the link.
        assert len(consumer.received) < len(flits)
        assert link.occupancy > 0

    def test_gating_horizon_rescues_a_broken_idle_report(self):
        """With gating on, the link's dense next-action horizon keeps the
        clock awake through the burst even if ``is_idle`` lies."""
        sim, clock, link, consumer, flits = self._build(4)
        assert clock.tick_gating
        link.is_idle = lambda: True
        clock.start()
        sim.run(until=sim.now + 40 * clock.period_ps)
        assert consumer.received == flits
        assert link.occupancy == 0
