"""Tests for runtime fault injection (repro.faults).

Covers the fault model bottom-up: link poisoning, the channel poison
intervals, route validation against failed links, fault-aware rerouting,
the master-shell retry/timeout layer, deadlock re-analysis after topology
mutation, and the end-to-end fault scenarios.
"""

import warnings

import pytest

from repro.analysis.deadlock import (
    DeadlockError,
    analyze_strategy,
    assert_deadlock_free,
)
from repro.api import SystemBuilder, scenarios
from repro.core.channel import Channel
from repro.faults import FaultAwareRouting, FaultError, FaultPlan
from repro.ip.traffic import ConstantBitRateTraffic
from repro.network.link import Link
from repro.network.noc import RouteError
from repro.network.packet import Packet, PacketHeader, packet_to_flits
from repro.network.topology import Topology
from repro.protocol.transactions import ResponseError, TransactionStatus


def make_packet(words=(1, 2, 3)):
    header = PacketHeader(path=(0,), remote_qid=0)
    return Packet(header, list(words))


def send_packet(link, packet, start_cycle=0):
    """Push every flit of a packet through a link, draining the sink side."""
    cycle = start_cycle
    for flit in packet_to_flits(packet):
        link.send(flit)
        link.post_tick(cycle)
        link.take()
        cycle += 1
    return cycle


class TestLinkPoisoning:
    def test_healthy_link_leaves_packets_alone(self):
        link = Link("l")
        packet = make_packet()
        send_packet(link, packet)
        assert not packet.poisoned
        assert link.packets_poisoned == 0
        assert link.words_poisoned == 0

    def test_failed_link_poisons_new_packets_but_still_carries_them(self):
        link = Link("l")
        link.fail()
        packet = make_packet([1, 2, 3, 4])
        send_packet(link, packet)
        # Poisoned, not deleted: the flits traversed and were counted.
        assert packet.poisoned
        assert link.packets_poisoned == 1
        assert link.words_poisoned == 4
        assert link.flits_carried == len(packet_to_flits(packet))

    def test_fail_poisons_the_in_flight_packet(self):
        link = Link("l")
        packet = make_packet()
        link.send(packet_to_flits(packet)[0])
        link.fail()
        assert packet.poisoned

    def test_repair_restores_healthy_behaviour(self):
        link = Link("l")
        link.fail()
        link.repair()
        packet = make_packet()
        send_packet(link, packet)
        assert not packet.poisoned

    def test_lossy_link_poisons_with_seeded_probability(self):
        class AlwaysDrop:
            def random(self):
                return 0.0

        class NeverDrop:
            def random(self):
                return 1.0

        link = Link("l")
        link.set_lossy(0.5, AlwaysDrop())
        packet = make_packet()
        send_packet(link, packet)
        assert packet.poisoned

        link.set_lossy(0.5, NeverDrop())
        clean = make_packet()
        send_packet(link, clean, start_cycle=10)
        assert not clean.poisoned

    def test_clear_lossy_stops_poisoning(self):
        class AlwaysDrop:
            def random(self):
                return 0.0

        link = Link("l")
        link.set_lossy(1.0, AlwaysDrop())
        link.clear_lossy()
        packet = make_packet()
        send_packet(link, packet)
        assert not packet.poisoned

    def test_set_lossy_validates_probability(self):
        link = Link("l")
        with pytest.raises(ValueError):
            link.set_lossy(1.5, None)

    def test_a_packet_is_poisoned_once(self):
        link_a, link_b = Link("a"), Link("b")
        link_a.fail()
        link_b.fail()
        packet = make_packet()
        send_packet(link_a, packet)
        send_packet(link_b, packet, start_cycle=10)
        assert link_a.packets_poisoned == 1
        assert link_b.packets_poisoned == 0


class TestChannelPoisonIntervals:
    def deposit(self, channel, words, poisoned=False):
        for word in words:
            channel.dest_queue.push(word)
        channel._ctr_words_received.increment(len(words))
        if poisoned:
            channel.note_poisoned_words(len(words))

    def test_poisoned_words_flagged_in_pop_order(self):
        channel = Channel(0, "c", dest_queue_words=16)
        self.deposit(channel, [1, 2])                  # clean
        self.deposit(channel, [3, 4], poisoned=True)   # corrupt
        self.deposit(channel, [5], poisoned=False)     # clean again
        flags = []
        for _ in range(5):
            channel.dest_queue.pop()
            flags.append(bool(channel.poison_intervals)
                         and channel.rx_word_poisoned())
        assert flags == [False, False, True, True, False]
        assert not channel.poison_intervals

    def test_adjacent_intervals_merge(self):
        channel = Channel(0, "c", dest_queue_words=16)
        self.deposit(channel, [1, 2], poisoned=True)
        self.deposit(channel, [3, 4], poisoned=True)
        assert len(channel.poison_intervals) == 1
        assert channel.poison_intervals[0] == [0, 4]

    def test_healthy_channel_has_no_interval_state(self):
        channel = Channel(0, "c", dest_queue_words=16)
        self.deposit(channel, [1, 2, 3])
        # The shell guards on this truthiness test, so a healthy channel
        # never calls rx_word_poisoned at all.
        assert not channel.poison_intervals


class TestRouteErrorNamesDeadLink:
    """Satellite: NoC.route/route_link_ids raise actionable RouteErrors."""

    def build(self, rows, cols):
        return (SystemBuilder("t")
                .mesh(rows, cols)
                .add_master("m0", router=(0, 0))
                .add_memory("mem", router=(0, cols - 1))
                .connect("m0", "mem")
                .build())

    def test_route_names_the_dead_link_and_suggests_masking(self):
        system = self.build(2, 2)
        noc = system.noc
        noc.fail_link(("router:(0, 0)", "router:(0, 1)"))
        with pytest.raises(RouteError) as exc:
            noc.route("m0", "mem")
        message = str(exc.value)
        assert "crosses failed link router:(0, 0)->router:(0, 1)" in message
        # The 2x2 mesh still has a detour: the error must say so and point
        # at the fault-aware strategy.
        assert "a fault-free path exists" in message
        assert "FaultAwareRouting" in message

    def test_route_link_ids_reports_disconnection(self):
        system = self.build(1, 2)
        noc = system.noc
        noc.fail_link(("router:(0, 0)", "router:(0, 1)"))
        with pytest.raises(RouteError,
                           match="no fault-free path exists"):
            noc.route_link_ids("m0", "mem")

    def test_healthy_noc_routes_unchanged(self):
        system = self.build(2, 2)
        assert system.noc.route("m0", "mem")


class TestFaultAwareRouting:
    def test_passthrough_when_no_failures(self):
        topo = Topology.mesh(2, 2)
        routing = FaultAwareRouting(base="xy")
        from repro.network.routing import make_routing
        base = make_routing("xy")
        assert (routing.router_sequence(topo, (0, 0), (1, 1))
                == base.router_sequence(topo, (0, 0), (1, 1)))

    def test_detours_around_failed_edge(self):
        topo = Topology.mesh(2, 2)
        routing = FaultAwareRouting(base="xy")
        routing.fail_edge((0, 0), (0, 1))
        sequence = routing.router_sequence(topo, (0, 0), (0, 1))
        assert sequence[0] == (0, 0) and sequence[-1] == (0, 1)
        assert ((0, 0), (0, 1)) not in set(zip(sequence, sequence[1:]))

    def test_repair_edge_restores_base_route(self):
        topo = Topology.mesh(2, 2)
        routing = FaultAwareRouting(base="xy")
        routing.fail_edge((0, 0), (0, 1))
        routing.repair_edge((0, 0), (0, 1))
        assert routing.router_sequence(topo, (0, 0), (0, 1)) == [(0, 0), (0, 1)]

    def test_disconnection_names_failed_links(self):
        topo = Topology.mesh(1, 2)
        routing = FaultAwareRouting(base="xy")
        routing.fail_edge((0, 0), (0, 1))
        with pytest.raises(RouteError, match="failed links"):
            routing.router_sequence(topo, (0, 0), (0, 1))

    def test_live_failures_refuse_spec_serialization(self):
        routing = FaultAwareRouting(base="xy")
        routing.fail_edge((0, 0), (0, 1))
        with pytest.raises(RouteError, match="cannot be serialized"):
            routing.spec_name()


class TestTorusDeadlockReanalysis:
    """Satellite: deadlock re-analysis after mutating a torus.

    The dimension-ordered torus strategy is deadlock-free; removing one
    link forces fault-masked shortest-path detours that break the
    ordering, and the re-run analysis must name a witness cycle.
    """

    def test_torus_deadlock_free_before_mutation(self):
        routing = FaultAwareRouting(base="torus")
        report = analyze_strategy(Topology.torus(4, 4), routing)
        assert report.ok, report.describe()

    def test_link_removal_induces_cycle_and_describe_names_witness(self):
        routing = FaultAwareRouting(base="torus")
        routing.fail_edge((0, 1), (1, 1))
        report = analyze_strategy(Topology.torus(4, 4), routing)
        assert not report.ok
        text = report.describe()
        assert "channel dependency cycle over 6 channels" in text
        assert "under fault_aware routing" in text
        # The witness cycle is printed hop by hop ...
        assert "router:(1, 2)=>router:(1, 1)" in text
        assert "router:(1, 1)=>router:(1, 0)" in text
        # ... and blamed on the detoured routes.
        assert "(0, 2)->(1, 1)" in report.cycle_routes()
        with pytest.raises(DeadlockError, match="channel dependency cycle"):
            assert_deadlock_free(report)


class TestFaultPlan:
    def test_transient_window_must_be_positive(self):
        plan = FaultPlan()
        with pytest.raises(FaultError):
            plan.transient(100, 100, (0, 0), (0, 1))

    def test_events_sort_stably_by_cycle(self):
        plan = FaultPlan()
        plan.repair(90, (0, 0), (0, 1))
        plan.link_down(10, (0, 0), (0, 1))
        plan.transient(10, 50, (0, 0), (1, 0))
        cycles = [event.cycle for event in plan.sorted_events()]
        assert cycles == sorted(cycles)
        assert len(plan) == 4  # link_down + lossy start/end + repair

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()


class TestRetryLayer:
    def test_aggressive_timeout_retries_and_suppresses_duplicates(self):
        # A healthy system with a timeout shorter than the round trip: every
        # retransmit races its own original response, so the retry layer
        # must suppress the duplicates and still complete everything once.
        system = (SystemBuilder("dup")
                  .mesh(1, 2)
                  .add_master("m0", router=(0, 0),
                              pattern=ConstantBitRateTraffic(
                                  period_cycles=20, burst_words=4,
                                  write=True, posted=False),
                              max_transactions=10,
                              timeout_cycles=8, max_retries=8)
                  .add_memory("mem", router=(0, 1), words=1024)
                  .connect("m0", "mem")
                  .build())
        system.run_until_idle(max_flit_cycles=60000)
        master = system.master("m0")
        assert len(master.completed) == 10
        assert all(t.status is TransactionStatus.COMPLETED
                   for t in master.completed)
        counters = master.shell.stats.counters
        assert counters["retries"].value > 0
        assert counters["duplicates_suppressed"].value > 0

    def test_retry_exhaustion_reports_timeout_not_hang(self):
        # Fail the only link of a 1x2 mesh: no reroute exists, the channel
        # is degraded as unreachable and in-flight transactions end in a
        # local TIMEOUT completion instead of wedging the run.
        system = (SystemBuilder("dead")
                  .mesh(1, 2)
                  .add_master("m0", router=(0, 0),
                              pattern=ConstantBitRateTraffic(
                                  period_cycles=10, burst_words=2,
                                  write=True, posted=False),
                              max_transactions=6,
                              timeout_cycles=60, max_retries=1)
                  .add_memory("mem", router=(0, 1), words=1024)
                  .connect("m0", "mem", name="c")
                  .inject_fault(30, (0, 0), (0, 1))
                  .build())
        cycles = system.run_until_idle(max_flit_cycles=120000)
        assert cycles < 120000  # reached idle: nothing hangs
        master = system.master("m0")
        assert len(master.completed) == 6
        timeouts = [t for t in master.completed
                    if t.response is not None
                    and t.response.error is ResponseError.TIMEOUT]
        assert timeouts
        assert all(t.status is TransactionStatus.ERROR for t in timeouts)
        report = system.health_report()
        assert report.timeouts >= 1
        assert not report.healthy
        assert "unreachable" in report.degraded["c:request"]

    def test_retry_knobs_validated(self):
        builder = (SystemBuilder("bad").mesh(1, 2)
                   .add_master("m0", router=(0, 0), timeout_cycles=-1)
                   .add_memory("mem", router=(0, 1))
                   .connect("m0", "mem"))
        with pytest.raises(Exception, match="timeout_cycles"):
            builder.build()


class TestNoFaultIdentity:
    """Declaring no faults must add no state anywhere."""

    def build(self, **master_kwargs):
        return (SystemBuilder("clean")
                .mesh(1, 2)
                .add_master("m0", router=(0, 0),
                            pattern=ConstantBitRateTraffic(
                                period_cycles=10, burst_words=2,
                                write=True, posted=True),
                            max_transactions=4, **master_kwargs)
                .add_memory("mem", router=(0, 1), words=1024)
                .connect("m0", "mem")
                .build())

    def test_no_fault_system_has_no_injector_or_retry_counters(self):
        system = self.build()
        assert system._fault_manager is None
        shell = system.master("m0").shell
        assert "retries" not in shell.stats.counters
        assert "timeouts" not in shell.stats.counters

    def test_health_report_works_without_declared_faults(self):
        system = self.build()
        system.run_until_idle(max_flit_cycles=60000)
        report = system.health_report()
        assert report.healthy
        assert report.packets_dropped == 0
        # Reporting must not create retry counters as a side effect.
        assert "retries" not in system.master("m0").shell.stats.counters

    def test_fingerprint_identical_with_and_without_fault_subsystem_loaded(self):
        def run():
            system = self.build()
            system.run_until_idle(max_flit_cycles=60000)
            return system.fingerprint()

        assert run() == run()


class TestFaultScenarios:
    def test_fault_scenarios_registered_under_faults_tag(self):
        names = scenarios.names(tag="faults")
        assert {"link_failure_reroute", "transient_storm",
                "gt_degraded"} <= set(names)

    def test_link_failure_reroute_loses_nothing(self):
        system = scenarios.build("link_failure_reroute")
        cycles = system.run_until_idle(max_flit_cycles=200000)
        assert cycles < 200000
        master = system.master("m0")
        # Every BE transaction completes despite the mid-run link kill.
        assert len(master.completed) == 60
        assert all(t.status is TransactionStatus.COMPLETED
                   for t in master.completed)
        assert all(t.response is not None and t.response.ok
                   for t in master.completed)
        report = system.health_report()
        assert len(report.failed_links) == 2       # both directions
        assert report.rerouted.get("m0_mem:request", 0) >= 1
        assert report.packets_dropped >= 1         # the in-flight loss
        assert report.retries >= 1                 # ... recovered by retry
        # The rerouted BE route set passes the Dally/Seitz re-analysis.
        assert_deadlock_free(system.faults.last_deadlock_report)
        assert not report.healthy
        assert "down:" in report.describe()

    def test_transient_storm_rides_out_the_window(self):
        system = scenarios.build("transient_storm")
        cycles = system.run_until_idle(max_flit_cycles=400000)
        assert cycles < 400000
        master = system.master("m0")
        assert len(master.completed) == 40
        assert all(t.status is TransactionStatus.COMPLETED
                   for t in master.completed)
        report = system.health_report()
        assert report.packets_dropped > 0
        assert report.retries > 0

    def test_transient_storm_is_deterministic_per_seed(self):
        def run():
            system = scenarios.build("transient_storm")
            system.run_until_idle(max_flit_cycles=400000)
            report = system.health_report()
            return (report.packets_dropped, report.words_dropped,
                    report.retries, system.fingerprint())

        assert run() == run()

    def test_transient_storm_health_counters_are_pinned(self):
        # Exact golden values for the default seed (7): the drop RNG is
        # keyed per link, so these move only if the fault model, retry
        # layer or packetisation changes — which is exactly what this
        # test is meant to surface.
        system = scenarios.build("transient_storm")
        system.run_until_idle(max_flit_cycles=400000)
        report = system.health_report()
        assert report.packets_dropped == 244     # poisoned and discarded
        assert report.words_dropped == 153
        assert report.retries == 66
        assert report.timeouts == 0
        assert report.duplicates_suppressed == 11

    def test_gt_degraded_demotes_but_never_breaks(self):
        system = scenarios.build("gt_degraded")
        cycles = system.run_until_idle(max_flit_cycles=400000)
        assert cycles < 400000
        # Both masters finish every transaction ...
        assert len(system.master("m0").completed) == 40
        assert len(system.master("blocker").completed) == 20
        for name in ("m0", "blocker"):
            assert all(t.status is TransactionStatus.COMPLETED
                       for t in system.master(name).completed)
        # ... but the victim lost its guarantees, visibly.
        report = system.health_report()
        assert report.gt_intact == {"victim": False, "blocker": True}
        assert (report.degraded["victim:request"]
                == "GT slots not re-placeable; demoted to BE")
        assert (report.degraded["victim:response"]
                == "GT slots not re-placeable; demoted to BE")
        assert "DEGRADED" in report.describe()
        assert report.as_dict()["gt_intact"]["blocker"] is True

    def test_repair_keeps_detour_and_records_the_repair(self):
        system = (SystemBuilder("repair")
                  .mesh(2, 2)
                  .add_master("m0", router=(0, 0),
                              pattern=ConstantBitRateTraffic(
                                  period_cycles=10, burst_words=2,
                                  write=True, posted=False),
                              max_transactions=30,
                              timeout_cycles=400, max_retries=5)
                  .add_memory("mem", router=(1, 1), words=1024)
                  .connect("m0", "mem", name="c")
                  .inject_fault(40, (0, 0), (0, 1), until_cycle=200)
                  .build())
        cycles = system.run_until_idle(max_flit_cycles=200000)
        assert cycles < 200000
        master = system.master("m0")
        assert len(master.completed) == 30
        assert all(t.status is TransactionStatus.COMPLETED
                   for t in master.completed)
        report = system.health_report()
        assert len(report.repaired_links) == 2
        # Existing detours are kept after repair: still one reroute.
        assert report.rerouted.get("c:request", 0) == 1
