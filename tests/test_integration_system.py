"""Integration tests for the GT/BE mix, narrowcast and configuration systems."""

import pytest

from repro.config.connection import (
    ChannelEndpointRef,
    ChannelPairSpec,
    ConnectionSpec,
)
from repro.protocol.transactions import Transaction
from repro.testbench import build_config_system, build_gt_be_mix, build_narrowcast


class TestGtBeMix:
    def test_gt_and_be_pairs_both_make_progress(self):
        mix = build_gt_be_mix(num_gt=1, num_be=1, gt_slots=2)
        mix.run_flit_cycles(1500)
        for pair in mix.pairs:
            assert len(pair.master.completed) > 10, pair.name

    def test_gt_throughput_unaffected_by_be_load(self):
        """Compositionality: adding BE traffic must not slow the GT channel."""
        quiet = build_gt_be_mix(num_gt=1, num_be=0, gt_slots=2,
                                gt_pattern_period=12)
        loaded = build_gt_be_mix(num_gt=1, num_be=3, gt_slots=2,
                                 gt_pattern_period=12, be_pattern_period=4)
        quiet.run_flit_cycles(2000)
        loaded.run_flit_cycles(2000)
        quiet_done = len(quiet.gt_pairs()[0].master.completed)
        loaded_done = len(loaded.gt_pairs()[0].master.completed)
        assert loaded_done >= quiet_done * 0.95

    def test_be_latency_degrades_under_gt_load(self):
        light = build_gt_be_mix(num_gt=0, num_be=1, be_pattern_period=12)
        heavy = build_gt_be_mix(num_gt=3, num_be=1, gt_slots=2,
                                gt_pattern_period=4, be_pattern_period=12)
        light.run_flit_cycles(2000)
        heavy.run_flit_cycles(2000)
        light_latency = light.be_pairs()[0].master.latency_summary()["mean"]
        heavy_latency = heavy.be_pairs()[0].master.latency_summary()["mean"]
        assert heavy_latency >= light_latency

    def test_shared_link_carries_both_traffic_classes(self):
        mix = build_gt_be_mix(num_gt=1, num_be=1, gt_slots=2)
        mix.run_flit_cycles(1000)
        link = mix.shared_link()
        assert link.gt_flits_carried > 0
        assert link.be_flits_carried > 0

    def test_slot_allocations_disjoint_across_gt_pairs(self):
        mix = build_gt_be_mix(num_gt=3, num_be=0, gt_slots=2)
        assignment = mix.system.allocator.assignment_map()
        all_link_slots = set()
        for (ni, channel), slots in assignment.items():
            for slot in slots:
                key = ((ni, channel), slot)
                assert key not in all_link_slots
                all_link_slots.add(key)
        # Three request channels plus three response channels hold slots.
        assert len(assignment) == 6
        # Request channels of the three masters share the forward link, so
        # their injection-slot sets must be pairwise disjoint.
        request_slots = [set(assignment[(f"m{i}", 0)]) for i in range(3)]
        for i in range(3):
            for j in range(i + 1, 3):
                assert not request_slots[i] & request_slots[j]


class TestNarrowcast:
    def test_shared_address_space_is_split_over_memories(self):
        tb = build_narrowcast(num_slaves=2, range_words=256)
        tb.master.issue(Transaction.write(0x10, [1, 2]))
        tb.master.issue(Transaction.write(256 * 4 + 0x10, [3, 4]))
        tb.run_until_done()
        assert tb.memories[0].memory.read_burst(0x10, 2) == [1, 2]
        assert tb.memories[1].memory.read_burst(0x10, 2) == [3, 4]

    def test_reads_come_back_from_the_right_memory(self):
        tb = build_narrowcast(num_slaves=3, range_words=128, cols=2)
        for slave in range(3):
            tb.master.issue(Transaction.write(slave * 128 * 4, [100 + slave]))
        for slave in range(3):
            tb.master.issue(Transaction.read(slave * 128 * 4, length=1))
        tb.run_until_done()
        reads = [t for t in tb.master.completed if t.is_read]
        assert [t.response.read_data[0] for t in reads] == [100, 101, 102]

    def test_responses_delivered_in_transaction_order(self):
        tb = build_narrowcast(num_slaves=2, range_words=256)
        addresses = [0x0, 256 * 4, 0x20, 256 * 4 + 0x20]
        for address in addresses:
            tb.master.issue(Transaction.write(address, [address]))
        tb.run_until_done()
        assert [t.address for t in tb.master.completed] == addresses

    def test_out_of_range_address_is_rejected_by_the_shell(self):
        tb = build_narrowcast(num_slaves=2, range_words=64)
        tb.master.issue(Transaction.write(10_000_000, [1]))
        with pytest.raises(Exception):
            tb.run_flit_cycles(500)


class TestConfigurationOverTheNoc:
    def test_bootstrap_completes_and_acknowledges(self):
        tb = build_config_system(num_data_nis=2)
        tb.run_until_config_idle()
        assert tb.config_shell.is_idle()
        acks = tb.config_shell.stats.counter("acknowledgements").value
        assert acks == 2      # one acknowledged write per bootstrapped NI

    def test_connection_opened_via_the_noc_matches_functional_result(self):
        tb = build_config_system(num_data_nis=2)
        tb.run_until_config_idle()
        spec = ConnectionSpec(
            name="b_to_a", kind="p2p",
            pairs=[ChannelPairSpec(master=ChannelEndpointRef("ni1", 1),
                                   slave=ChannelEndpointRef("ni2", 1),
                                   request_gt=True, request_slots=2)])
        handle = tb.manager.open_connection(spec)
        tb.run_until_config_idle()
        assert handle.done
        kernel = tb.system.kernel("ni1")
        assert kernel.channel(1).regs.enabled
        assert kernel.channel(1).regs.gt
        assert kernel.channel(1).regs.path == tb.system.noc.route("ni1", "ni2")
        assert len(kernel.slot_table.slots_of(1)) == 2
        slave_kernel = tb.system.kernel("ni2")
        assert slave_kernel.channel(1).regs.enabled

    def test_register_write_counts_match_figure_9_scale(self):
        """The paper: 5 writes at the master NI, 3 at the slave NI per pair."""
        tb = build_config_system(num_data_nis=2)
        tb.run_until_config_idle()
        spec = ConnectionSpec(
            name="plain_be", kind="p2p",
            pairs=[ChannelPairSpec(master=ChannelEndpointRef("ni1", 1),
                                   slave=ChannelEndpointRef("ni2", 1))])
        handle = tb.manager.open_connection(spec)
        tb.run_until_config_idle()
        per_ni = handle.register_writes_per_ni
        assert 3 <= per_ni["ni1"] <= 6
        assert 3 <= per_ni["ni2"] <= 6

    def test_opened_connection_carries_data(self):
        """After configuring B->A over the NoC, B can issue requests to A."""
        from repro.core.shells.master import MasterShell
        from repro.core.shells.point_to_point import PointToPointShell
        from repro.core.shells.slave import SlaveShell
        from repro.ip.slave import MemorySlave

        tb = build_config_system(num_data_nis=2)
        tb.run_until_config_idle()
        system = tb.system
        # Attach a master IP to ni1's data port (channel 1 = data conn 0) and
        # a memory slave to ni2's data port.
        master_conn = PointToPointShell("b_conn",
                                        system.kernel("ni1").port("data"),
                                        role="master", conn=0)
        master_shell = MasterShell("b_shell", master_conn)
        slave_conn = PointToPointShell("a_conn",
                                       system.kernel("ni2").port("data"),
                                       role="slave", conn=0)
        memory = MemorySlave("a_mem")
        slave_shell = SlaveShell("a_slave", slave_conn, memory)
        clock_m = system.port_clock("ni1", "data")
        clock_s = system.port_clock("ni2", "data")
        for component in (master_shell, master_conn):
            clock_m.add_component(component)
        for component in (slave_conn, slave_shell, memory):
            clock_s.add_component(component)

        spec = ConnectionSpec(
            name="b_to_a", kind="p2p",
            pairs=[ChannelPairSpec(master=ChannelEndpointRef("ni1", 1),
                                   slave=ChannelEndpointRef("ni2", 1))])
        tb.manager.open_connection(spec)
        tb.run_until_config_idle()

        master_shell.submit(Transaction.write(0x30, [5, 6, 7]))
        tb.run_flit_cycles(600)
        assert memory.memory.read_burst(0x30, 3) == [5, 6, 7]

    def test_more_data_nis_bootstrap_on_a_larger_mesh(self):
        tb = build_config_system(num_data_nis=3, rows=2, cols=2)
        tb.run_until_config_idle(max_flit_cycles=40000)
        assert tb.config_shell.is_idle()
        assert tb.config_shell.stats.counter("acknowledgements").value == 3
