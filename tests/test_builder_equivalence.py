"""Equivalence suite: SystemBuilder output is byte-identical to the legacy
hand-rolled testbench assembly.

The legacy ``repro.testbench`` builders are now thin wrappers over
:mod:`repro.api`.  To guarantee the redesign changed *nothing* about the
simulated systems, this suite keeps verbatim copies of the seed-era manual
assembly code (NI specs, shell wiring, connection programs — exactly as
``testbench.py`` hand-rolled them before the redesign) as golden references
and asserts that running the wrapper-built system produces byte-identical
counters, latencies, memory traffic, event counts and traces on the E10
(GT/BE mix) and E11 (narrowcast) workloads.
"""

import math

from repro.config.connection import (
    ChannelEndpointRef,
    ChannelPairSpec,
    ConnectionSpec,
)
from repro.core.shells.master import MasterShell
from repro.core.shells.narrowcast import AddressRange, NarrowcastShell
from repro.core.shells.point_to_point import PointToPointShell
from repro.core.shells.slave import SlaveShell
from repro.design.generator import build_system
from repro.design.spec import ChannelSpec, NISpec, NoCSpec, PortSpec
from repro.ip.master import TrafficGeneratorMaster
from repro.ip.memory import SharedMemory
from repro.ip.slave import MemorySlave
from repro.ip.traffic import ConstantBitRateTraffic
from repro.protocol.transactions import Transaction
from repro.sim.trace import Tracer
from repro.api import SystemBuilder
from repro.testbench import (
    build_gt_be_mix,
    build_narrowcast,
    build_point_to_point,
)


def normalize(obj):
    if isinstance(obj, float):
        return "NaN" if math.isnan(obj) else obj
    if isinstance(obj, dict):
        return {key: normalize(value) for key, value in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [normalize(value) for value in obj]
    return obj


def fingerprint(system, masters, memories):
    """Everything observable: time, events, flits, stats, memory traffic."""
    return normalize({
        "now": system.sim.now,
        "executed_events": system.sim.executed_events,
        "flits": system.noc.total_flits_forwarded(),
        "kernels": {name: kernel.stats.summary()
                    for name, kernel in system.kernels.items()},
        "masters": {m.name: (m.latency_summary(), m.stats.summary(),
                             len(m.completed)) for m in masters},
        "memories": [(mem.memory.reads, mem.memory.writes)
                     for mem in memories],
    })


# ---------------------------------------------------------------------------
# Golden reference: the seed-era manual assembly, copied verbatim
# ---------------------------------------------------------------------------
def legacy_gt_be_mix(num_gt=1, num_be=1, gt_slots=2, num_slots=8,
                     queue_words=8, gt_pattern_period=12, be_pattern_period=6,
                     burst_words=4, port_clock_mhz=500.0, posted_writes=True):
    """The pre-redesign build_gt_be_mix body (E10)."""
    ni_specs = []
    names = []
    for index in range(num_gt + num_be):
        gt = index < num_gt
        master_ni = f"m{index}"
        slave_ni = f"s{index}"
        names.append((master_ni, slave_ni, gt))
        ni_specs.append(NISpec(
            name=master_ni, router=(0, 0), num_slots=num_slots,
            ports=[PortSpec(name="p", kind="master", shell="p2p",
                            clock_mhz=port_clock_mhz,
                            channels=[ChannelSpec(queue_words, queue_words)])]))
        ni_specs.append(NISpec(
            name=slave_ni, router=(0, 1), num_slots=num_slots,
            ports=[PortSpec(name="p", kind="slave", shell="p2p",
                            clock_mhz=port_clock_mhz,
                            channels=[ChannelSpec(queue_words, queue_words)])]))
    spec = NoCSpec(name="mix_tb", topology="mesh", rows=1, cols=2,
                   num_slots=num_slots, nis=ni_specs)
    system = build_system(spec)
    configurator = system.functional_configurator()

    masters, memories = [], []
    for master_ni, slave_ni, gt in names:
        master_clock = system.port_clock(master_ni, "p")
        conn_shell = PointToPointShell(f"{master_ni}_conn",
                                       system.kernel(master_ni).port("p"),
                                       role="master")
        master_shell = MasterShell(f"{master_ni}_shell", conn_shell)
        period = gt_pattern_period if gt else be_pattern_period
        pattern = ConstantBitRateTraffic(period_cycles=period,
                                         burst_words=burst_words,
                                         write=True, posted=posted_writes)
        master = TrafficGeneratorMaster(f"{master_ni}_ip", master_shell,
                                        pattern=pattern)
        for component in (master, master_shell, conn_shell):
            master_clock.add_component(component)

        slave_clock = system.port_clock(slave_ni, "p")
        slave_conn = PointToPointShell(f"{slave_ni}_conn",
                                       system.kernel(slave_ni).port("p"),
                                       role="slave")
        memory = MemorySlave(f"{slave_ni}_mem")
        slave_shell = SlaveShell(f"{slave_ni}_shell", slave_conn, memory)
        for component in (slave_conn, slave_shell, memory):
            slave_clock.add_component(component)

        connection = ConnectionSpec(
            name=f"conn_{master_ni}", kind="p2p",
            pairs=[ChannelPairSpec(
                master=ChannelEndpointRef(master_ni, 0),
                slave=ChannelEndpointRef(slave_ni, 0),
                request_gt=gt, request_slots=gt_slots if gt else 0,
                response_gt=gt, response_slots=gt_slots if gt else 0)])
        configurator.open_connection(system.noc, connection)
        masters.append(master)
        memories.append(memory)
    return system, masters, memories


def legacy_narrowcast(num_slaves=2, range_words=1024, rows=1, cols=2,
                      num_slots=8, queue_words=8, port_clock_mhz=500.0,
                      slave_latency=1):
    """The pre-redesign build_narrowcast body (E11)."""
    master_ni = "ni_m"
    slave_nis = [f"ni_s{i}" for i in range(num_slaves)]
    mesh_nodes = [(r, c) for r in range(rows) for c in range(cols)]
    ni_specs = [NISpec(
        name=master_ni, router=(0, 0), num_slots=num_slots,
        ports=[PortSpec(name="p", kind="master", shell="narrowcast",
                        clock_mhz=port_clock_mhz,
                        channels=[ChannelSpec(queue_words, queue_words)
                                  for _ in range(num_slaves)])])]
    for index, name in enumerate(slave_nis):
        router = mesh_nodes[(index + 1) % len(mesh_nodes)]
        ni_specs.append(NISpec(
            name=name, router=router, num_slots=num_slots,
            ports=[PortSpec(name="p", kind="slave", shell="p2p",
                            clock_mhz=port_clock_mhz,
                            channels=[ChannelSpec(queue_words, queue_words)])]))
    spec = NoCSpec(name="narrowcast_tb", topology="mesh", rows=rows,
                   cols=cols, num_slots=num_slots, nis=ni_specs)
    system = build_system(spec)

    ranges = [AddressRange(base=i * range_words * 4, size=range_words * 4,
                           conn=i) for i in range(num_slaves)]
    master_clock = system.port_clock(master_ni, "p")
    narrowcast_shell = NarrowcastShell("narrowcast",
                                       system.kernel(master_ni).port("p"),
                                       address_ranges=ranges)
    master_shell = MasterShell("m_shell", narrowcast_shell)
    master = TrafficGeneratorMaster("master", master_shell)
    for component in (master, master_shell, narrowcast_shell):
        master_clock.add_component(component)

    memories = []
    pairs = []
    for index, name in enumerate(slave_nis):
        slave_clock = system.port_clock(name, "p")
        slave_conn = PointToPointShell(f"{name}_conn",
                                       system.kernel(name).port("p"),
                                       role="slave")
        memory = MemorySlave(f"{name}_mem", memory=SharedMemory(range_words * 4),
                             latency_cycles=slave_latency)
        slave_shell = SlaveShell(f"{name}_shell", slave_conn, memory)
        for component in (slave_conn, slave_shell, memory):
            slave_clock.add_component(component)
        memories.append(memory)
        pairs.append(ChannelPairSpec(
            master=ChannelEndpointRef(master_ni, index),
            slave=ChannelEndpointRef(name, 0)))

    connection = ConnectionSpec(name="narrowcast", kind="narrowcast",
                                pairs=pairs)
    system.functional_configurator().open_connection(system.noc, connection)
    return system, master, memories


def legacy_point_to_point_traced(tracer, gt, max_transactions):
    """The pre-redesign build_point_to_point body, with tracing wired in."""
    master_ni, slave_ni = "ni_m", "ni_s"
    queue_words = 8
    spec = NoCSpec(
        name="p2p_tb", topology="mesh", rows=1, cols=2, num_slots=8,
        nis=[
            NISpec(name=master_ni, router=(0, 0), num_slots=8,
                   ports=[PortSpec(name="p", kind="master", shell="p2p",
                                   clock_mhz=500.0,
                                   channels=[ChannelSpec(queue_words,
                                                         queue_words)])]),
            NISpec(name=slave_ni, router=(0, 1), num_slots=8,
                   ports=[PortSpec(name="p", kind="slave", shell="p2p",
                                   clock_mhz=500.0,
                                   channels=[ChannelSpec(queue_words,
                                                         queue_words)])]),
        ])
    system = build_system(spec, tracer=tracer)

    master_clock = system.port_clock(master_ni, "p")
    master_conn_shell = PointToPointShell("m_conn",
                                          system.kernel(master_ni).port("p"),
                                          role="master", tracer=tracer)
    master_shell = MasterShell("m_shell", master_conn_shell, tracer=tracer)
    pattern = ConstantBitRateTraffic(period_cycles=16, burst_words=4,
                                     write=True)
    master = TrafficGeneratorMaster("master", master_shell, pattern=pattern,
                                    max_transactions=max_transactions)
    for component in (master, master_shell, master_conn_shell):
        master_clock.add_component(component)

    slave_clock = system.port_clock(slave_ni, "p")
    slave_conn_shell = PointToPointShell("s_conn",
                                         system.kernel(slave_ni).port("p"),
                                         role="slave", tracer=tracer)
    memory = MemorySlave("memory", memory=SharedMemory(0), latency_cycles=1)
    slave_shell = SlaveShell("s_shell", slave_conn_shell, memory,
                             tracer=tracer)
    for component in (slave_conn_shell, slave_shell, memory):
        slave_clock.add_component(component)

    connection = ConnectionSpec(
        name="tb", kind="p2p",
        pairs=[ChannelPairSpec(
            master=ChannelEndpointRef(master_ni, 0),
            slave=ChannelEndpointRef(slave_ni, 0),
            request_gt=gt, request_slots=2 if gt else 0,
            response_gt=gt, response_slots=2 if gt else 0)])
    system.functional_configurator().open_connection(system.noc, connection)
    return system, master, memory


# ---------------------------------------------------------------------------
# The suite
# ---------------------------------------------------------------------------
class TestE10GtBeMixEquivalence:
    def test_wrapper_is_byte_identical_to_legacy_assembly(self):
        legacy_system, legacy_masters, legacy_memories = legacy_gt_be_mix(
            num_gt=2, num_be=2, gt_slots=2, gt_pattern_period=8,
            be_pattern_period=4, burst_words=4)
        legacy_system.run_flit_cycles(1500)
        golden = fingerprint(legacy_system, legacy_masters, legacy_memories)

        tb = build_gt_be_mix(num_gt=2, num_be=2, gt_slots=2,
                             gt_pattern_period=8, be_pattern_period=4,
                             burst_words=4)
        tb.run_flit_cycles(1500)
        ours = fingerprint(tb.system, [p.master for p in tb.pairs],
                           [p.memory for p in tb.pairs])
        assert ours == golden

    def test_non_default_parameters_also_identical(self):
        params = dict(num_gt=1, num_be=2, gt_slots=3, num_slots=12,
                      queue_words=4, gt_pattern_period=10,
                      be_pattern_period=5, burst_words=2,
                      posted_writes=False)
        legacy_system, legacy_masters, legacy_memories = \
            legacy_gt_be_mix(**params)
        legacy_system.run_flit_cycles(1000)
        golden = fingerprint(legacy_system, legacy_masters, legacy_memories)

        tb = build_gt_be_mix(**params)
        tb.run_flit_cycles(1000)
        ours = fingerprint(tb.system, [p.master for p in tb.pairs],
                           [p.memory for p in tb.pairs])
        assert ours == golden


class TestE11NarrowcastEquivalence:
    @staticmethod
    def workload(master, range_words, num_slaves):
        span = num_slaves * range_words * 4
        for block in range(8):
            address = (block * 96 * 4) % span
            master.issue(Transaction.write(address, [block * 10 + i
                                                     for i in range(4)]))
        for block in range(8):
            address = (block * 96 * 4) % span
            master.issue(Transaction.read(address, length=4))

    def test_wrapper_is_byte_identical_to_legacy_assembly(self):
        legacy_system, legacy_master, legacy_memories = legacy_narrowcast(
            num_slaves=3, range_words=128, rows=2, cols=2)
        self.workload(legacy_master, 128, 3)
        legacy_system.run_flit_cycles(3000)
        golden = fingerprint(legacy_system, [legacy_master], legacy_memories)

        tb = build_narrowcast(num_slaves=3, range_words=128, rows=2, cols=2)
        self.workload(tb.master, 128, 3)
        tb.run_flit_cycles(3000)
        ours = fingerprint(tb.system, [tb.master], tb.memories)
        assert ours == golden


class TestP2PTraceEquivalence:
    def test_traces_are_byte_identical(self):
        """Same system, same workload -> the exact same trace event stream."""
        legacy_tracer = Tracer()
        legacy_system, legacy_master, _ = legacy_point_to_point_traced(
            legacy_tracer, gt=True, max_transactions=10)
        legacy_system.run_flit_cycles(2000)

        builder_tracer = Tracer()
        system = (SystemBuilder("p2p_tb")
                  .mesh(1, 2)
                  .trace(builder_tracer)
                  .add_master("master", router=(0, 0), ni="ni_m",
                              shell_name="m_shell", conn_name="m_conn",
                              pattern=ConstantBitRateTraffic(
                                  period_cycles=16, burst_words=4,
                                  write=True),
                              max_transactions=10)
                  .add_memory("memory", router=(0, 1), ni="ni_s",
                              shell_name="s_shell", conn_name="s_conn")
                  .connect("master", "memory", name="tb", gt=True, slots=2)
                  .build())
        system.run_flit_cycles(2000)

        def rows(tracer):
            # Packet ids come from a process-global counter, so two systems
            # built in one process are offset; canonicalize by order of
            # first appearance (structure-preserving).
            canonical = {}
            out = []
            for e in tracer.events:
                details = []
                for key, value in sorted(e.details.items()):
                    if key == "packet":
                        value = canonical.setdefault(value, len(canonical))
                    details.append((key, value))
                out.append((e.time_ps, e.source, e.kind, details))
            return out

        assert rows(legacy_tracer) == rows(builder_tracer)
        assert len(builder_tracer.events) > 0


class TestP2PWrapperCompatibility:
    def test_wrapper_exposes_legacy_fields(self):
        tb = build_point_to_point(gt=True, max_transactions=5)
        assert tb.master_ni == "ni_m" and tb.slave_ni == "ni_s"
        assert tb.master_shell.name == "m_shell"
        assert tb.master_conn_shell.name == "m_conn"
        assert tb.slave_shell.name == "s_shell"
        assert tb.spec.name == "tb"
        assert tb.slot_assignment[("ni_m", 0)]
        ran = tb.run_until_done()
        assert tb.master.done()
        assert ran < 20000  # no 50-cycle overshoot loop to the cap
        assert len(tb.master.completed) == 5
        # The richer API handle rides along.
        assert tb.api is not None
        assert tb.api.master("master").ip is tb.master
