"""reprolint: positive/negative fixtures per rule, suppressions, baseline
round-trip, CLI exit codes, and the shipped-tree cleanliness gate.

Every rule id has a minimal violating snippet and a minimal compliant
snippet; fixtures are linted with ``select=[rule_id]`` so unrelated rules
(fixture mode applies all of them) cannot blur the result.  The
"broken snippet" tests at the bottom are the ``make check`` gate
demonstration required by the issue: introducing a determinism or
wake-protocol violation makes the analyzer (and therefore check.sh, which
runs it first) fail.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis.lint import (
    Baseline,
    BaselineEntry,
    LintError,
    all_rules,
    lint_paths,
    lint_source,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def rule_ids(source: str, select=None) -> set:
    report = lint_source(textwrap.dedent(source), select=select)
    return {violation.rule_id for violation in report.violations}


# ---------------------------------------------------------------------------
# Fixtures: (rule_id, violating snippet, compliant snippet)
# ---------------------------------------------------------------------------

FIXTURES = [
    (
        "det-wall-clock",
        """
        import time

        def stamp():
            return time.time()
        """,
        """
        def stamp(sim):
            return sim.now
        """,
    ),
    (
        "det-module-random",
        """
        import random

        def jitter():
            return random.randint(0, 7)
        """,
        """
        import random

        def jitter(seed):
            return random.Random(seed).randint(0, 7)
        """,
    ),
    (
        "det-unordered-iter",
        """
        def drain(pending: set):
            ready = {1, 2, 3}
            for index in ready:
                yield index
        """,
        """
        def drain(pending):
            ready = {1: None, 2: None, 3: None}
            for index in ready:
                yield index
        """,
    ),
    (
        "det-float-cycles",
        """
        def schedule(words):
            delay_ps = words / 3
            return delay_ps
        """,
        """
        def schedule(words):
            delay_ps = words // 3
            return delay_ps
        """,
    ),
    (
        "wake-mutate-no-notify",
        """
        class Producer:
            def is_idle(self):
                return not self.queue

            def submit_word(self, word):
                self.queue.append(word)
        """,
        """
        class Producer:
            def is_idle(self):
                return not self.queue

            def submit_word(self, word):
                self.queue.append(word)
                self.notify_active()
        """,
    ),
    (
        "wake-impure-is-idle",
        """
        class Lazy:
            def is_idle(self):
                self.polls += 1
                return not self.queue
        """,
        """
        class Lazy:
            def is_idle(self):
                return not self.queue
        """,
    ),
    (
        "gate-next-action-consistent",
        """
        class Gated:
            def next_action_cycle(self, cycle):
                self.queries += 1
                return cycle + 4
        """,
        """
        class Gated:
            def is_idle(self):
                return not self.pending

            def next_action_cycle(self, cycle):
                if not self.pending:
                    return cycle + 4
                return cycle + 1
        """,
    ),
    (
        "wake-slot-version",
        """
        class Table:
            def __init__(self):
                self.version = 0
                self.entries = {}

            def reserve(self, slot, owner):
                self.entries[slot] = owner
        """,
        """
        class Table:
            def __init__(self):
                self.version = 0
                self.entries = {}

            def reserve(self, slot, owner):
                self.entries[slot] = owner
                self.version += 1
        """,
    ),
    (
        "hot-missing-slots",
        """
        class Flit:
            def __init__(self, packet, index):
                self.packet = packet
                self.index = index
        """,
        """
        class Flit:
            __slots__ = ("packet", "index")

            def __init__(self, packet, index):
                self.packet = packet
                self.index = index
        """,
    ),
    (
        "hot-alloc-in-tick",
        """
        class Router:
            def tick(self, cycle):
                for port in sorted(self.ports):
                    self._forward(port)
        """,
        """
        class Router:
            def tick(self, cycle):
                for port in self.port_order:
                    self._forward(port)
        """,
    ),
    (
        "ctr-registry-rebind",
        """
        class Component:
            def __init__(self, stats):
                self.stats = stats

            def reset_stats(self, stats):
                self.stats = stats
        """,
        """
        class Component:
            def __init__(self, stats):
                self.stats = stats
        """,
    ),
    (
        "ctr-uncached-counter",
        """
        class Component:
            def tick(self, cycle):
                self.stats.counter("flits").increment()
        """,
        """
        class Component:
            def __init__(self, stats):
                self.stats = stats
                self._ctr_flits = stats.counter("flits")

            def tick(self, cycle):
                self._ctr_flits.value += 1
        """,
    ),
    (
        "ctr-raw-reset",
        """
        def clear_window(ctr):
            ctr.value = 0
        """,
        """
        def clear_window(ctr):
            ctr.reset()
        """,
    ),
    (
        "ctr-burst-unguarded",
        """
        class Kernel:
            def transmit(self, link, flits):
                link.send_burst(flits)
        """,
        """
        class Kernel:
            def transmit(self, link, flits, cycle):
                length = self._burst_length(cycle, len(flits))
                if length >= 2:
                    link.send_burst(flits[:length])
        """,
    ),
    (
        "obs-hot-disabled",
        """
        class BufferProbe:
            def sample(self, cycle, sink):
                sink.append({"cycle": cycle, "depth": len(self.queue)})
        """,
        """
        class BufferProbe:
            def sample(self, cycle, sink):
                if not self.enabled:
                    return
                sink.append(len(self.queue))
        """,
    ),
]

ALL_RULE_IDS = sorted(rule for rule, _, _ in FIXTURES)


def test_every_registered_rule_has_a_fixture():
    assert sorted(all_rules()) == ALL_RULE_IDS


@pytest.mark.parametrize("rule_id,violating,compliant", FIXTURES,
                         ids=[f[0] for f in FIXTURES])
def test_rule_fixtures(rule_id, violating, compliant):
    assert rule_id in rule_ids(violating, select=[rule_id]), \
        f"{rule_id} missed its violating fixture"
    assert rule_ids(compliant, select=[rule_id]) == set(), \
        f"{rule_id} flagged its compliant fixture"


@pytest.mark.parametrize("rule_id,violating,_", FIXTURES,
                         ids=[f[0] for f in FIXTURES])
def test_violating_fixture_fails_via_cli(rule_id, violating, _, tmp_path):
    """`python -m repro.analysis.lint` exits nonzero on each rule's
    violating fixture (acceptance criterion)."""
    fixture = tmp_path / "fixture.py"
    fixture.write_text(textwrap.dedent(violating), encoding="utf-8")
    result = subprocess.run(
        [sys.executable, "-m", "repro.analysis.lint", str(fixture),
         "--no-baseline", "--select", rule_id],
        capture_output=True, text=True, cwd=REPO_ROOT)
    assert result.returncode == 1, result.stdout + result.stderr
    assert rule_id in result.stdout


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------

def test_same_line_suppression():
    source = """
    import time

    def stamp():
        return time.time()  # reprolint: disable=det-wall-clock
    """
    report = lint_source(textwrap.dedent(source),
                         select=["det-wall-clock"])
    assert report.ok
    assert report.inline_suppressed == 1


def test_suppression_is_rule_specific():
    source = """
    import time

    def stamp():
        return time.time()  # reprolint: disable=det-module-random
    """
    assert "det-wall-clock" in rule_ids(source, select=["det-wall-clock"])


def test_disable_all_on_line():
    source = """
    import time

    def stamp():
        return time.time()  # reprolint: disable=all
    """
    assert rule_ids(source) == set()


def test_file_level_suppression():
    source = """
    # reprolint: disable-file=det-wall-clock
    import time

    def stamp():
        return time.time()

    def stamp2():
        return time.monotonic()
    """
    report = lint_source(textwrap.dedent(source),
                         select=["det-wall-clock"])
    assert report.ok
    assert report.inline_suppressed == 2


def test_multiple_ids_one_comment():
    source = """
    import time

    def stamp():
        delay_ps = time.time() / 2  # reprolint: disable=det-wall-clock, det-float-cycles
        return delay_ps
    """
    assert rule_ids(source,
                    select=["det-wall-clock", "det-float-cycles"]) == set()


# ---------------------------------------------------------------------------
# Baseline round-trip
# ---------------------------------------------------------------------------

def test_baseline_round_trip(tmp_path):
    bad = tmp_path / "offender.py"
    bad.write_text(textwrap.dedent("""
        import time

        def stamp():
            return time.time()
        """), encoding="utf-8")

    raw = lint_paths([str(bad)], select=["det-wall-clock"])
    assert len(raw.violations) == 1

    baseline = Baseline.from_violations(raw.violations, reason="reviewed")
    baseline_path = tmp_path / "baseline.json"
    baseline.save(baseline_path)

    reloaded = Baseline.load(baseline_path)
    assert [entry.to_dict() for entry in reloaded.entries] == \
        [entry.to_dict() for entry in baseline.entries]

    gated = lint_paths([str(bad)], select=["det-wall-clock"],
                       baseline=reloaded)
    assert gated.ok
    assert gated.baseline_suppressed == 1


def test_baseline_count_bounds_absorption(tmp_path):
    bad = tmp_path / "offender.py"
    bad.write_text(textwrap.dedent("""
        import time

        def stamp():
            a = time.time()
            b = time.time()
            return a + b
        """), encoding="utf-8")
    baseline = Baseline(entries=[BaselineEntry(
        rule="det-wall-clock", path=str(bad), symbol="stamp", count=1)])
    report = lint_paths([str(bad)], select=["det-wall-clock"],
                        baseline=baseline)
    assert report.baseline_suppressed == 1
    assert len(report.violations) == 1  # the surplus is still reported


def test_baseline_matches_on_path_suffix(tmp_path):
    nested = tmp_path / "deep" / "nested"
    nested.mkdir(parents=True)
    bad = nested / "offender.py"
    bad.write_text("import time\nnow = time.time()\n", encoding="utf-8")
    baseline = Baseline(entries=[BaselineEntry(
        rule="det-wall-clock", path="nested/offender.py",
        symbol="<module>")])
    report = lint_paths([str(bad)], select=["det-wall-clock"],
                        baseline=baseline)
    assert report.ok


def test_malformed_baseline_rejected(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text('{"entries": [{"path": "x.py"}]}', encoding="utf-8")
    with pytest.raises(LintError):
        Baseline.load(path)


# ---------------------------------------------------------------------------
# Engine / CLI behaviour
# ---------------------------------------------------------------------------

def test_unknown_rule_id_rejected():
    with pytest.raises(LintError):
        lint_source("x = 1", select=["no-such-rule"])


def test_parse_error_is_reported(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def broken(:\n", encoding="utf-8")
    report = lint_paths([str(bad)])
    assert [v.rule_id for v in report.violations] == ["parse-error"]


def test_json_format_cli(tmp_path):
    fixture = tmp_path / "fixture.py"
    fixture.write_text("import time\nnow = time.time()\n", encoding="utf-8")
    result = subprocess.run(
        [sys.executable, "-m", "repro.analysis.lint", str(fixture),
         "--no-baseline", "--format", "json"],
        capture_output=True, text=True, cwd=REPO_ROOT)
    assert result.returncode == 1
    payload = json.loads(result.stdout)
    assert payload["ok"] is False
    assert payload["counts_by_rule"]["det-wall-clock"] == 1
    assert payload["violations"][0]["rule"] == "det-wall-clock"


def test_cli_usage_error_exit_code(tmp_path):
    result = subprocess.run(
        [sys.executable, "-m", "repro.analysis.lint",
         str(tmp_path / "does-not-exist"), "--no-baseline"],
        capture_output=True, text=True, cwd=REPO_ROOT)
    assert result.returncode == 2


def test_write_baseline_cli(tmp_path):
    fixture = tmp_path / "fixture.py"
    fixture.write_text("import time\nnow = time.time()\n", encoding="utf-8")
    out = tmp_path / "new_baseline.json"
    write = subprocess.run(
        [sys.executable, "-m", "repro.analysis.lint", str(fixture),
         "--no-baseline", "--write-baseline", str(out)],
        capture_output=True, text=True, cwd=REPO_ROOT)
    assert write.returncode == 0, write.stdout + write.stderr
    gated = subprocess.run(
        [sys.executable, "-m", "repro.analysis.lint", str(fixture),
         "--baseline", str(out)],
        capture_output=True, text=True, cwd=REPO_ROOT)
    assert gated.returncode == 0, gated.stdout + gated.stderr


# ---------------------------------------------------------------------------
# The shipped tree and the check-gate demonstration
# ---------------------------------------------------------------------------

def test_shipped_tree_is_clean():
    """`python -m repro.analysis.lint src/repro` exits 0 (acceptance)."""
    result = subprocess.run(
        [sys.executable, "-m", "repro.analysis.lint", "src/repro",
         "--baseline", "reprolint_baseline.json"],
        capture_output=True, text=True, cwd=REPO_ROOT)
    assert result.returncode == 0, result.stdout + result.stderr


def test_introduced_determinism_violation_fails_the_gate():
    """check.sh runs reprolint first, so a wall-clock read added to any
    engine module turns `make check` red.  Demonstrated on a snippet
    equivalent to such an edit."""
    broken = """
    import time

    class Router:
        def tick(self, cycle):
            self.last_seen = time.time()
    """
    assert "det-wall-clock" in rule_ids(broken, select=["det-wall-clock"])


def test_introduced_wake_violation_fails_the_gate():
    """The PR 7 negative control, statically: a component that grows a
    producer method without a wake hook is caught at lint time instead of
    stranding flits at run time."""
    broken = """
    class SneakyQueue:
        def is_idle(self):
            return not self._words

        def push_words(self, words):
            self._words.extend(words)
    """
    assert "wake-mutate-no-notify" in rule_ids(
        broken, select=["wake-mutate-no-notify"])


def test_shipped_baseline_entries_all_have_reasons():
    baseline = Baseline.load(REPO_ROOT / "reprolint_baseline.json")
    assert baseline.entries, "baseline should carry the reviewed exceptions"
    for entry in baseline.entries:
        assert entry.reason.strip(), \
            f"baseline entry {entry.key()} has no recorded reason"
