"""Unit tests for the connection shells (base streaming, p2p, narrowcast,
multicast, multi-connection).

The shells are tested directly against an NI kernel port: transmitted words
land in the channel source queues, and incoming messages are emulated by
pushing their words into the destination queues.
"""

import pytest

from repro.core.kernel import NIKernel
from repro.core.shells.base import ConnectionShell, ShellError
from repro.core.shells.multicast import MulticastShell
from repro.core.shells.multiconnection import MultiConnectionShell
from repro.core.shells.narrowcast import AddressRange, NarrowcastShell
from repro.core.shells.point_to_point import PointToPointShell
from repro.protocol.messages import RequestMessage, ResponseMessage
from repro.protocol.transactions import Command, ResponseError
from repro.sim.engine import Simulator


def make_port(num_channels=2, queue_words=16):
    kernel = NIKernel("ni", Simulator(), num_slots=8)
    for _ in range(num_channels):
        kernel.add_channel(queue_words, queue_words, cdc_cycles=0)
    return kernel, kernel.add_port("p", list(range(num_channels)))


def drain_source(port, conn):
    """Words the shell pushed into a channel's source queue."""
    channel = port.channel(conn)
    return channel.source_queue.pop_many(channel.source_queue.fill)


def feed_dest(port, conn, words):
    """Emulate words arriving from the network for a connection."""
    port.channel(conn).dest_queue.push_many(words)


def run_ticks(shell, cycles):
    for cycle in range(cycles):
        shell.tick(cycle)


class TestBaseStreaming:
    def test_streams_one_word_per_cycle(self):
        _, port = make_port()
        shell = ConnectionShell("s", port, role="master")
        msg = RequestMessage(command=Command.WRITE, address=0x4,
                             write_data=[1, 2, 3])
        assert shell.submit(msg, conn=0)
        run_ticks(shell, 2)
        assert port.channel(0).source_queue.fill == 2
        run_ticks(shell, 10)
        assert drain_source(port, 0) == msg.to_words()

    def test_tx_respects_source_queue_space(self):
        _, port = make_port(queue_words=4)
        shell = ConnectionShell("s", port, role="master")
        msg = RequestMessage(command=Command.WRITE, address=0,
                             write_data=[1] * 6)  # 8 words > 4-word queue
        shell.submit(msg, conn=0)
        run_ticks(shell, 20)
        assert port.channel(0).source_queue.fill == 4
        assert shell.stats.counter("tx_stalls").value > 0
        drain_source(port, 0)
        run_ticks(shell, 20)
        assert shell.pending_tx_messages() == 0

    def test_reassembles_incoming_response(self):
        _, port = make_port()
        shell = ConnectionShell("s", port, role="master")
        response = ResponseMessage(command=Command.READ, read_data=[7, 8],
                                   trans_id=3)
        feed_dest(port, 0, response.to_words())
        run_ticks(shell, 10)
        message, conn = shell.poll()
        assert message == response
        assert conn == 0
        assert shell.poll() is None

    def test_slave_role_parses_requests(self):
        _, port = make_port()
        shell = ConnectionShell("s", port, role="slave")
        request = RequestMessage(command=Command.READ, address=0x20,
                                 read_length=2, trans_id=1)
        feed_dest(port, 1, request.to_words())
        run_ticks(shell, 10)
        message, conn = shell.poll()
        assert message == request
        assert conn == 1

    def test_submit_capacity_limit(self):
        _, port = make_port()
        shell = ConnectionShell("s", port, role="master", max_pending_messages=1)
        msg = RequestMessage(command=Command.READ, address=0, read_length=1)
        assert shell.submit(msg, conn=0)
        assert not shell.can_submit()
        assert not shell.submit(msg, conn=0)

    def test_invalid_role_and_conn(self):
        _, port = make_port()
        with pytest.raises(ShellError):
            ConnectionShell("s", port, role="peer")
        shell = ConnectionShell("s", port, role="master")
        msg = RequestMessage(command=Command.READ, address=0, read_length=1)
        with pytest.raises(ValueError):
            shell.submit(msg, conn=7)

    def test_idle_tracks_pending_work(self):
        _, port = make_port()
        shell = ConnectionShell("s", port, role="master")
        assert shell.idle()
        shell.submit(RequestMessage(command=Command.READ, address=0,
                                    read_length=1), conn=0)
        assert not shell.idle()
        run_ticks(shell, 5)
        assert shell.idle()

    def test_request_flush_reaches_channel(self):
        _, port = make_port()
        shell = ConnectionShell("s", port, role="master")
        port.channel(0).source_queue.push(1)
        shell.request_flush(0)
        assert port.channel(0).flush_pending


class TestPointToPointShell:
    def test_fixed_connection(self):
        _, port = make_port()
        shell = PointToPointShell("p2p", port, role="master", conn=1)
        msg = RequestMessage(command=Command.READ, address=0, read_length=1)
        shell.submit(msg)
        run_ticks(shell, 5)
        assert port.channel(1).source_queue.fill == 2
        assert port.channel(0).source_queue.fill == 0

    def test_other_connection_rejected(self):
        _, port = make_port()
        shell = PointToPointShell("p2p", port, role="master", conn=0)
        msg = RequestMessage(command=Command.READ, address=0, read_length=1)
        with pytest.raises(ShellError):
            shell.submit(msg, conn=1)

    def test_unknown_conn_at_construction(self):
        _, port = make_port()
        with pytest.raises(ShellError):
            PointToPointShell("p2p", port, conn=9)

    def test_receives_only_from_its_connection(self):
        _, port = make_port()
        shell = PointToPointShell("p2p", port, role="master", conn=0)
        stray = ResponseMessage(command=Command.WRITE, trans_id=1)
        feed_dest(port, 1, stray.to_words())
        run_ticks(shell, 5)
        assert shell.poll() is None


class TestNarrowcastShell:
    def make(self, port, translate=True):
        ranges = [AddressRange(base=0x0000, size=0x100, conn=0),
                  AddressRange(base=0x100, size=0x100, conn=1)]
        return NarrowcastShell("nc", port, ranges,
                               translate_addresses=translate)

    def test_address_decoding_selects_connection(self):
        _, port = make_port()
        shell = self.make(port)
        assert shell.decode(0x10).conn == 0
        assert shell.decode(0x110).conn == 1
        with pytest.raises(ShellError):
            shell.decode(0x900)

    def test_requests_routed_by_address(self):
        _, port = make_port()
        shell = self.make(port)
        shell.submit(RequestMessage(command=Command.WRITE, address=0x10,
                                    write_data=[1]))
        shell.submit(RequestMessage(command=Command.WRITE, address=0x110,
                                    write_data=[2]))
        run_ticks(shell, 20)
        words0 = drain_source(port, 0)
        words1 = drain_source(port, 1)
        assert len(words0) == 3 and len(words1) == 3

    def test_address_translation_subtracts_range_base(self):
        _, port = make_port()
        shell = self.make(port, translate=True)
        shell.submit(RequestMessage(command=Command.WRITE, address=0x110,
                                    write_data=[2]))
        run_ticks(shell, 10)
        words = drain_source(port, 1)
        assert words[1] == 0x10   # address word after translation

    def test_no_translation_keeps_global_address(self):
        _, port = make_port()
        shell = self.make(port, translate=False)
        shell.submit(RequestMessage(command=Command.WRITE, address=0x110,
                                    write_data=[2]))
        run_ticks(shell, 10)
        assert drain_source(port, 1)[1] == 0x110

    def test_responses_delivered_in_transaction_order(self):
        _, port = make_port()
        shell = self.make(port)
        # Two reads: first to slave 0, then to slave 1.
        shell.submit(RequestMessage(command=Command.READ, address=0x0,
                                    read_length=1, trans_id=0))
        shell.submit(RequestMessage(command=Command.READ, address=0x100,
                                    read_length=1, trans_id=1))
        run_ticks(shell, 10)
        assert shell.outstanding_responses == 2
        # Slave 1 answers first, but its response may only be delivered after
        # slave 0's (in-order delivery).
        feed_dest(port, 1, ResponseMessage(command=Command.READ, read_data=[11],
                                           trans_id=1).to_words())
        run_ticks(shell, 10)
        assert shell.poll() is None
        feed_dest(port, 0, ResponseMessage(command=Command.READ, read_data=[10],
                                           trans_id=0).to_words())
        run_ticks(shell, 20)
        first = shell.poll()
        second = shell.poll()
        assert first[0].trans_id == 0 and first[1] == 0
        assert second[0].trans_id == 1 and second[1] == 1
        assert shell.outstanding_responses == 0

    def test_posted_writes_leave_no_history(self):
        _, port = make_port()
        shell = self.make(port)
        shell.submit(RequestMessage(command=Command.WRITE_POSTED, address=0x0,
                                    write_data=[1]))
        assert shell.outstanding_responses == 0

    def test_overlapping_ranges_rejected(self):
        _, port = make_port()
        with pytest.raises(ShellError):
            NarrowcastShell("nc", port, [AddressRange(0, 0x200, 0),
                                         AddressRange(0x100, 0x100, 1)])

    def test_response_submission_rejected(self):
        _, port = make_port()
        shell = self.make(port)
        with pytest.raises(ShellError):
            shell.submit(ResponseMessage(command=Command.READ))


class TestMulticastShell:
    def test_request_duplicated_on_all_connections(self):
        _, port = make_port()
        shell = MulticastShell("mc", port)
        shell.submit(RequestMessage(command=Command.WRITE_POSTED, address=0x4,
                                    write_data=[9]))
        run_ticks(shell, 10)
        assert drain_source(port, 0) == drain_source(port, 1)

    def test_acknowledgements_merged(self):
        _, port = make_port()
        shell = MulticastShell("mc", port)
        shell.submit(RequestMessage(command=Command.WRITE, address=0x4,
                                    write_data=[9], trans_id=5))
        run_ticks(shell, 10)
        assert shell.outstanding_acks == 1
        feed_dest(port, 0, ResponseMessage(command=Command.WRITE,
                                           trans_id=5).to_words())
        run_ticks(shell, 5)
        assert shell.poll() is None      # still waiting for the other slave
        feed_dest(port, 1, ResponseMessage(command=Command.WRITE, trans_id=5,
                                           error=ResponseError.SLAVE_ERROR
                                           ).to_words())
        run_ticks(shell, 5)
        message, _ = shell.poll()
        assert message.error == ResponseError.SLAVE_ERROR   # worst error wins
        assert shell.outstanding_acks == 0

    def test_subset_of_connections(self):
        _, port = make_port(num_channels=3)
        shell = MulticastShell("mc", port, conns=[0, 2])
        shell.submit(RequestMessage(command=Command.WRITE_POSTED, address=0,
                                    write_data=[1]))
        run_ticks(shell, 10)
        assert port.channel(0).source_queue.fill == 3
        assert port.channel(1).source_queue.fill == 0
        assert port.channel(2).source_queue.fill == 3

    def test_response_submission_rejected(self):
        _, port = make_port()
        shell = MulticastShell("mc", port)
        with pytest.raises(ShellError):
            shell.submit(ResponseMessage(command=Command.WRITE))


class TestMultiConnectionShell:
    def test_requests_consumed_from_fullest_connection_first(self):
        _, port = make_port()
        shell = MultiConnectionShell("mcx", port, scheduling="queue_fill")
        small = RequestMessage(command=Command.READ, address=0, read_length=1,
                               trans_id=1)
        big = RequestMessage(command=Command.WRITE, address=0,
                             write_data=[1, 2, 3, 4], trans_id=2)
        feed_dest(port, 0, small.to_words())
        feed_dest(port, 1, big.to_words())
        run_ticks(shell, 30)
        first, conn_first = shell.poll()
        assert conn_first == 1            # the fuller queue was served first
        assert first.trans_id == 2
        second, conn_second = shell.poll()
        assert conn_second == 0

    def test_responses_routed_back_in_request_order(self):
        _, port = make_port()
        shell = MultiConnectionShell("mcx", port)
        feed_dest(port, 1, RequestMessage(command=Command.READ, address=0,
                                          read_length=1,
                                          trans_id=7).to_words())
        run_ticks(shell, 10)
        shell.poll()
        assert shell.outstanding_responses == 1
        shell.submit(ResponseMessage(command=Command.READ, read_data=[1],
                                     trans_id=7))
        run_ticks(shell, 10)
        assert port.channel(1).source_queue.fill == 2
        assert shell.outstanding_responses == 0

    def test_response_without_outstanding_request_rejected(self):
        _, port = make_port()
        shell = MultiConnectionShell("mcx", port)
        with pytest.raises(ShellError):
            shell.submit(ResponseMessage(command=Command.READ, read_data=[1]))

    def test_unknown_scheduling_rejected(self):
        _, port = make_port()
        with pytest.raises(ShellError):
            MultiConnectionShell("mcx", port, scheduling="priority")

    def test_round_robin_scheduling(self):
        _, port = make_port()
        shell = MultiConnectionShell("mcx", port, scheduling="round_robin")
        for conn in (0, 1):
            feed_dest(port, conn,
                      RequestMessage(command=Command.READ, address=conn,
                                     read_length=1, trans_id=conn).to_words())
        run_ticks(shell, 30)
        delivered = [shell.poll() for _ in range(2)]
        assert {conn for _, conn in delivered} == {0, 1}
