"""Unit tests for instance specifications, XML round-trips and generation."""

import pytest

from repro.design.generator import build_system
from repro.design.spec import (
    ChannelSpec,
    NISpec,
    NoCSpec,
    PortSpec,
    SpecError,
    reference_ni_spec,
    reference_noc_spec,
)
from repro.design.xml_io import from_xml, to_xml


class TestSpecValidation:
    def test_channel_queue_sizes_positive(self):
        with pytest.raises(SpecError):
            ChannelSpec(source_queue_words=0)

    def test_port_kind_shell_protocol_validated(self):
        with pytest.raises(SpecError):
            PortSpec(name="p", kind="observer")
        with pytest.raises(SpecError):
            PortSpec(name="p", shell="bridge")
        with pytest.raises(SpecError):
            PortSpec(name="p", protocol="pci")
        with pytest.raises(SpecError):
            PortSpec(name="p", channels=[])
        with pytest.raises(SpecError):
            PortSpec(name="p", clock_mhz=0)

    def test_ni_duplicate_ports_rejected(self):
        with pytest.raises(SpecError):
            NISpec(name="ni", ports=[PortSpec(name="p"), PortSpec(name="p")])

    def test_noc_duplicate_nis_rejected(self):
        with pytest.raises(SpecError):
            NoCSpec(nis=[NISpec(name="a"), NISpec(name="a")])

    def test_unknown_topology_rejected(self):
        with pytest.raises(SpecError):
            NoCSpec(topology="moebius")

    def test_registered_topologies_accepted(self):
        # "torus" (and friends) are valid kinds since the factory registry.
        for kind in ("torus", "tree", "double_ring", "custom"):
            assert NoCSpec(topology=kind).topology == kind

    def test_lookup_helpers(self):
        spec = reference_noc_spec()
        assert spec.ni("ni0").name == "ni0"
        with pytest.raises(SpecError):
            spec.ni("missing")
        ni = spec.ni("ni0")
        assert ni.port("m1").num_channels == 2
        with pytest.raises(SpecError):
            ni.port("missing")


class TestReferenceInstance:
    def test_matches_the_paper_prototype(self):
        """Section 5: 4 ports with 1, 1, 2 and 4 channels, 8-word queues."""
        spec = reference_ni_spec()
        assert spec.num_ports == 4
        assert sorted(p.num_channels for p in spec.ports) == [1, 1, 2, 4]
        assert spec.num_channels == 8
        assert spec.num_slots == 8
        # 8 channels x 2 queues x 8 words.
        assert spec.queue_words_total() == 128
        kinds = sorted(p.kind for p in spec.ports)
        assert kinds == ["config", "master", "master", "slave"]
        shells = {p.name: p.shell for p in spec.ports}
        assert shells["m1"] == "narrowcast"
        assert shells["s0"] == "multiconnection"


class TestXmlRoundTrip:
    def test_reference_noc_round_trips(self):
        spec = reference_noc_spec()
        recovered = from_xml(to_xml(spec))
        assert recovered == spec

    def test_custom_instance_round_trips(self):
        spec = NoCSpec(
            name="custom", topology="ring", rows=1, cols=5, num_slots=16,
            be_buffer_flits=4, routing="shortest",
            nis=[NISpec(name="ni_a", router=3, num_slots=16,
                        be_arbiter="queue_fill", max_packet_words=11,
                        ports=[PortSpec(name="x", kind="slave", protocol="axi",
                                        shell=None, clock_mhz=123.0,
                                        channels=[ChannelSpec(4, 32)])])])
        recovered = from_xml(to_xml(spec))
        assert recovered == spec

    def test_malformed_xml_rejected(self):
        with pytest.raises(SpecError):
            from_xml("<noc><ni></noc>")
        with pytest.raises(SpecError):
            from_xml("<network/>")

    def test_defaults_fill_missing_attributes(self):
        spec = from_xml('<noc name="n"><ni name="a" router="0">'
                        '<port name="p"/></ni></noc>')
        assert spec.nis[0].ports[0].num_channels == 1
        assert spec.nis[0].ports[0].clock_mhz == 500.0


class TestGenerator:
    def test_build_system_creates_routers_and_nis(self):
        system = build_system(reference_noc_spec())
        assert system.noc.num_routers == 2
        assert set(system.nis) == {"ni0", "ni1"}
        kernel = system.kernel("ni0")
        assert kernel.num_channels == 8
        assert set(kernel.ports) == {"cfg", "m0", "m1", "s0"}

    def test_port_clocks_created_per_port(self):
        system = build_system(reference_noc_spec())
        clock = system.port_clock("ni0", "m0")
        assert clock.frequency_mhz == 500.0

    def test_queue_sizes_follow_spec(self):
        spec = NoCSpec(
            rows=1, cols=1, topology="mesh",
            nis=[NISpec(name="a", router=(0, 0),
                        ports=[PortSpec(name="p",
                                        channels=[ChannelSpec(4, 32)])])])
        system = build_system(spec)
        channel = system.kernel("a").channel(0)
        assert channel.source_queue.capacity == 4
        assert channel.dest_queue.capacity == 32

    def test_unknown_router_rejected(self):
        spec = NoCSpec(rows=1, cols=1,
                       nis=[NISpec(name="a", router=(5, 5),
                                   ports=[PortSpec(name="p")])])
        with pytest.raises(SpecError):
            build_system(spec)

    def test_ring_and_single_topologies_build(self):
        ring = NoCSpec(topology="ring", rows=1, cols=4,
                       nis=[NISpec(name="a", router=0, ports=[PortSpec(name="p")]),
                            NISpec(name="b", router=2, ports=[PortSpec(name="p")])])
        system = build_system(ring)
        assert system.noc.num_routers == 4
        single = NoCSpec(topology="single",
                         nis=[NISpec(name="a", router=0, ports=[PortSpec(name="p")]),
                              NISpec(name="b", router=0, ports=[PortSpec(name="p")])])
        system = build_system(single)
        assert system.noc.num_routers == 1
        assert system.noc.hop_count("a", "b") == 1

    def test_generated_system_runs(self):
        system = build_system(reference_noc_spec())
        system.run_flit_cycles(10)
        assert system.sim.now > 0

    def test_functional_configurator_uses_system_allocator(self):
        system = build_system(reference_noc_spec())
        configurator = system.functional_configurator()
        assert configurator.allocator is system.allocator

    def test_describe_reports_structure(self):
        system = build_system(reference_noc_spec())
        description = system.ni("ni0").describe()
        assert description["channels"] == 8
        assert description["queue_words"] == 128
