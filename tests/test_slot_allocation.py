"""Unit and property tests for TDM slot allocation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.slot_allocation import (
    CentralizedSlotAllocator,
    SlotAllocationError,
    SlotRequest,
    evenly_spaced_slots,
)


def request(ni="ni0", channel=0, slots=2, links=("l0", "l1")):
    return SlotRequest(ni=ni, channel=channel, slots_required=slots,
                       link_ids=[(f"{l}", f"{l}'") for l in links])


class TestEvenlySpacedSlots:
    def test_counts_and_range(self):
        slots = evenly_spaced_slots(8, 4)
        assert len(slots) == 4
        assert all(0 <= s < 8 for s in slots)

    def test_even_spread(self):
        assert evenly_spaced_slots(8, 2) == [0, 4]
        assert evenly_spaced_slots(8, 4) == [0, 2, 4, 6]

    def test_offset(self):
        assert evenly_spaced_slots(8, 2, offset=1) == [1, 5]

    def test_invalid_counts(self):
        with pytest.raises(SlotAllocationError):
            evenly_spaced_slots(8, 0)
        with pytest.raises(SlotAllocationError):
            evenly_spaced_slots(8, 9)


class TestSlotRequestValidation:
    def test_needs_slots_and_path(self):
        with pytest.raises(SlotAllocationError):
            SlotRequest(ni="a", channel=0, slots_required=0, link_ids=[("x", "y")])
        with pytest.raises(SlotAllocationError):
            SlotRequest(ni="a", channel=0, slots_required=1, link_ids=[])


class TestCentralizedAllocator:
    def test_allocation_reserves_pipelined_slots_on_every_link(self):
        allocator = CentralizedSlotAllocator(8)
        req = request(slots=1, links=("a", "b", "c"))
        slots = allocator.allocate(req)
        assert len(slots) == 1
        s = slots[0]
        for hop, link_id in enumerate(req.link_ids):
            owner = allocator.link_table(link_id).owner((s + hop) % 8)
            assert owner == ("ni0", 0)

    def test_two_channels_sharing_a_link_get_disjoint_slots(self):
        allocator = CentralizedSlotAllocator(8)
        shared = ("r0", "r1")
        req_a = SlotRequest("niA", 0, 3, [shared])
        req_b = SlotRequest("niB", 0, 3, [shared])
        slots_a = allocator.allocate(req_a)
        slots_b = allocator.allocate(req_b)
        assert not set(slots_a) & set(slots_b)

    def test_requesting_more_than_available_raises(self):
        allocator = CentralizedSlotAllocator(4)
        allocator.allocate(SlotRequest("a", 0, 3, [("l", "l'")]))
        with pytest.raises(SlotAllocationError):
            allocator.allocate(SlotRequest("b", 0, 2, [("l", "l'")]))

    def test_try_allocate_returns_none_on_failure(self):
        allocator = CentralizedSlotAllocator(2)
        assert allocator.try_allocate(SlotRequest("a", 0, 2, [("l", "l'")]))
        assert allocator.try_allocate(SlotRequest("b", 0, 1, [("l", "l'")])) is None

    def test_duplicate_allocation_rejected(self):
        allocator = CentralizedSlotAllocator(8)
        allocator.allocate(request())
        with pytest.raises(SlotAllocationError):
            allocator.allocate(request())

    def test_release_returns_slots_to_the_pool(self):
        allocator = CentralizedSlotAllocator(4)
        allocator.allocate(SlotRequest("a", 0, 4, [("l", "l'")]))
        allocator.release("a", 0)
        assert allocator.allocate(SlotRequest("b", 0, 4, [("l", "l'")]))

    def test_release_unknown_is_harmless(self):
        CentralizedSlotAllocator(4).release("ghost", 3)

    def test_spread_minimizes_jitter(self):
        allocator = CentralizedSlotAllocator(8)
        slots = allocator.allocate(SlotRequest("a", 0, 2, [("l", "l'")]))
        gap = (slots[1] - slots[0]) % 8
        assert gap in (4,)   # evenly spread over the table

    def test_assignment_map(self):
        allocator = CentralizedSlotAllocator(8)
        slots = allocator.allocate(request())
        assert allocator.assignment_map() == {("ni0", 0): slots}

    def test_channels_on_disjoint_links_may_share_slots(self):
        allocator = CentralizedSlotAllocator(4)
        a = allocator.allocate(SlotRequest("a", 0, 4, [("l1", "x")]))
        b = allocator.allocate(SlotRequest("b", 0, 4, [("l2", "y")]))
        assert len(a) == len(b) == 4

    def test_link_occupancy(self):
        allocator = CentralizedSlotAllocator(8)
        allocator.allocate(SlotRequest("a", 0, 2, [("l", "l'")]))
        occupancy = allocator.link_occupancy()
        assert occupancy[("l", "l'")] == pytest.approx(0.25)


# ---------------------------------------------------------------------------
# Property: an accepted allocation never creates a (link, slot) conflict.
# ---------------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(st.integers(min_value=1, max_value=3),      # slots required
              st.integers(min_value=0, max_value=3),      # path start
              st.integers(min_value=1, max_value=3)),     # path length
    min_size=1, max_size=8))
def test_allocations_never_conflict_property(channel_specs):
    num_slots = 8
    links = [(f"l{i}", f"l{i + 1}") for i in range(8)]
    allocator = CentralizedSlotAllocator(num_slots)
    accepted = []
    for index, (slots, start, length) in enumerate(channel_specs):
        path = links[start:start + length]
        req = SlotRequest(f"ni{index}", 0, slots, path)
        granted = allocator.try_allocate(req)
        if granted is not None:
            accepted.append((req, granted))
    # Rebuild the link usage and assert no two channels share a (link, slot).
    usage = {}
    for req, granted in accepted:
        for injection_slot in granted:
            for hop, link in enumerate(req.link_ids):
                key = (link, (injection_slot + hop) % num_slots)
                assert key not in usage, f"conflict on {key}"
                usage[key] = req.owner


class TestContiguousPolicy:
    def test_unknown_policy_rejected(self):
        with pytest.raises(SlotAllocationError):
            CentralizedSlotAllocator(8, policy="zigzag")

    def test_contiguous_run_chosen_when_free(self):
        allocator = CentralizedSlotAllocator(8, policy="contiguous")
        slots = allocator.allocate(request(slots=3))
        assert slots == [0, 1, 2]         # lowest-start consecutive run

    def test_second_channel_packs_after_the_first(self):
        allocator = CentralizedSlotAllocator(8, policy="contiguous")
        allocator.allocate(request(channel=0, slots=3))
        slots = allocator.allocate(request(channel=1, slots=2))
        assert slots == [3, 4]

    def test_wrapping_run_found(self):
        # Block injection slots 2..5 so the free run 6,7 -> 0,1 wraps; a
        # 3-slot request must use it (sorted slot indices, wrapped run).
        allocator = CentralizedSlotAllocator(8, policy="contiguous")
        l0, l1 = ("l0", "l0'"), ("l1", "l1'")
        for slot in (2, 3, 4, 5):
            allocator.link_table(l0).reserve(slot, "blocker")
            allocator.link_table(l1).reserve((slot + 1) % 8, "blocker")
        assert allocator.allocate(request(slots=3)) == [0, 6, 7]

    def test_falls_back_to_spread_when_fragmented(self):
        # Fragment the path so only injection slots 0, 2, 4, 6 remain free
        # (no two adjacent): a 2-slot request cannot be contiguous and must
        # fall back to the spread pick.
        frag = CentralizedSlotAllocator(8, policy="contiguous")
        l0, l1 = ("l0", "l0'"), ("l1", "l1'")
        for slot in (1, 3, 5, 7):
            frag.link_table(l0).reserve(slot, "blocker")
            frag.link_table(l1).reserve((slot + 1) % 8, "blocker")
        assert frag.free_injection_slots(request(slots=2)) == [0, 2, 4, 6]
        assert frag.allocate(request(slots=2)) == [0, 4]

    def test_spread_policy_unchanged_by_default(self):
        default = CentralizedSlotAllocator(8)
        assert default.policy == "spread"
        assert default.allocate(request(slots=2)) == [0, 4]
