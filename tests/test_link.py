"""Unit tests for the single-stage link model."""

import pytest

from repro.network.link import Link, LinkContentionError
from repro.network.packet import Packet, PacketHeader, packet_to_flits


def make_flit(is_gt=False):
    header = PacketHeader(path=(0,), remote_qid=0, is_gt=is_gt)
    return packet_to_flits(Packet(header, [1, 2]))[0]


class FakeSink:
    """A sink exposing the link-level flow-control interface."""

    def __init__(self, space=4):
        self.space = space

    def be_space(self, port):
        return self.space


class TestLink:
    def test_flit_visible_one_cycle_after_send(self):
        link = Link("l")
        flit = make_flit()
        link.send(flit)
        assert link.take() is None          # not yet committed
        link.post_tick(0)
        assert link.take() is flit          # visible next cycle
        assert link.take() is None

    def test_peek_does_not_consume(self):
        link = Link("l")
        flit = make_flit()
        link.send(flit)
        link.post_tick(0)
        assert link.peek() is flit
        assert link.take() is flit

    def test_double_send_in_one_cycle_raises(self):
        link = Link("l")
        link.send(make_flit())
        with pytest.raises(LinkContentionError):
            link.send(make_flit())

    def test_can_send_reflects_incoming_register(self):
        link = Link("l")
        assert link.can_send()
        link.send(make_flit())
        assert not link.can_send()
        link.post_tick(0)
        assert link.can_send()

    def test_undrained_flit_raises_on_commit(self):
        link = Link("l")
        link.send(make_flit())
        link.post_tick(0)
        link.send(make_flit())
        with pytest.raises(LinkContentionError):
            link.post_tick(1)  # previous flit never taken

    def test_be_backpressure_uses_sink_space(self):
        link = Link("l")
        link.sink = FakeSink(space=1)
        link.sink_port = 0
        assert link.can_send_be()
        link.send(make_flit())
        link.post_tick(0)
        # One flit in flight, sink has space 1 -> no more room.
        assert not link.can_send_be()

    def test_be_backpressure_without_sink_is_permissive(self):
        link = Link("l")
        assert link.can_send_be()

    def test_statistics_count_words_and_kinds(self):
        link = Link("l")
        gt_flit = make_flit(is_gt=True)
        be_flit = make_flit(is_gt=False)
        link.send(gt_flit)
        link.post_tick(0)
        link.take()
        link.send(be_flit)
        link.post_tick(1)
        link.take()
        assert link.flits_carried == 2
        assert link.gt_flits_carried == 1
        assert link.be_flits_carried == 1
        assert link.words_carried == gt_flit.num_words + be_flit.num_words

    def test_utilization(self):
        link = Link("l")
        link.send(make_flit())
        link.post_tick(0)
        link.take()
        assert link.utilization(4) == pytest.approx(0.25)
        with pytest.raises(ValueError):
            link.utilization(0)

    def test_occupancy(self):
        link = Link("l")
        assert link.occupancy == 0
        link.send(make_flit())
        assert link.occupancy == 1
        link.post_tick(0)
        assert link.occupancy == 1
        link.take()
        assert link.occupancy == 0

    def test_connect_records_endpoints(self):
        link = Link("l")
        src, dst = object(), FakeSink()
        link.connect(src, 2, dst, 3)
        assert link.source is src and link.source_port == 2
        assert link.sink is dst and link.sink_port == 3
