"""Unit tests for NI and router slot tables."""

import pytest

from repro.network.slot_table import RouterSlotTable, SlotTable, SlotTableError


class TestSlotTable:
    def test_new_table_is_empty(self):
        table = SlotTable(8)
        assert table.free_slots() == list(range(8))
        assert table.occupancy() == 0.0

    def test_invalid_size_rejected(self):
        with pytest.raises(SlotTableError):
            SlotTable(0)

    def test_reserve_and_owner(self):
        table = SlotTable(8)
        table.reserve(3, "ch0")
        assert table.owner(3) == "ch0"
        assert not table.is_free(3)
        assert table.slots_of("ch0") == [3]

    def test_conflicting_reservation_raises(self):
        table = SlotTable(8)
        table.reserve(3, "ch0")
        with pytest.raises(SlotTableError):
            table.reserve(3, "ch1")

    def test_re_reserving_same_owner_is_idempotent(self):
        table = SlotTable(8)
        table.reserve(3, "ch0")
        table.reserve(3, "ch0")
        assert table.slots_of("ch0") == [3]

    def test_release(self):
        table = SlotTable(8)
        table.reserve(2, "ch0")
        table.release(2)
        assert table.is_free(2)

    def test_release_owner_frees_all_slots(self):
        table = SlotTable(8)
        for slot in (1, 4, 6):
            table.reserve(slot, "ch0")
        table.reserve(2, "ch1")
        assert table.release_owner("ch0") == 3
        assert table.slots_of("ch0") == []
        assert table.slots_of("ch1") == [2]

    def test_out_of_range_slot_rejected(self):
        table = SlotTable(4)
        with pytest.raises(SlotTableError):
            table.reserve(4, "x")
        with pytest.raises(SlotTableError):
            table.owner(-1)

    def test_none_owner_rejected(self):
        with pytest.raises(SlotTableError):
            SlotTable(4).reserve(0, None)

    def test_occupancy(self):
        table = SlotTable(4)
        table.reserve(0, "a")
        table.reserve(1, "b")
        assert table.occupancy() == pytest.approx(0.5)

    def test_copy_is_independent(self):
        table = SlotTable(4)
        table.reserve(0, "a")
        clone = table.copy()
        clone.release(0)
        assert table.owner(0) == "a"

    def test_clear(self):
        table = SlotTable(4)
        table.reserve(0, "a")
        table.clear()
        assert table.free_slots() == [0, 1, 2, 3]

    # --- jitter bound helper -------------------------------------------------
    def test_max_gap_single_reservation_is_table_size(self):
        table = SlotTable(8)
        table.reserve(2, "a")
        assert table.max_gap("a") == 8

    def test_max_gap_evenly_spaced(self):
        table = SlotTable(8)
        table.reserve(0, "a")
        table.reserve(4, "a")
        assert table.max_gap("a") == 4

    def test_max_gap_uneven_spacing(self):
        table = SlotTable(8)
        table.reserve(0, "a")
        table.reserve(1, "a")
        assert table.max_gap("a") == 7

    def test_max_gap_unknown_owner_is_none(self):
        assert SlotTable(8).max_gap("nobody") is None


class TestRouterSlotTable:
    def test_try_reserve_accepts_then_rejects(self):
        table = RouterSlotTable(num_outputs=4, num_slots=8)
        assert table.try_reserve(1, 3, ("ni0", 0)) is True
        assert table.try_reserve(1, 3, ("ni1", 0)) is False
        assert table.owner(1, 3) == ("ni0", 0)

    def test_same_owner_reservation_is_accepted(self):
        table = RouterSlotTable(2, 4)
        assert table.try_reserve(0, 0, "a")
        assert table.try_reserve(0, 0, "a")

    def test_reserve_raises_on_conflict(self):
        table = RouterSlotTable(2, 4)
        table.reserve(0, 0, "a")
        with pytest.raises(SlotTableError):
            table.reserve(0, 0, "b")

    def test_release_and_release_owner(self):
        table = RouterSlotTable(2, 4)
        table.reserve(0, 0, "a")
        table.reserve(1, 2, "a")
        table.reserve(1, 3, "b")
        assert table.release_owner("a") == 2
        assert table.owner(0, 0) is None
        assert table.owner(1, 3) == "b"
        table.release(1, 3)
        assert table.owner(1, 3) is None

    def test_occupancy(self):
        table = RouterSlotTable(2, 4)
        table.reserve(0, 0, "a")
        table.reserve(0, 1, "a")
        assert table.occupancy() == pytest.approx(2 / 8)

    def test_bounds_checked(self):
        table = RouterSlotTable(2, 4)
        with pytest.raises(SlotTableError):
            table.try_reserve(2, 0, "a")
        with pytest.raises(SlotTableError):
            table.try_reserve(0, 4, "a")

    def test_invalid_dimensions(self):
        with pytest.raises(SlotTableError):
            RouterSlotTable(0, 8)


class TestOwnerRuns:
    def test_free_slots_get_run_of_one(self):
        table = SlotTable(4)
        owners, runs = table.owner_runs()
        assert owners == [None] * 4
        assert runs == [1, 1, 1, 1]

    def test_runs_count_consecutive_ownership(self):
        table = SlotTable(8)
        for slot in (2, 3, 4):
            table.reserve(slot, "a")
        table.reserve(6, "b")
        owners, runs = table.owner_runs()
        assert owners[2:5] == ["a", "a", "a"]
        assert runs[2:5] == [3, 2, 1]     # run length from each start slot
        assert runs[6] == 1
        assert runs[0] == 1               # free slot

    def test_runs_wrap_around_the_table(self):
        table = SlotTable(6)
        for slot in (5, 0, 1):
            table.reserve(slot, "a")
        _, runs = table.owner_runs()
        assert runs[5] == 3               # 5 -> 0 -> 1 wraps
        assert runs[0] == 2
        assert runs[1] == 1

    def test_full_table_single_owner_caps_at_size(self):
        table = SlotTable(4)
        for slot in range(4):
            table.reserve(slot, "a")
        _, runs = table.owner_runs()
        assert runs == [4, 4, 4, 4]

    def test_matches_entries_snapshot(self):
        table = SlotTable(5)
        table.reserve(1, "x")
        owners, _ = table.owner_runs()
        assert owners == table.entries()
