"""Tests for the scenario registry (repro.api.scenarios)."""

import math

import pytest

from repro.api import SystemBuilder, scenarios
from repro.core.shells.multiconnection import MultiConnectionShell


def normalize(obj):
    if isinstance(obj, float):
        return "NaN" if math.isnan(obj) else obj
    if isinstance(obj, dict):
        return {key: normalize(value) for key, value in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [normalize(value) for value in obj]
    return obj


class TestRegistry:
    def test_classic_and_new_scenarios_registered(self):
        names = scenarios.names()
        for expected in ("point_to_point", "gt_be_mix", "narrowcast",
                         "config_system", "ring", "hotspot", "random_system",
                         "multicast", "dram_hotspot", "video_pipeline_dram",
                         "dram_scheduler_mix", "idle_mesh", "saturated_mix",
                         "saturated_grid", "saturated_dram"):
            assert expected in names

    def test_perf_tag_selects_perf_shapes(self):
        perf = scenarios.names(tag="perf")
        assert "idle_mesh" in perf
        assert "saturated_grid" in perf
        assert "saturated_mix" in perf
        assert "saturated_dram" in perf
        assert "point_to_point" not in perf

    def test_dram_tag_selects_dram_workloads(self):
        dram = scenarios.names(tag="dram")
        assert set(dram) >= {"dram_hotspot", "video_pipeline_dram",
                             "dram_scheduler_mix", "saturated_dram"}

    def test_unknown_scenario_is_actionable(self):
        with pytest.raises(scenarios.ScenarioError,
                           match="unknown scenario 'warp_drive'.*registered"):
            scenarios.build("warp_drive")

    def test_describe_lists_metadata(self):
        rows = {name: (description, tags)
                for name, description, tags in scenarios.describe()}
        assert "functional" in rows["ring"][1]
        assert rows["gt_be_mix"][0]

    def test_custom_registration_with_defaults(self):
        @scenarios.scenario("tmp_test_scenario", description="x",
                            tags=("test",), rows=1, cols=2)
        def _factory(rows, cols):
            return (SystemBuilder("tmp").mesh(rows, cols)
                    .add_master("m", router=(0, 0))
                    .add_memory("s", router=(0, 1))
                    .connect("m", "s")
                    .build())

        try:
            system = scenarios.build("tmp_test_scenario")
            assert system.spec.cols == 2
            system = scenarios.build("tmp_test_scenario", cols=3)
            assert system.spec.cols == 3
        finally:
            del scenarios._REGISTRY["tmp_test_scenario"]


class TestNewScenarios:
    def test_ring_traffic_completes_over_multiple_hops(self):
        system = scenarios.build("ring", num_pairs=3, hops=3, gt=False,
                                 max_transactions=6)
        assert system.spec.topology == "ring"
        assert system.noc.hop_count("m0", "mem0") == 4  # 3 hops + target
        cycles = system.run_until_idle(max_flit_cycles=60000)
        assert cycles < 60000
        for index in range(3):
            assert len(system.master(f"m{index}").completed) == 6

    def test_ring_gt_reserves_slots(self):
        system = scenarios.build("ring", num_pairs=2, gt=True, slots=2,
                                 max_transactions=2)
        assert system.connection("m0->mem0").slot_assignment[("m0", 0)]
        system.run_until_idle(max_flit_cycles=60000)
        assert system.master("m0").done()

    def test_hotspot_serializes_into_one_shared_memory(self):
        system = scenarios.build("hotspot", num_masters=4,
                                 max_transactions=5, burst_words=4)
        memory = system.memory("hot")
        assert isinstance(memory.conn_shell, MultiConnectionShell)
        system.run_until_idle(max_flit_cycles=60000)
        for index in range(4):
            assert len(system.master(f"m{index}").completed) == 5
        assert memory.memory.writes == 4 * 5 * 4
        # Every master wrote into its own window of the address space: the
        # bursts never overlap, so every written word is distinct.
        assert len(memory.memory) == 4 * 5 * 4

    def test_random_system_is_deterministic_per_seed(self):
        def run(seed):
            system = scenarios.build("random_system", seed=seed)
            system.run_until_idle(max_flit_cycles=120000)
            return normalize(system.fingerprint())

        assert run(3) == run(3)

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_random_system_smoke_reaches_idle(self, seed):
        system = scenarios.build("random_system", seed=seed,
                                 transactions_per_master=6)
        cycles = system.run_until_idle(max_flit_cycles=120000)
        assert cycles < 120000, f"seed {seed} never went idle"
        for name, handle in system.masters.items():
            assert handle.done(), f"seed {seed}: {name} not done"
            assert len(handle.completed) == 6

    def test_random_seeds_produce_different_systems(self):
        shapes = {
            (scenarios.build("random_system", seed=seed).spec.rows,
             scenarios.build("random_system", seed=seed).spec.cols,
             len(scenarios.build("random_system", seed=seed).masters))
            for seed in range(1, 7)
        }
        assert len(shapes) > 1


class TestPerfShapes:
    def test_idle_mesh_has_no_traffic_sources(self):
        system = scenarios.build("idle_mesh", rows=2, cols=2)
        system.run_flit_cycles(200)
        assert system.noc.total_flits_forwarded() == 0
        assert not system.masters and not system.memories

    def test_saturated_grid_smoke(self):
        system = scenarios.build("saturated_grid")
        assert len(system.masters) == 12
        arbiters = {system.spec.ni(handle.ni).be_arbiter
                    for handle in system.masters.values()}
        assert arbiters == {"round_robin", "weighted_round_robin",
                            "queue_fill"}
        system.run_flit_cycles(120)
        assert system.noc.total_flits_forwarded() > 0
