"""Unit tests for the register map encodings and the kernel register file."""

import pytest

from repro.core.kernel import NIKernel
from repro.core.registers import (
    CHANNEL_REG_STRIDE,
    REG_CREDIT_THRESHOLD,
    REG_CTRL,
    REG_DATA_THRESHOLD,
    REG_FLUSH,
    REG_PATH,
    REG_REMOTE_QID,
    REG_SPACE,
    REG_STATUS,
    SLOT_TABLE_BASE,
    NI_INFO_BASE,
    RegisterError,
    channel_register_address,
    decode_ctrl,
    decode_path,
    encode_ctrl,
    encode_path,
    slot_register_address,
)
from repro.sim.engine import Simulator


class TestPathEncoding:
    def test_round_trip(self):
        for path in [(), (0,), (1, 2, 3), (15, 0, 7, 3, 1), (1,) * 7]:
            assert decode_path(encode_path(path)) == tuple(path)

    def test_too_long_path_rejected(self):
        with pytest.raises(RegisterError):
            encode_path((1,) * 8)

    def test_port_out_of_nibble_range_rejected(self):
        with pytest.raises(RegisterError):
            encode_path((16,))

    def test_ctrl_round_trip(self):
        for enabled in (False, True):
            for gt in (False, True):
                assert decode_ctrl(encode_ctrl(enabled, gt)) == (enabled, gt)


class TestAddressHelpers:
    def test_channel_register_addresses_are_disjoint(self):
        addresses = {channel_register_address(ch, reg)
                     for ch in range(8) for reg in range(CHANNEL_REG_STRIDE)}
        assert len(addresses) == 8 * CHANNEL_REG_STRIDE

    def test_slot_register_addresses_follow_base(self):
        assert slot_register_address(0) == SLOT_TABLE_BASE
        assert slot_register_address(5) == SLOT_TABLE_BASE + 5

    def test_invalid_arguments(self):
        with pytest.raises(RegisterError):
            channel_register_address(-1, 0)
        with pytest.raises(RegisterError):
            channel_register_address(0, CHANNEL_REG_STRIDE)
        with pytest.raises(RegisterError):
            slot_register_address(-1)


class TestKernelRegisterFile:
    def setup_method(self):
        self.sim = Simulator()
        self.kernel = NIKernel("ni0", self.sim, num_slots=8)
        self.kernel.add_channel()
        self.kernel.add_channel()
        self.kernel.add_port("p", [0, 1])

    def write(self, channel, register, value):
        self.kernel.write_register(channel_register_address(channel, register),
                                   value)

    def read(self, channel, register):
        return self.kernel.read_register(channel_register_address(channel,
                                                                  register))

    def test_ctrl_write_sets_enable_and_gt(self):
        self.write(0, REG_CTRL, encode_ctrl(True, True))
        channel = self.kernel.channel(0)
        assert channel.regs.enabled and channel.regs.gt
        assert self.read(0, REG_CTRL) == encode_ctrl(True, True)

    def test_path_write_round_trips(self):
        self.write(1, REG_PATH, encode_path((2, 0, 1)))
        assert self.kernel.channel(1).regs.path == (2, 0, 1)
        assert decode_path(self.read(1, REG_PATH)) == (2, 0, 1)

    def test_remote_qid_space_and_thresholds(self):
        self.write(0, REG_REMOTE_QID, 5)
        self.write(0, REG_SPACE, 16)
        self.write(0, REG_DATA_THRESHOLD, 3)
        self.write(0, REG_CREDIT_THRESHOLD, 7)
        channel = self.kernel.channel(0)
        assert channel.regs.remote_qid == 5
        assert channel.space == 16
        assert channel.regs.data_threshold == 3
        assert channel.regs.credit_threshold == 7
        assert self.read(0, REG_SPACE) == 16

    def test_flush_register_triggers_flush(self):
        self.kernel.channel(0).source_queue.push_many([1, 2])
        self.write(0, REG_FLUSH, 1)
        assert self.kernel.channel(0).flush_pending
        assert self.read(0, REG_FLUSH) == 1

    def test_status_register_is_read_only(self):
        self.kernel.channel(0).source_queue.push_many([1, 2, 3])
        assert self.read(0, REG_STATUS) == (3 << 16)
        with pytest.raises(RegisterError):
            self.write(0, REG_STATUS, 0)

    def test_slot_table_written_through_registers(self):
        self.kernel.write_register(slot_register_address(2), 1)   # channel 0
        self.kernel.write_register(slot_register_address(5), 2)   # channel 1
        assert self.kernel.slot_table.owner(2) == 0
        assert self.kernel.slot_table.owner(5) == 1
        assert self.kernel.read_register(slot_register_address(2)) == 1
        assert self.kernel.read_register(slot_register_address(5)) == 2

    def test_slot_release_by_writing_zero(self):
        self.kernel.write_register(slot_register_address(2), 1)
        self.kernel.write_register(slot_register_address(2), 0)
        assert self.kernel.slot_table.owner(2) is None

    def test_slot_out_of_range_rejected(self):
        with pytest.raises(RegisterError):
            self.kernel.write_register(slot_register_address(8), 1)

    def test_unknown_channel_rejected(self):
        with pytest.raises(RegisterError):
            self.kernel.write_register(channel_register_address(7, REG_CTRL), 1)

    def test_info_block_is_readable_but_not_writable(self):
        assert self.kernel.read_register(NI_INFO_BASE + 0) == 2   # channels
        assert self.kernel.read_register(NI_INFO_BASE + 1) == 8   # slots
        assert self.kernel.read_register(NI_INFO_BASE + 2) == 1   # ports
        with pytest.raises(RegisterError):
            self.kernel.write_register(NI_INFO_BASE, 1)

    def test_unknown_info_register_rejected(self):
        with pytest.raises(RegisterError):
            self.kernel.read_register(NI_INFO_BASE + 10)
