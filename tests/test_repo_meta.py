"""Repo-tooling invariants that scripts alone can't be trusted to keep.

The BENCH_PERF.json staleness gate in scripts/check.sh only watches the
paths listed in its hand-maintained ``ENGINE_PATHS`` array.  A new
``src/repro`` subpackage that never gets added there could change engine
behaviour without the gate demanding a benchmark refresh.  check.sh now
self-checks this at run time; this test enforces the same invariant from
pytest so it fails in ``make test`` too, and additionally pins the shell
array to the actual directory listing so the two can't drift apart.
"""

import re
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _engine_paths_from_check_sh() -> set:
    text = (REPO_ROOT / "scripts" / "check.sh").read_text(encoding="utf-8")
    match = re.search(r"ENGINE_PATHS=\((?P<body>[^)]*)\)", text)
    assert match, "ENGINE_PATHS array not found in scripts/check.sh"
    return set(match.group("body").split())


def _repro_subpackages() -> set:
    src = REPO_ROOT / "src" / "repro"
    return {f"src/repro/{child.name}" for child in src.iterdir()
            if child.is_dir() and child.name != "__pycache__"}


def test_engine_paths_cover_every_repro_subpackage():
    engine_paths = _engine_paths_from_check_sh()
    missing = sorted(_repro_subpackages() - engine_paths)
    assert not missing, (
        f"scripts/check.sh ENGINE_PATHS misses {missing}; the BENCH_PERF "
        "staleness gate would silently ignore engine changes there — add "
        "the package(s) to the array")


def test_engine_paths_exist():
    """The converse: every listed path must exist, so a rename can't leave
    a dangling entry that watches nothing."""
    for entry in sorted(_engine_paths_from_check_sh()):
        assert (REPO_ROOT / entry).exists(), (
            f"ENGINE_PATHS entry {entry} does not exist in the tree")


def test_check_sh_runs_reprolint():
    text = (REPO_ROOT / "scripts" / "check.sh").read_text(encoding="utf-8")
    assert "repro.analysis.lint" in text, (
        "scripts/check.sh no longer runs reprolint; the static contract "
        "gate would be silently dropped from make check")


def test_ci_runs_reprolint():
    text = (REPO_ROOT / ".github" / "workflows" / "ci.yml").read_text(
        encoding="utf-8")
    assert "make lint" in text or "repro.analysis.lint" in text, (
        ".github/workflows/ci.yml no longer runs reprolint")
