"""The topology factory registry and the new torus/tree/double-ring/custom
shapes, plus the routing-strategy registry."""

import pytest

from repro.network.routing import (
    RouteError,
    RoutingStrategy,
    ShortestPath,
    TableRouting,
    TorusDimensionOrdered,
    make_routing,
    register_routing,
    routing_names,
)
from repro.network.topology import (
    TOPOLOGY_FACTORIES,
    Topology,
    TopologyError,
    build_port_map,
    make_topology,
    register_topology,
    topology_names,
)


class TestTorus:
    def test_all_routers_degree_four(self):
        topo = Topology.torus(3, 3)
        assert topo.num_routers == 9
        assert all(topo.degree(node) == 4 for node in topo.routers)

    def test_wraparound_links_exist(self):
        topo = Topology.torus(4, 4)
        assert topo.graph.has_edge((0, 0), (3, 0))
        assert topo.graph.has_edge((2, 0), (2, 3))

    def test_size_two_dimension_has_no_duplicate_links(self):
        # A 2-wide dimension's wrap link coincides with the mesh link.
        topo = Topology.torus(2, 4)
        assert all(topo.degree(node) == 3 for node in topo.routers)

    def test_size_one_dimension(self):
        topo = Topology.torus(1, 4)
        assert topo.num_routers == 4
        assert all(topo.degree(node) == 2 for node in topo.routers)

    def test_records_dimensions_for_routing(self):
        topo = Topology.torus(3, 5)
        assert topo.graph.graph["torus_rows"] == 3
        assert topo.graph.graph["torus_cols"] == 5


class TestTree:
    def test_node_count_and_levels(self):
        topo = Topology.tree(2, 2)
        assert topo.num_routers == 7
        assert topo.node_attrs(0) == {"level": 0, "parent": None}
        assert topo.node_attrs(6) == {"level": 2, "parent": 2}

    def test_depth_zero_is_single_root(self):
        assert Topology.tree(3, 0).num_routers == 1

    def test_is_acyclic_and_connected(self):
        topo = Topology.tree(3, 2)
        assert topo.is_connected()
        assert topo.graph.number_of_edges() == topo.num_routers - 1

    def test_invalid_parameters(self):
        with pytest.raises(TopologyError):
            Topology.tree(0, 2)
        with pytest.raises(TopologyError):
            Topology.tree(2, -1)


class TestDoubleRing:
    def test_degree_three_everywhere(self):
        topo = Topology.double_ring(4)
        assert topo.num_routers == 8
        assert all(topo.degree(node) == 3 for node in topo.routers)

    def test_node_attributes(self):
        topo = Topology.double_ring(3)
        assert topo.node_attrs(("in", 1)) == {"ring": "inner", "index": 1}
        assert topo.node_attrs(("out", 2))["ring"] == "outer"

    def test_small_sizes(self):
        assert Topology.double_ring(1).num_routers == 2
        two = Topology.double_ring(2)
        assert two.num_routers == 4 and two.is_connected()


class TestCustom:
    def test_nodes_with_attributes(self):
        topo = Topology.custom(
            [("cpu", {"block": "host"}), "mem"], [("cpu", "mem")])
        assert topo.node_attrs("cpu") == {"block": "host"}
        assert topo.node_attrs("mem") == {}

    def test_unknown_edge_endpoint_rejected(self):
        with pytest.raises(TopologyError, match="undeclared"):
            Topology.custom(["a"], [("a", "b")])

    def test_node_edge_lists_round_trip(self):
        topo = Topology.custom(
            [("a", {"k": 1}), "b", "c"], [("a", "b"), ("b", "c")])
        nodes, edges = topo.node_edge_lists()
        rebuilt = Topology.custom(nodes, edges)
        assert set(rebuilt.graph.nodes) == set(topo.graph.nodes)
        assert set(map(frozenset, rebuilt.graph.edges)) == \
            set(map(frozenset, topo.graph.edges))
        assert rebuilt.node_attrs("a") == {"k": 1}


class TestRegistry:
    def test_builtin_factories_registered(self):
        for kind in ("mesh", "ring", "torus", "double_ring", "tree",
                     "single_router", "single", "custom"):
            assert kind in TOPOLOGY_FACTORIES

    def test_make_topology(self):
        topo = make_topology("torus", rows=2, cols=3)
        assert topo.num_routers == 6

    def test_unknown_kind_lists_registered(self):
        with pytest.raises(TopologyError, match="registered:"):
            make_topology("hypercube")

    def test_bad_params_reported(self):
        with pytest.raises(TopologyError, match="mesh"):
            make_topology("mesh", rows=2)  # missing cols

    def test_register_custom_factory(self):
        @register_topology("_test_star")
        def _star(leaves: int) -> Topology:
            topo = Topology(name="star")
            topo.add_router("hub")
            for i in range(leaves):
                topo.add_router(i)
                topo.connect("hub", i)
            return topo

        try:
            topo = make_topology("_test_star", leaves=3)
            assert topo.degree("hub") == 3
            assert "_test_star" in topology_names()
        finally:
            del TOPOLOGY_FACTORIES["_test_star"]


class TestRoutersCaching:
    def test_cache_invalidated_on_mutation(self):
        topo = Topology()
        topo.add_router("b")
        assert topo.routers == ["b"]  # prime the cache
        topo.add_router("a")
        assert topo.routers == ["a", "b"]
        topo.connect("a", "b")
        assert topo.routers == ["a", "b"]

    def test_returned_list_is_a_copy(self):
        topo = Topology.mesh(1, 2)
        first = topo.routers
        first.append("junk")
        assert topo.routers == [(0, 0), (0, 1)]

    def test_degree_checks_membership(self):
        with pytest.raises(TopologyError):
            Topology.mesh(1, 2).degree((9, 9))


class TestTorusRouting:
    def setup_method(self):
        self.topo = Topology.torus(4, 4)
        self.strategy = TorusDimensionOrdered()

    def test_neighbor_wrap_single_hop(self):
        assert self.strategy.router_sequence(self.topo, (0, 0), (0, 3)) == \
            [(0, 0), (0, 3)]
        assert self.strategy.router_sequence(self.topo, (3, 2), (0, 2)) == \
            [(3, 2), (0, 2)]

    def test_x_before_y(self):
        sequence = self.strategy.router_sequence(self.topo, (0, 0), (2, 2))
        assert sequence == [(0, 0), (0, 1), (0, 2), (1, 2), (2, 2)]

    def test_multi_hop_stays_on_line(self):
        # 5-wide dimension, offset 3: the wrap way is 2 hops but multi-hop
        # wraps are forbidden (deadlock safety), so the line is used.
        topo5 = Topology.torus(1, 5)
        sequence = self.strategy.router_sequence(topo5, (0, 0), (0, 3))
        assert sequence == [(0, 0), (0, 1), (0, 2), (0, 3)]

    def test_minimal_for_size_four(self):
        for src in self.topo.routers:
            for dst in self.topo.routers:
                hops = len(self.strategy.router_sequence(
                    self.topo, src, dst)) - 1
                shortest = len(self.topo.shortest_path(src, dst)) - 1
                assert hops == shortest, (src, dst)

    def test_requires_dimensions(self):
        mesh = Topology.mesh(2, 2)
        with pytest.raises(RouteError, match="dimensions"):
            self.strategy.router_sequence(mesh, (0, 0), (1, 1))
        explicit = TorusDimensionOrdered(rows=2, cols=2)
        assert explicit.router_sequence(mesh, (0, 0), (1, 1)) == \
            [(0, 0), (0, 1), (1, 1)]


class TestTableRouting:
    def test_route_lookup_and_validation(self):
        ring = Topology.ring(4)
        table = TableRouting({(0, 2): [0, 1, 2]})
        assert table.router_sequence(ring, 0, 2) == [0, 1, 2]
        with pytest.raises(RouteError, match="no entry"):
            table.router_sequence(ring, 2, 0)

    def test_bad_table_entries_rejected(self):
        with pytest.raises(RouteError, match="start at the source"):
            TableRouting({(0, 2): [1, 2]})

    def test_missing_link_rejected_at_use(self):
        ring = Topology.ring(4)
        table = TableRouting({(0, 2): [0, 2]})
        with pytest.raises(RouteError, match="missing link"):
            table.router_sequence(ring, 0, 2)


class TestRoutingRegistry:
    def test_names(self):
        assert {"auto", "xy", "shortest", "torus"} <= set(routing_names())

    def test_make_routing_passthrough(self):
        strategy = ShortestPath()
        assert make_routing(strategy) is strategy
        assert make_routing("shortest").name == "shortest"

    def test_unknown_name_rejected(self):
        with pytest.raises(RouteError, match="registered:"):
            make_routing("magic")

    def test_register_custom_strategy(self):
        class Flood(RoutingStrategy):
            name = "_test_flood"

            def router_sequence(self, topology, src, dst):
                return topology.shortest_path(src, dst)

        register_routing("_test_flood", Flood)
        try:
            assert isinstance(make_routing("_test_flood"), Flood)
        finally:
            from repro.network.routing import ROUTING_STRATEGIES
            del ROUTING_STRATEGIES["_test_flood"]
