"""Unit tests for the master/slave protocol-adapter shells and the
configuration shell / CNIP slave."""

import pytest

from repro.core.kernel import NIKernel
from repro.core.registers import (
    REG_CTRL,
    REG_SPACE,
    channel_register_address,
    encode_ctrl,
)
from repro.core.shells.base import ConnectionShell, ShellError
from repro.core.shells.config_shell import ConfigShell, ConfigurationSlave
from repro.core.shells.master import MasterShell
from repro.core.shells.point_to_point import PointToPointShell
from repro.core.shells.slave import SlaveShell
from repro.ip.slave import MemorySlave
from repro.protocol.messages import ResponseMessage, request_from_words
from repro.protocol.transactions import Command, ResponseError, Transaction
from repro.sim.engine import Simulator


def make_port(num_channels=1, queue_words=32):
    kernel = NIKernel("ni", Simulator(), num_slots=8)
    for _ in range(num_channels):
        kernel.add_channel(queue_words, queue_words, cdc_cycles=0)
    return kernel, kernel.add_port("p", list(range(num_channels)))


def run_ticks(components, cycles):
    for cycle in range(cycles):
        for component in components:
            component.tick(cycle)


def source_words(port, conn=0):
    channel = port.channel(conn)
    return channel.source_queue.pop_many(channel.source_queue.fill)


class TestMasterShell:
    def test_transaction_becomes_request_message(self):
        _, port = make_port()
        conn_shell = PointToPointShell("c", port, role="master")
        master = MasterShell("m", conn_shell, seq_latency_cycles=0)
        master.submit(Transaction.write(0x40, [1, 2]), cycle=0)
        run_ticks([master, conn_shell], 10)
        message = request_from_words(source_words(port))
        assert message.command == Command.WRITE
        assert message.address == 0x40
        assert message.write_data == [1, 2]

    def test_sequentialization_latency_delays_issue(self):
        _, port = make_port()
        conn_shell = PointToPointShell("c", port, role="master")
        master = MasterShell("m", conn_shell, seq_latency_cycles=3)
        master.submit(Transaction.write(0, [1], posted=True), cycle=0)
        run_ticks([master, conn_shell], 2)
        assert port.channel(0).source_queue.fill == 0
        run_ticks([master, conn_shell], 10)
        assert port.channel(0).source_queue.fill > 0

    def test_posted_write_completes_without_response(self):
        _, port = make_port()
        conn_shell = PointToPointShell("c", port, role="master")
        master = MasterShell("m", conn_shell, seq_latency_cycles=0)
        txn = Transaction.write(0, [1], posted=True)
        master.submit(txn, cycle=0)
        run_ticks([master, conn_shell], 5)
        assert master.poll_completed() == [txn]
        assert master.outstanding == 0

    def test_response_completes_matching_transaction(self):
        _, port = make_port()
        conn_shell = PointToPointShell("c", port, role="master")
        master = MasterShell("m", conn_shell, seq_latency_cycles=0)
        txn = Transaction.read(0x8, 2)
        master.submit(txn, cycle=0)
        run_ticks([master, conn_shell], 5)
        response = ResponseMessage(command=Command.READ, read_data=[5, 6],
                                   trans_id=txn.trans_id)
        port.channel(0).dest_queue.push_many(response.to_words())
        run_ticks([conn_shell, master], 10)
        completed = master.poll_completed()
        assert completed == [txn]
        assert txn.response.read_data == [5, 6]
        assert txn.latency_cycles is not None

    def test_unknown_response_id_rejected(self):
        _, port = make_port()
        conn_shell = PointToPointShell("c", port, role="master")
        master = MasterShell("m", conn_shell, seq_latency_cycles=0)
        stray = ResponseMessage(command=Command.READ, read_data=[1], trans_id=99)
        port.channel(0).dest_queue.push_many(stray.to_words())
        with pytest.raises(ShellError):
            run_ticks([conn_shell, master], 10)

    def test_outstanding_limit(self):
        _, port = make_port()
        conn_shell = PointToPointShell("c", port, role="master")
        master = MasterShell("m", conn_shell, max_outstanding=2)
        assert master.submit(Transaction.read(0, 1))
        assert master.submit(Transaction.read(4, 1))
        assert not master.can_submit()
        assert not master.submit(Transaction.read(8, 1))

    def test_trans_ids_distinct_for_outstanding_transactions(self):
        _, port = make_port()
        conn_shell = PointToPointShell("c", port, role="master")
        master = MasterShell("m", conn_shell, seq_latency_cycles=0,
                             max_outstanding=8)
        txns = [Transaction.read(4 * i, 1) for i in range(8)]
        for txn in txns:
            master.submit(txn, cycle=0)
        run_ticks([master, conn_shell], 60)
        ids = [txn.trans_id for txn in txns]
        assert len(set(ids)) == len(ids)

    def test_requires_master_role_shell(self):
        _, port = make_port()
        slave_shell = PointToPointShell("c", port, role="slave")
        with pytest.raises(ShellError):
            MasterShell("m", slave_shell)

    def test_unknown_protocol_rejected(self):
        _, port = make_port()
        conn_shell = PointToPointShell("c", port, role="master")
        with pytest.raises(ShellError):
            MasterShell("m", conn_shell, protocol="ocp2")


class TestSlaveShell:
    def make(self, latency=0):
        _, port = make_port()
        conn_shell = PointToPointShell("c", port, role="slave")
        memory = MemorySlave("mem", latency_cycles=latency)
        shell = SlaveShell("s", conn_shell, memory)
        return port, conn_shell, memory, shell

    def feed_request(self, port, message):
        port.channel(0).dest_queue.push_many(message.to_words())

    def test_write_request_executed_and_acknowledged(self):
        from repro.protocol.messages import RequestMessage
        port, conn_shell, memory, shell = self.make()
        request = RequestMessage(command=Command.WRITE, address=0x10,
                                 write_data=[7, 8], trans_id=3)
        self.feed_request(port, request)
        run_ticks([conn_shell, shell, memory], 20)
        assert memory.memory.read(0x10) == 7
        assert memory.memory.read(0x11) == 8
        words = source_words(port)
        response = ResponseMessage(command=Command.WRITE, trans_id=3)
        assert words == response.to_words()

    def test_read_request_returns_data(self):
        from repro.protocol.messages import RequestMessage
        port, conn_shell, memory, shell = self.make()
        memory.memory.write(0x20, 42)
        request = RequestMessage(command=Command.READ, address=0x20,
                                 read_length=1, trans_id=5)
        self.feed_request(port, request)
        run_ticks([conn_shell, shell, memory], 20)
        words = source_words(port)
        assert words == ResponseMessage(command=Command.READ, read_data=[42],
                                        trans_id=5).to_words()

    def test_posted_write_produces_no_response(self):
        from repro.protocol.messages import RequestMessage
        port, conn_shell, memory, shell = self.make()
        request = RequestMessage(command=Command.WRITE_POSTED, address=0x0,
                                 write_data=[1], trans_id=1)
        self.feed_request(port, request)
        run_ticks([conn_shell, shell, memory], 20)
        assert memory.memory.read(0) == 1
        assert source_words(port) == []

    def test_slave_latency_delays_response(self):
        from repro.protocol.messages import RequestMessage
        port, conn_shell, memory, shell = self.make(latency=5)
        request = RequestMessage(command=Command.READ, address=0, read_length=1,
                                 trans_id=2)
        self.feed_request(port, request)
        run_ticks([conn_shell, shell, memory], 4)
        assert source_words(port) == []
        run_ticks([conn_shell, shell, memory], 20)
        assert len(source_words(port)) == 2

    def test_requires_slave_role_shell(self):
        _, port = make_port()
        master_shell = PointToPointShell("c", port, role="master")
        with pytest.raises(ShellError):
            SlaveShell("s", master_shell, MemorySlave("mem"))


class TestConfigurationSlave:
    def test_executes_register_writes_and_reads(self):
        kernel = NIKernel("ni", Simulator(), num_slots=8)
        kernel.add_channel()
        slave = ConfigurationSlave(kernel)
        address = channel_register_address(0, REG_SPACE)
        slave.enqueue(Transaction.write(address, [12]))
        txn, response = slave.pop_response()
        assert response.ok
        assert kernel.channel(0).space == 12
        slave.enqueue(Transaction.read(address, 1))
        _, response = slave.pop_response()
        assert response.read_data == [12]
        del txn

    def test_invalid_register_reports_decode_error(self):
        kernel = NIKernel("ni", Simulator(), num_slots=8)
        kernel.add_channel()
        slave = ConfigurationSlave(kernel)
        slave.enqueue(Transaction.write(channel_register_address(5, REG_CTRL),
                                        [1]))
        _, response = slave.pop_response()
        assert response.error == ResponseError.DECODE_ERROR


class TestConfigShell:
    def test_local_operations_execute_directly(self):
        kernel = NIKernel("local", Simulator(), num_slots=8)
        kernel.add_channel()
        shell = ConfigShell("cfg", local_kernel=kernel)
        op = shell.write("local", channel_register_address(0, REG_CTRL),
                         encode_ctrl(True, False))
        read_op = shell.read("local", channel_register_address(0, REG_CTRL))
        run_ticks([shell], 3)
        assert op.done
        assert kernel.channel(0).regs.enabled
        assert read_op.done
        assert read_op.result == encode_ctrl(True, False)
        assert shell.is_idle()

    def test_local_register_error_flagged(self):
        kernel = NIKernel("local", Simulator(), num_slots=8)
        shell = ConfigShell("cfg", local_kernel=kernel)
        op = shell.write("local", channel_register_address(3, REG_CTRL), 1)
        run_ticks([shell], 2)
        assert op.done and op.error

    def test_remote_operation_without_shell_rejected(self):
        kernel = NIKernel("local", Simulator(), num_slots=8)
        shell = ConfigShell("cfg", local_kernel=kernel)
        shell.write("remote", 0, 1)
        with pytest.raises(ShellError):
            run_ticks([shell], 2)

    def test_remote_operation_without_mapping_rejected(self):
        kernel = NIKernel("local", Simulator(), num_slots=8)
        kernel.add_channel(cdc_cycles=0)
        port = kernel.add_port("cfg", [0])
        conn_shell = ConnectionShell("c", port, role="master")
        shell = ConfigShell("cfg", local_kernel=kernel, shell=conn_shell)
        shell.write("unknown_ni", 0, 1)
        with pytest.raises(ShellError):
            run_ticks([shell], 2)

    def test_remote_write_is_sequentialized_as_mmio_message(self):
        kernel = NIKernel("local", Simulator(), num_slots=8)
        kernel.add_channel(cdc_cycles=0)
        port = kernel.add_port("cfg", [0])
        conn_shell = ConnectionShell("c", port, role="master")
        shell = ConfigShell("cfg", local_kernel=kernel, shell=conn_shell,
                            remote_conns={"ni2": 0})
        op = shell.write("ni2", 0x24, 7)
        run_ticks([shell, conn_shell], 10)
        words = port.channel(0).source_queue.pop_many(10)
        message = request_from_words(words)
        assert message.command == Command.WRITE_POSTED
        assert message.address == 0x24
        assert message.write_data == [7]
        assert op.done       # posted writes complete at issue

    def test_acknowledged_write_waits_for_response(self):
        kernel = NIKernel("local", Simulator(), num_slots=8)
        kernel.add_channel(cdc_cycles=0)
        port = kernel.add_port("cfg", [0])
        conn_shell = ConnectionShell("c", port, role="master")
        shell = ConfigShell("cfg", local_kernel=kernel, shell=conn_shell,
                            remote_conns={"ni2": 0})
        op = shell.write("ni2", 0x24, 7, acknowledged=True)
        follow_up = shell.write("ni2", 0x28, 8)
        run_ticks([shell, conn_shell], 10)
        assert not op.done
        assert not shell.is_idle()
        # Later operations are held back until the acknowledgement arrives.
        words = port.channel(0).source_queue.pop_many(20)
        assert len(words) == 3
        ack = ResponseMessage(command=Command.WRITE, trans_id=0)
        port.channel(0).dest_queue.push_many(ack.to_words())
        run_ticks([conn_shell, shell], 10)
        assert op.done
        assert follow_up.done or not shell.is_idle()
        del follow_up
