"""End-to-end integration tests: master IP -> NI -> NoC -> NI -> memory slave.

These run the full stack (traffic generator, master shell, connection shell,
NI kernels, routers, links, slave shell, memory) and check data integrity,
transaction ordering and the service guarantees of Section 2.
"""

import pytest

from repro.analysis.guarantees import GTGuarantees
from repro.analysis.verification import verify_latency
from repro.design.timing import LatencyModel
from repro.ip.traffic import ConstantBitRateTraffic
from repro.protocol.transactions import Transaction, TransactionStatus
from repro.testbench import build_point_to_point


class TestBestEffortPointToPoint:
    def test_writes_land_in_memory_with_correct_data(self):
        tb = build_point_to_point(max_transactions=0)
        data = [[1, 2, 3], [10, 20], [7]]
        for index, words in enumerate(data):
            tb.master.issue(Transaction.write(0x100 * index, words))
        tb.run_until_done()
        assert len(tb.master.completed) == 3
        for index, words in enumerate(data):
            stored = tb.memory.memory.read_burst(0x100 * index, len(words))
            assert stored == words

    def test_read_returns_previously_written_data(self):
        tb = build_point_to_point(max_transactions=0)
        tb.master.issue(Transaction.write(0x40, [11, 22, 33]))
        tb.master.issue(Transaction.read(0x40, length=3))
        tb.run_until_done()
        read = [t for t in tb.master.completed if t.is_read][0]
        assert read.response.read_data == [11, 22, 33]
        assert read.status == TransactionStatus.COMPLETED

    def test_transactions_complete_in_issue_order(self):
        tb = build_point_to_point(max_transactions=0)
        for index in range(8):
            tb.master.issue(Transaction.write(4 * index, [index]))
        tb.run_until_done()
        addresses = [t.address for t in tb.master.completed]
        assert addresses == [4 * i for i in range(8)]

    def test_pattern_driven_traffic_completes(self):
        tb = build_point_to_point(
            pattern=ConstantBitRateTraffic(period_cycles=20, burst_words=4),
            max_transactions=10)
        tb.run_until_done()
        assert len(tb.master.completed) == 10
        assert tb.memory.memory.writes == 40

    def test_posted_writes_complete_without_round_trip(self):
        tb = build_point_to_point(max_transactions=0)
        tb.master.issue(Transaction.write(0x0, [1], posted=True))
        tb.master.issue(Transaction.write(0x4, [2]))
        tb.run_until_done()
        posted = [t for t in tb.master.completed if not t.expects_response][0]
        acked = [t for t in tb.master.completed if t.expects_response][0]
        assert posted.latency_cycles < acked.latency_cycles

    def test_no_words_are_lost_or_duplicated(self):
        tb = build_point_to_point(
            pattern=ConstantBitRateTraffic(period_cycles=8, burst_words=3),
            max_transactions=20)
        tb.run_until_done()
        sent = tb.system.kernel(tb.master_ni).stats.counter("words_sent").value
        received = tb.system.kernel(tb.slave_ni).stats.counter(
            "words_received").value
        assert received == sent
        assert tb.memory.memory.writes == 60

    def test_flow_control_never_overflows_destination(self):
        # A slow slave clock forces backpressure through the credit mechanism.
        tb = build_point_to_point(
            queue_words=4,
            pattern=ConstantBitRateTraffic(period_cycles=4, burst_words=4,
                                           posted=True),
            max_transactions=30)
        tb.run_flit_cycles(4000)
        dest = tb.slave_channel().dest_queue
        assert dest.max_fill_seen <= dest.capacity


class TestGuaranteedPointToPoint:
    def test_gt_connection_delivers_all_traffic(self):
        tb = build_point_to_point(gt=True, request_slots=2, response_slots=2,
                                  max_transactions=10)
        tb.run_until_done()
        assert len(tb.master.completed) == 10

    def test_gt_traffic_uses_only_gt_packets(self):
        tb = build_point_to_point(gt=True, request_slots=2, response_slots=2,
                                  max_transactions=5)
        tb.run_until_done()
        kernel_stats = tb.system.kernel(tb.master_ni).stats
        assert kernel_stats.counter("gt_packets_sent").value > 0
        assert kernel_stats.counter("be_packets_sent").value == 0

    def test_gt_packet_latency_within_analytic_bound(self):
        tb = build_point_to_point(gt=True, request_slots=2, response_slots=2,
                                  pattern=ConstantBitRateTraffic(
                                      period_cycles=48, burst_words=2,
                                      posted=True),
                                  max_transactions=20)
        tb.run_until_done()
        slots = tb.slot_assignment[(tb.master_ni, 0)]
        hops = tb.noc.hop_count(tb.master_ni, tb.slave_ni)
        recorder = tb.system.kernel(tb.slave_ni).stats.latencies[
            "packet_network_latency"]
        guarantees = GTGuarantees(slot_pattern=slots, num_slots=8, hops=hops,
                                  packet_flits=2)
        report = verify_latency(guarantees, recorder.samples)
        assert report.all_satisfied, report.rows()

    def test_ni_latency_overhead_in_paper_range(self):
        """E2 sanity check: one-way overhead excluding slot waiting.

        The paper quotes 4-10 cycles of NI-added latency (sequentialization,
        shell, flit alignment, clock-domain crossing).  We measure the
        one-way latency of a posted write on an otherwise idle BE connection
        and subtract the pure network traversal, leaving the NI overhead in
        500 MHz word cycles.
        """
        tb = build_point_to_point(max_transactions=0)
        tb.master.issue(Transaction.write(0x0, [1, 2], posted=True))
        tb.run_flit_cycles(200)
        assert tb.memory.memory.writes == 2
        model = LatencyModel()
        # Request message: 4 words at one word per port cycle; network: one
        # flit cycle per hop (3 word cycles each).
        hops = tb.noc.hop_count(tb.master_ni, tb.slave_ni)
        # Completion time of the posted write measured at the master is just
        # the issue path; use the memory write count and packet latency
        # instead for the one-way check.
        recorder = tb.system.kernel(tb.slave_ni).stats.latencies[
            "packet_network_latency"]
        network_flit_cycles = recorder.maximum
        # Network latency (flit cycles) minus pure hop traversal is the
        # kernel-side queueing/alignment overhead.
        overhead_word_cycles = (network_flit_cycles - (hops + 1)) * 3
        assert overhead_word_cycles <= model.paper_range[1] + 3

    def test_larger_mesh_still_delivers(self):
        tb = build_point_to_point(rows=2, cols=3, gt=True, request_slots=2,
                                  response_slots=2, max_transactions=5)
        assert tb.noc.hop_count(tb.master_ni, tb.slave_ni) >= 3
        tb.run_until_done()
        assert len(tb.master.completed) == 5


class TestArbiterVariants:
    @pytest.mark.parametrize("arbiter", ["round_robin", "weighted_round_robin",
                                         "queue_fill"])
    def test_all_be_arbiters_deliver_traffic(self, arbiter):
        tb = build_point_to_point(be_arbiter=arbiter, max_transactions=5)
        tb.run_until_done()
        assert len(tb.master.completed) == 5
