"""Regression tests for the kernel/router hot-path overhaul.

Covers the two wiring/timestamp bugfixes (router trace times, attach_links
port wiring), the arbiter edge cases the allocation-free rewrites must
preserve, and the invariants of the new hot-path structures (the BE
ready-set and the version-invalidated slot cache).
"""

import pytest

from repro.core.kernel import NIKernel
from repro.core.registers import (
    REG_SPACE,
    SLOT_TABLE_BASE,
    channel_register_address,
)
from repro.core.scheduler import RoundRobinArbiter, WeightedRoundRobinArbiter
from repro.network.link import Link
from repro.network.noc import Attachment
from repro.network.packet import packet_to_flits
from repro.network.router import Router
from repro.sim.clock import Clock, ClockedComponent, run_cycles
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer


class _LinkDrain(ClockedComponent):
    """Consumes whatever appears on a link (a stand-in NI)."""

    def __init__(self, link):
        self.link = link
        self.flits = []

    def tick(self, cycle):
        flit = self.link.take()
        if flit is not None:
            self.flits.append(flit)

from tests.test_kernel import KernelPair
from tests.test_router import make_packet
from tests.test_scheduler import make_channels


# ---------------------------------------------------------------------------
# Bugfix: router trace events carry the simulator's current time
# ---------------------------------------------------------------------------
class TestRouterTraceTimestamps:
    def _clocked_router(self, tracer):
        sim = Simulator()
        clock = Clock(sim, 500.0 / 3.0, name="flit")
        router = Router("R", 3, tracer=tracer, sim=sim)
        in_link = Link("in0")
        out_links = [Link(f"out{p}") for p in range(3)]
        router.connect_input(0, in_link)
        for port, link in enumerate(out_links):
            router.connect_output(port, link)
        clock.add_component(router)
        clock.add_component(in_link)
        for link in out_links:
            clock.add_component(link)
            clock.add_component(_LinkDrain(link))
        return sim, clock, router, in_link, out_links

    def test_forward_events_use_simulation_time(self):
        tracer = Tracer()
        sim, clock, router, in_link, out_links = self._clocked_router(tracer)
        for flit in packet_to_flits(make_packet(path=(1,), payload_words=8)):
            in_link.send(flit)          # 3-flit BE packet
            run_cycles(sim, clock, 2)
        run_cycles(sim, clock, 4)
        events = tracer.filter(kind="forward", source="R")
        assert len(events) == 3
        times = [event.time_ps for event in events]
        # The old code hardcoded time_ps=0; forwards happen at edge >= 1.
        assert all(time > 0 for time in times)
        assert times == sorted(times)
        # Timestamps sit on the flit-clock grid, so router traces
        # sort/merge correctly with (time-stamped) NI kernel traces.
        assert all(time % clock.period_ps == 0 for time in times)

    def test_unclocked_router_still_records_time_zero(self):
        tracer = Tracer()
        router = Router("R", 2, tracer=tracer)   # no sim: harness mode
        in_link, out_link = Link("in"), Link("out")
        router.connect_input(0, in_link)
        router.connect_output(1, out_link)
        in_link.send(packet_to_flits(make_packet(path=(1,),
                                                 payload_words=1))[0])
        in_link.post_tick(0)
        router.tick(0)
        events = tracer.filter(kind="forward")
        assert len(events) == 1
        assert events[0].time_ps == 0


# ---------------------------------------------------------------------------
# Bugfix: attach_links wires ports exactly like attach
# ---------------------------------------------------------------------------
class TestAttachLinksWiring:
    def test_attach_links_fully_wires_both_links(self):
        sim = Simulator()
        kernel = NIKernel("K", sim)
        to_net, from_net = Link("k->net"), Link("net->k")
        # Leave stale port indices behind to prove they are overwritten.
        to_net.source_port = 7
        from_net.sink_port = 7
        kernel.attach_links(to_network=to_net, from_network=from_net)
        assert from_net.sink is kernel
        assert from_net.sink_port == 0
        assert to_net.source is kernel
        assert to_net.source_port == 0

    def test_attach_and_attach_links_produce_identical_wiring(self):
        sim = Simulator()
        kernel_a = NIKernel("A", sim)
        kernel_b = NIKernel("B", sim)
        links_a = (Link("a_to"), Link("a_from"))
        links_b = (Link("b_to"), Link("b_from"))
        kernel_a.attach(Attachment(name="A", router_node=(0, 0),
                                   local_index=0, local_port=0,
                                   to_network=links_a[0],
                                   from_network=links_a[1]))
        kernel_b.attach_links(to_network=links_b[0], from_network=links_b[1])
        for (to_net, from_net), kernel in ((links_a, kernel_a),
                                           (links_b, kernel_b)):
            assert (from_net.sink, from_net.sink_port) == (kernel, 0)
            assert (to_net.source, to_net.source_port) == (kernel, 0)


# ---------------------------------------------------------------------------
# Arbiter edge cases (allocation-free rewrite must preserve these)
# ---------------------------------------------------------------------------
class TestArbiterEdgeCases:
    def test_round_robin_wraps_after_eligible_set_shrinks(self):
        arbiter = RoundRobinArbiter()
        channels = make_channels(3)
        assert arbiter.select([0, 1, 2], channels) == 0
        assert arbiter.select([0, 1, 2], channels) == 1
        # Every index above the last grant disappears: wrap to the lowest.
        assert arbiter.select([0], channels) == 0
        assert arbiter.select([0, 1], channels) == 1
        assert arbiter.select([0, 1], channels) == 0

    def test_round_robin_is_input_order_independent(self):
        channels = make_channels(3)
        sorted_grants = []
        arbiter = RoundRobinArbiter()
        for _ in range(5):
            sorted_grants.append(arbiter.select([0, 1, 2], channels))
        shuffled_grants = []
        arbiter = RoundRobinArbiter()
        for _ in range(5):
            shuffled_grants.append(arbiter.select([2, 0, 1], channels))
        assert shuffled_grants == sorted_grants

    def test_weighted_round_robin_loses_grantee_mid_burst(self):
        arbiter = WeightedRoundRobinArbiter(weights={0: 3})
        channels = make_channels(2)
        assert arbiter.select([0, 1], channels) == 0   # burst starts (3 grants)
        # The grantee drains mid-burst; the arbiter must move on, not stall.
        assert arbiter.select([1], channels) == 1
        # When the heavy channel returns it starts a *fresh* burst.
        grants = [arbiter.select([0, 1], channels) for _ in range(4)]
        assert grants == [0, 0, 0, 1]

    def test_weighted_round_robin_empty_mid_burst_resets(self):
        arbiter = WeightedRoundRobinArbiter(weights={1: 2})
        channels = make_channels(2)
        assert arbiter.select([0, 1], channels) == 0
        assert arbiter.select([0, 1], channels) == 1
        assert arbiter.select([], channels) is None    # burst interrupted
        assert arbiter.select([1], channels) == 1      # fresh state


# ---------------------------------------------------------------------------
# Hot-path invariants: BE ready-set and slot-cache invalidation
# ---------------------------------------------------------------------------
class TestReadySetInvariants:
    def test_space_register_write_revives_a_drained_channel(self):
        pair = KernelPair()
        pair.open_channel()
        # Zero the space through the register file, queue words, and let the
        # scheduler scan (and lazily drop) the ineligible channel.
        pair.a.write_register(channel_register_address(0, REG_SPACE), 0)
        pair.a.channel(0).source_queue.push_many([1, 2, 3])
        pair.run(10)
        assert pair.b.channel(0).dest_queue.total_fill == 0
        # The register write alone must re-arm the scheduler.
        pair.a.write_register(channel_register_address(0, REG_SPACE), 8)
        pair.run(10)
        assert pair.b.channel(0).dest_queue.total_fill == 3

    def test_direct_space_poke_followed_by_push_transmits(self):
        pair = KernelPair()
        pair.open_channel()
        pair.a.channel(0).space = 0
        pair.a.channel(0).source_queue.push_many([1, 2])
        pair.run(10)
        assert pair.b.channel(0).dest_queue.total_fill == 0
        # Tests poke state directly; any queue push re-arms the ready set.
        pair.a.channel(0).space = 8
        pair.a.channel(0).source_queue.push(3)
        pair.run(10)
        assert pair.b.channel(0).dest_queue.total_fill == 3

    def test_gt_channel_does_not_linger_in_be_arbitration(self):
        pair = KernelPair(channels=2)
        pair.open_channel(0, gt=True, slots=(0,))
        pair.open_channel(1, gt=False)
        pair.a.channel(0).source_queue.push_many(list(range(4)))
        pair.a.channel(1).source_queue.push_many([9, 9])
        pair.run(30)
        assert pair.b.channel(0).dest_queue.total_fill == 4
        assert pair.b.channel(1).dest_queue.total_fill == 2
        assert pair.a.stats.counter("gt_packets_sent").value >= 1
        assert pair.a.stats.counter("be_packets_sent").value >= 1


class TestSlotCacheInvalidation:
    def test_register_write_moves_a_reservation_mid_run(self):
        pair = KernelPair()
        pair.open_channel(gt=True, slots=(0,))
        pair.a.channel(0).source_queue.push_many(list(range(4)))
        pair.run(8)
        sent_before = pair.a.stats.counter("gt_packets_sent").value
        assert sent_before >= 1
        # Move the reservation to another slot through the register file.
        pair.a.write_register(SLOT_TABLE_BASE + 0, 0)        # release slot 0
        pair.a.write_register(SLOT_TABLE_BASE + 3, 1)        # channel 0 -> slot 3
        assert pair.a.read_register(SLOT_TABLE_BASE + 3) == 1
        pair.a.channel(0).source_queue.push_many(list(range(4)))
        pair.run(16)
        assert pair.a.stats.counter("gt_packets_sent").value > sent_before
        assert pair.b.channel(0).dest_queue.total_fill == 8

    def test_direct_slot_table_mutation_is_visible(self):
        pair = KernelPair()
        pair.open_channel(gt=True, slots=(0,))
        pair.a.channel(0).source_queue.push_many([1, 2])
        pair.run(8)
        assert pair.b.channel(0).dest_queue.total_fill == 2
        # Direct mutation (no register write) still bumps the table version.
        pair.a.slot_table.release(0)
        pair.a.slot_table.reserve(5, 0)
        pair.a.channel(0).source_queue.push_many([3, 4])
        pair.run(16)
        assert pair.b.channel(0).dest_queue.total_fill == 4

    def test_consecutive_run_cache_matches_reference(self):
        pair = KernelPair()
        pair.open_channel(gt=True, slots=(2, 3, 4))
        kernel = pair.a
        kernel._refresh_slot_cache()
        for slot in range(kernel.num_slots):
            owner = kernel.slot_table.owner(slot)
            assert kernel._slot_owners[slot] == owner
            if owner is not None:
                assert (kernel._slot_runs[slot]
                        == kernel._consecutive_slots(owner, slot))
