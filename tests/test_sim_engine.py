"""Unit tests for the discrete-event simulator and clocks."""

import pytest

from repro.sim.clock import Clock, ClockedComponent
from repro.sim.engine import SimulationError, Simulator


class Recorder(ClockedComponent):
    def __init__(self):
        self.ticks = []
        self.post_ticks = []

    def tick(self, cycle):
        self.ticks.append(cycle)

    def post_tick(self, cycle):
        self.post_ticks.append(cycle)


class TestSimulator:
    def test_starts_at_time_zero(self):
        assert Simulator().now == 0

    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(30, lambda: order.append("c"))
        sim.schedule(10, lambda: order.append("a"))
        sim.schedule(20, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_run_in_priority_then_fifo_order(self):
        sim = Simulator()
        order = []
        sim.schedule_at(5, lambda: order.append("late"), priority=10)
        sim.schedule_at(5, lambda: order.append("first"), priority=0)
        sim.schedule_at(5, lambda: order.append("second"), priority=0)
        sim.run()
        assert order == ["first", "second", "late"]

    def test_now_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(42, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [42]
        assert sim.now == 42

    def test_scheduling_in_the_past_raises(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5, lambda: None)

    def test_negative_delay_raises(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1, lambda: None)

    def test_run_until_is_inclusive(self):
        sim = Simulator()
        hits = []
        sim.schedule(10, lambda: hits.append(10))
        sim.schedule(20, lambda: hits.append(20))
        sim.run(until=10)
        assert hits == [10]
        assert sim.now == 10

    def test_run_until_leaves_later_events_pending(self):
        sim = Simulator()
        sim.schedule(100, lambda: None)
        sim.run(until=50)
        assert sim.pending_events() == 1
        sim.run()
        assert sim.pending_events() == 0

    def test_cancelled_events_are_skipped(self):
        sim = Simulator()
        hits = []
        event = sim.schedule(10, lambda: hits.append("cancelled"))
        sim.schedule(20, lambda: hits.append("kept"))
        event.cancel()
        sim.run()
        assert hits == ["kept"]

    def test_run_max_events(self):
        sim = Simulator()
        hits = []
        for i in range(5):
            sim.schedule(i + 1, lambda i=i: hits.append(i))
        sim.run(max_events=2)
        assert hits == [0, 1]

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.schedule(5, lambda: order.append("chained"))

        sim.schedule(1, first)
        sim.run()
        assert order == ["first", "chained"]

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_executed_event_counter(self):
        sim = Simulator()
        for i in range(3):
            sim.schedule(i + 1, lambda: None)
        sim.run()
        assert sim.executed_events == 3


class TestClock:
    def test_period_from_frequency(self):
        sim = Simulator()
        clock = Clock(sim, 500.0)
        assert clock.period_ps == 2000

    def test_bandwidth_of_32bit_link_at_500mhz_is_16_gbit(self):
        clock = Clock(Simulator(), 500.0)
        assert clock.bandwidth_gbit_s == pytest.approx(16.0)

    def test_invalid_frequency_raises(self):
        with pytest.raises(SimulationError):
            Clock(Simulator(), 0)

    def test_components_tick_every_cycle(self):
        sim = Simulator()
        clock = Clock(sim, 500.0)
        recorder = Recorder()
        clock.add_component(recorder)
        clock.start()
        sim.run(until=10000)
        assert recorder.ticks[:4] == [0, 1, 2, 3]
        assert clock.cycle == recorder.ticks[-1]

    def test_post_tick_runs_after_all_ticks_in_the_same_cycle(self):
        sim = Simulator()
        clock = Clock(sim, 100.0)
        order = []

        class A(ClockedComponent):
            def tick(self, cycle):
                order.append(("tick_a", cycle))

            def post_tick(self, cycle):
                order.append(("post_a", cycle))

        class B(ClockedComponent):
            def tick(self, cycle):
                order.append(("tick_b", cycle))

        clock.add_component(A())
        clock.add_component(B())
        clock.start()
        sim.run(until=10000)
        first_cycle = [entry for entry in order if entry[1] == 0]
        assert first_cycle == [("tick_a", 0), ("tick_b", 0), ("post_a", 0)]

    def test_two_clock_domains_interleave_by_frequency(self):
        sim = Simulator()
        fast = Clock(sim, 500.0)   # 2 ns
        slow = Clock(sim, 100.0)   # 10 ns
        fast_rec, slow_rec = Recorder(), Recorder()
        fast.add_component(fast_rec)
        slow.add_component(slow_rec)
        fast.start()
        slow.start()
        sim.run(until=100000)  # 100 ns
        assert len(fast_rec.ticks) == pytest.approx(5 * len(slow_rec.ticks),
                                                    rel=0.1)

    def test_start_is_idempotent(self):
        sim = Simulator()
        clock = Clock(sim, 500.0)
        recorder = Recorder()
        clock.add_component(recorder)
        clock.start()
        clock.start()
        sim.run(until=4000)
        # Only one edge per period despite the double start.
        assert recorder.ticks == [0, 1, 2]

    def test_remove_component(self):
        sim = Simulator()
        clock = Clock(sim, 500.0)
        recorder = Recorder()
        clock.add_component(recorder)
        clock.remove_component(recorder)
        clock.start()
        sim.run(until=10000)
        assert recorder.ticks == []

    def test_cycle_time_conversions(self):
        clock = Clock(Simulator(), 500.0)
        assert clock.cycles_to_ps(3) == 6000
        assert clock.ps_to_cycles(6000) == 3
