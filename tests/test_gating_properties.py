"""Tick-gating property tests (hypothesis) and wake-protocol pins.

Gating soundness rests on two rules (``repro/sim/clock.py``,
PERFORMANCE.md "Tick gating & frame macro-stepping"):

* A ``next_action_cycle`` horizon may **under-estimate** arbitrarily — a
  tick before the true horizon is an observable no-op by contract — so
  replacing every horizon in a system with a randomized under-estimate
  must leave results byte-identical.  The property sweep does exactly
  that: each component's override is wrapped by a pure, deterministic
  mangler that answers anywhere in ``[cycle + 1, true_horizon]``
  (including de-rating FAR_FUTURE sleep claims to finite polling).
* A stimulus arriving mid-skip cancels the standing gate: the component
  ticks at the first boundary strictly after the wake, not at its old
  horizon — the pin the fault injector, register writes and every wake
  hook rely on.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import scenarios
from repro.sim.clock import Clock, ClockedComponent
from repro.sim.engine import Simulator


def normalize(obj):
    """NaN-tolerant deep normalization so fingerprints compare with ==."""
    if isinstance(obj, float):
        return "NaN" if math.isnan(obj) else obj
    if isinstance(obj, dict):
        return {key: normalize(value) for key, value in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [normalize(value) for value in obj]
    return obj


def _mangle_horizons(system, seed: int) -> None:
    """Wrap every overridden ``next_action_cycle`` with an under-estimator.

    The wrapper is pure and deterministic (a hash of the cycle and a
    per-component salt), so it is a legal horizon by the gating contract —
    it just claims the component may act earlier than it truly can.
    """
    clocks = [system.noc.flit_clock, *system.model.port_clocks.values()]
    salt = 0
    for clock in clocks:
        for component in clock._components:
            if not component._has_next_action:
                continue
            true_na = type(component).next_action_cycle
            salt += 1

            def wrapped(cycle, _c=component, _na=true_na, _s=seed ^ salt):
                true = _na(_c, cycle)
                span = true - (cycle + 1)
                if span <= 0:
                    return true
                h = (cycle * 1103515245 + _s * 2654435761 + 12345) \
                    & 0x7FFFFFFF
                return cycle + 1 + h % (span + 1)

            component.next_action_cycle = wrapped


def run_fingerprint(name: str, cycles: int, mangle_seed=None) -> dict:
    system = scenarios.build(name)
    if mangle_seed is not None:
        system.start()  # wire the clocks before wrapping their components
        _mangle_horizons(system, mangle_seed)
    system.run_flit_cycles(cycles)
    digest = system.fingerprint()
    digest["memory_words"] = {
        mem_name: dict(handle.memory._data)
        for mem_name, handle in system.memories.items()}
    return normalize(digest)


_REFERENCE = {}


def _reference(name: str, cycles: int) -> dict:
    if name not in _REFERENCE:
        _REFERENCE[name] = run_fingerprint(name, cycles)
    return _REFERENCE[name]


@settings(max_examples=8, deadline=None)
@given(name=st.sampled_from(["point_to_point", "gt_be_mix",
                             "link_failure_reroute"]),
       seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_horizon_under_estimates_never_change_results(name, seed):
    """Randomly de-rated horizons (down to dense polling) are result-exact."""
    cycles = 300
    mangled = run_fingerprint(name, cycles, mangle_seed=seed)
    assert mangled == _reference(name, cycles)


# ---------------------------------------------------------------------------
# Wake-protocol pin: a mid-skip stimulus cancels the standing gate.
# ---------------------------------------------------------------------------
class FarHorizon(ClockedComponent):
    """Always busy, but predicts its next action 50 cycles out."""

    def __init__(self):
        self.ticks = []

    def tick(self, cycle):
        self.ticks.append(cycle)

    def is_idle(self):
        return False

    def next_action_cycle(self, cycle):
        return cycle + 50


def test_mid_skip_wake_cancels_the_gate():
    sim = Simulator()
    clock = Clock(sim, 500.0)
    component = FarHorizon()
    clock.add_component(component)
    clock.start()
    sim.run_for(5 * clock.period_ps)
    # One edge executed, then the clock skipped ahead to the horizon.
    assert component.ticks == [0]
    assert clock.gated
    # Stimulus strictly inside the skip window: the wake must pull the
    # next edge back to the first boundary after the stimulus (cycle 11),
    # not leave it parked at the stale horizon (cycle 50).
    sim.schedule_at(clock.edge_time(10) + 1, component.notify_active)
    sim.run(until=clock.edge_time(12))
    assert component.ticks == [0, 11]
    # After the early tick the component re-gates on its new horizon.
    assert clock.gated


def test_mid_skip_wake_from_sleep_restarts_a_far_gated_clock():
    """FAR_FUTURE horizons put the clock to sleep without a pending event;
    a notify must restart it exactly like an idle-skip wake."""

    class Parked(FarHorizon):
        def next_action_cycle(self, cycle):
            from repro.sim.batching import FAR_FUTURE
            return FAR_FUTURE

    sim = Simulator()
    clock = Clock(sim, 500.0)
    component = Parked()
    clock.add_component(component)
    clock.start()
    sim.run_for(5 * clock.period_ps)
    assert component.ticks == [0]
    assert clock.sleeping
    sim.schedule_at(clock.edge_time(20) + 1, component.notify_active)
    sim.run(until=clock.edge_time(22))
    assert component.ticks == [0, 21]
