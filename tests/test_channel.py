"""Unit tests for the NI channel (queues + flow-control counters)."""

import pytest

from repro.core.channel import Channel, FlowControlError


def make_channel(**kwargs):
    return Channel(index=0, name="ch0", **kwargs)


class TestFlowControlCounters:
    def test_sendable_is_min_of_fill_and_space(self):
        channel = make_channel()
        channel.source_queue.push_many([1, 2, 3, 4])
        channel.space = 2
        assert channel.sendable == 2
        channel.space = 10
        assert channel.sendable == 4

    def test_add_and_consume_space(self):
        channel = make_channel()
        channel.add_space(5)
        channel.consume_space(3)
        assert channel.space == 2

    def test_consuming_more_space_than_available_raises(self):
        channel = make_channel()
        channel.add_space(1)
        with pytest.raises(FlowControlError):
            channel.consume_space(2)

    def test_negative_credit_rejected(self):
        with pytest.raises(FlowControlError):
            make_channel().add_space(-1)

    def test_credit_accumulation_and_harvest(self):
        channel = make_channel()
        channel.add_credit(3)
        channel.add_credit(2)
        assert channel.take_credits(4) == 4
        assert channel.credit == 1
        assert channel.take_credits(10) == 1
        assert channel.credit == 0


class TestFlush:
    def test_flush_bypasses_threshold_until_snapshot_sent(self):
        channel = make_channel()
        channel.regs.enabled = True
        channel.regs.data_threshold = 8
        channel.space = 100
        channel.source_queue.push_many([1, 2])
        assert not channel.eligible()          # below the threshold
        channel.request_flush()
        assert channel.flush_pending
        assert channel.eligible()
        channel.note_words_sent(2)             # the snapshot has drained
        assert not channel.flush_pending

    def test_flush_with_partial_draining(self):
        channel = make_channel()
        channel.source_queue.push_many([1, 2, 3])
        channel.request_flush()
        channel.note_words_sent(2)
        assert channel.flush_pending
        channel.note_words_sent(1)
        assert not channel.flush_pending

    def test_words_sent_without_flush_is_a_no_op(self):
        channel = make_channel()
        channel.note_words_sent(5)
        assert not channel.flush_pending


class TestEligibility:
    def test_disabled_channel_never_eligible(self):
        channel = make_channel()
        channel.space = 10
        channel.source_queue.push(1)
        assert not channel.eligible()

    def test_eligible_with_data_above_threshold(self):
        channel = make_channel()
        channel.regs.enabled = True
        channel.space = 10
        channel.source_queue.push(1)
        assert channel.eligible()

    def test_not_eligible_without_data_or_credits(self):
        channel = make_channel()
        channel.regs.enabled = True
        assert not channel.eligible()

    def test_data_threshold_skips_small_queues(self):
        channel = make_channel()
        channel.regs.enabled = True
        channel.regs.data_threshold = 4
        channel.space = 100
        channel.source_queue.push_many([1, 2, 3])
        assert not channel.eligible()
        channel.source_queue.push(4)
        assert channel.eligible()

    def test_data_blocked_by_zero_space_is_not_eligible(self):
        channel = make_channel()
        channel.regs.enabled = True
        channel.source_queue.push_many([1, 2])
        channel.space = 0
        assert not channel.eligible()

    def test_credits_alone_make_channel_eligible(self):
        channel = make_channel()
        channel.regs.enabled = True
        channel.add_credit(1)
        assert channel.eligible()

    def test_credit_threshold_batches_credits(self):
        channel = make_channel()
        channel.regs.enabled = True
        channel.regs.credit_threshold = 4
        channel.add_credit(3)
        assert not channel.eligible()
        channel.add_credit(1)
        assert channel.eligible()


class TestStatusWord:
    def test_status_packs_queue_fillings(self):
        channel = make_channel()
        channel.source_queue.push_many([1, 2, 3])
        channel.dest_queue.push_many([4, 5])
        assert channel.status_word == (3 << 16) | 2
