#!/usr/bin/env bash
# One-command repo gate: fast test tier + examples smoke + tick-gating smoke
# + quick perf smoke + perf floors + BENCH_PERF.json staleness.
#
#   scripts/check.sh        (or: make check)
#
# Fails if any fast-tier test fails, if an example crashes, if the quick
# benchmark cannot reproduce identical results across engine modes, if
# idle_mesh.event_reduction drops below 10x in either the fresh quick run
# or the tracked BENCH_PERF.json, or if engine/hot-path files changed
# without BENCH_PERF.json being regenerated.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== reprolint (static contract checks) =="
# AST-level enforcement of the wake-protocol, determinism, hot-path and
# counter-exactness contracts (PERFORMANCE.md "Static contract checking").
python -m repro.analysis.lint src/repro --baseline reprolint_baseline.json

echo "== tier-1 tests (fast tier) =="
python -m pytest -q -m "not slow"

echo "== examples smoke =="
for example in examples/*.py; do
  echo "  running $example"
  python "$example" > /dev/null
done

echo "== fault scenarios smoke =="
python - <<'EOF'
from repro.api import scenarios

for name in ("link_failure_reroute", "transient_storm", "gt_degraded"):
    system = scenarios.build(name)
    cycles = system.run_until_idle(max_flit_cycles=400000)
    assert cycles < 400000, f"{name} never went idle"
    for label, handle in system.masters.items():
        bad = [t for t in handle.completed
               if t.response is None or not t.response.ok]
        assert not bad, f"{name}: {label} has {len(bad)} failed transactions"
    report = system.health_report()
    print(f"  {name}: idle@{cycles}, drops={report.packets_dropped}, "
          f"retries={report.retries}, degraded={len(report.degraded)}")
EOF

echo "== observability smoke =="
python - <<'EOF'
import io
import json

from repro.api import scenarios

system = scenarios.build("obs_tour", traced=True)
cycles = system.run_until_idle(max_flit_cycles=400000)
assert cycles < 400000, "obs_tour never went idle"

report = system.report()
assert report["metrics"]["samples"] > 0, "sampler took no samples"
assert report["captures"], "no probe recorded a change"
assert report["health"]["packets_dropped"] > 0, "transient window never fired"

vcd = io.StringIO()
signals = system.obs.write_vcd(vcd)
text = vcd.getvalue()
assert signals > 0 and "$enddefinitions" in text and "$timescale" in text

trace = system.obs.perfetto(system.tracer.events)
spans = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
assert spans, "perfetto export has no packet spans"
json.dumps(trace)  # must be serializable as-is

print(f"  obs_tour: idle@{cycles}, samples={report['metrics']['samples']}, "
      f"captures={len(report['captures'])}, vcd_signals={signals}, "
      f"perfetto_events={len(trace['traceEvents'])}")
EOF

echo "== tick-gating smoke (gating off vs on, fingerprints) =="
# Next-action tick gating (PERFORMANCE.md "Tick gating & frame
# macro-stepping") must be a pure optimization: a saturated scenario run
# with gating forced off has to produce a byte-identical fingerprint,
# including delivered memory words.
python - <<'EOF'
import math

from repro.api import scenarios
from repro.sim.clock import gating_default, ungated


def normalize(obj):
    if isinstance(obj, float):
        return "NaN" if math.isnan(obj) else obj
    if isinstance(obj, dict):
        return {key: normalize(value) for key, value in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [normalize(value) for value in obj]
    return obj


def fingerprint(name, cycles):
    system = scenarios.build(name)
    system.run_flit_cycles(cycles)
    digest = system.fingerprint()
    digest["memory_words"] = {
        mem_name: dict(handle.memory._data)
        for mem_name, handle in system.memories.items()}
    return normalize(digest)


assert gating_default(), "repo default must be tick gating on"
name, cycles = "saturated_grid", 150
gated = fingerprint(name, cycles)
with ungated():
    reference = fingerprint(name, cycles)
assert gated == reference, \
    f"{name}: gated run diverged from the ungated reference"
print(f"  {name}: {cycles} cycles byte-identical with gating off vs on")
EOF

quick_json="$(mktemp /tmp/bench_quick.XXXXXX.json)"
trap 'rm -f "$quick_json"' EXIT

echo "== perf smoke (benchmarks/perf/run_perf.py --quick --compare) =="
# The quick tier gates against the tracked full-run baseline: wall times are
# not comparable across regimes, so --compare gates the deterministic
# events-per-cycle rate (and absolute events for constant-event scenarios).
# A >20% jump means the engine stopped batching/sleeping somewhere.
python benchmarks/perf/run_perf.py --quick --output "$quick_json" \
    --compare BENCH_PERF.json

echo "== perf floors =="
python - "$quick_json" <<'EOF'
import json
import sys

FLOOR = 10.0

def reduction(path):
    with open(path) as handle:
        report = json.load(handle)
    return report["scenarios"]["idle_mesh"]["event_reduction"]

failures = []
for label, path in (("quick run", sys.argv[1]),
                    ("tracked BENCH_PERF.json", "BENCH_PERF.json")):
    value = reduction(path)
    status = "ok" if value >= FLOOR else "FAIL"
    print(f"  idle_mesh.event_reduction [{label}]: {value:.1f}x ({status})")
    if value < FLOOR:
        failures.append(label)
if failures:
    sys.exit(f"idle_mesh.event_reduction below {FLOOR}x in: {failures}")
EOF

echo "== BENCH_PERF.json staleness =="
# Paths whose changes affect the tracked perf numbers: a commit (or working
# tree) touching them without regenerating BENCH_PERF.json is stale.
# src/repro/network covers topology factories and routing strategies (route
# computation happens inside the timed build of every perf scenario);
# src/repro/analysis is included because the builder's deadlock check runs
# the channel-dependency analysis on that same timed path; src/repro/faults
# because its hooks sit on the link/kernel/shell hot paths even when no
# fault is declared; src/repro/config because the slot allocation policy
# (spread vs contiguous) decides the burst shapes the batched pipeline can
# form, which directly moves the saturated_* numbers; src/repro/sim covers
# the batching primitives (sim/batching.py), clock fusion and next-action
# tick gating (sim/clock.py)
# and the columnar stats layer (sim/stats.py); src/repro/obs because the
# sampler's burst barrier shapes the batched pipeline in observed runs (and
# must stay a no-op when no observers are declared).
ENGINE_PATHS=(src/repro/sim src/repro/core src/repro/network src/repro/api
              src/repro/design src/repro/ip src/repro/mem src/repro/analysis
              src/repro/faults src/repro/config src/repro/protocol
              src/repro/baselines src/repro/obs
              src/repro/testbench.py benchmarks/perf/run_perf.py)

# Meta-check: the array above is hand-maintained; fail loudly if a new
# src/repro subpackage exists that it does not cover, so the staleness gate
# can never silently ignore fresh engine code.  tests/test_repo_meta.py
# checks the same invariant from pytest.
for subpackage in src/repro/*/; do
  subpackage="${subpackage%/}"
  [[ "$(basename "$subpackage")" == "__pycache__" ]] && continue
  covered=no
  for known in "${ENGINE_PATHS[@]}"; do
    [[ "$known" == "$subpackage" ]] && covered=yes && break
  done
  if [[ "$covered" == no ]]; then
    echo "  ENGINE_PATHS does not cover $subpackage; add it (or its" >&2
    echo "  exclusion rationale) to scripts/check.sh" >&2
    exit 1
  fi
done

if git rev-parse --git-dir >/dev/null 2>&1; then
  stale=""
  # Uncommitted engine edits require an uncommitted (fresh) BENCH_PERF.json.
  if ! git diff --quiet HEAD -- "${ENGINE_PATHS[@]}" 2>/dev/null; then
    if git diff --quiet HEAD -- BENCH_PERF.json 2>/dev/null; then
      stale="uncommitted engine changes without a regenerated BENCH_PERF.json"
    fi
  else
    engine_commit="$(git rev-list -1 HEAD -- "${ENGINE_PATHS[@]}" || true)"
    bench_commit="$(git rev-list -1 HEAD -- BENCH_PERF.json || true)"
    if [[ -n "$engine_commit" ]]; then
      if [[ -z "$bench_commit" ]] || ! git merge-base --is-ancestor \
           "$engine_commit" "$bench_commit" 2>/dev/null; then
        stale="engine files last changed in ${engine_commit:0:12} but BENCH_PERF.json was not regenerated since"
      fi
    fi
  fi
  if [[ -n "$stale" ]]; then
    echo "  STALE: $stale" >&2
    echo "  run: PYTHONPATH=src python benchmarks/perf/run_perf.py" >&2
    exit 1
  fi
  echo "  BENCH_PERF.json is current"
else
  echo "  (not a git checkout; staleness check skipped)"
fi

echo "check: OK"
