#!/usr/bin/env bash
# One-command repo gate: fast test tier + quick perf smoke + perf floors.
#
#   scripts/check.sh        (or: make check)
#
# Fails if any fast-tier test fails, if the quick benchmark cannot
# reproduce identical results across engine modes, or if
# idle_mesh.event_reduction drops below 10x in either the fresh quick run
# or the tracked BENCH_PERF.json.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests (fast tier) =="
python -m pytest -q -m "not slow"

quick_json="$(mktemp /tmp/bench_quick.XXXXXX.json)"
trap 'rm -f "$quick_json"' EXIT

echo "== perf smoke (benchmarks/perf/run_perf.py --quick) =="
python benchmarks/perf/run_perf.py --quick --output "$quick_json"

echo "== perf floors =="
python - "$quick_json" <<'EOF'
import json
import sys

FLOOR = 10.0

def reduction(path):
    with open(path) as handle:
        report = json.load(handle)
    return report["scenarios"]["idle_mesh"]["event_reduction"]

failures = []
for label, path in (("quick run", sys.argv[1]),
                    ("tracked BENCH_PERF.json", "BENCH_PERF.json")):
    value = reduction(path)
    status = "ok" if value >= FLOOR else "FAIL"
    print(f"  idle_mesh.event_reduction [{label}]: {value:.1f}x ({status})")
    if value < FLOOR:
        failures.append(label)
if failures:
    sys.exit(f"idle_mesh.event_reduction below {FLOOR}x in: {failures}")
EOF

echo "check: OK"
