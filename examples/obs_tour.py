"""Observability tour: the probe network, metric timelines and exports.

Builds the ``obs_tour`` scenario — a 2x2 mesh where a GT stream feeds a
DRAM-backed memory while a BE stream rides out a transient drop window —
with ``SystemBuilder.observe()`` attached, then walks the whole
observability surface:

* ``System.obs`` probes with their change-capture ring buffers
  (link occupancy edges, NI slot ownership, DRAM bank state, fault events);
* the deterministic sampled metric timelines (``System.obs.series()``);
* ``System.report()`` tying counters, health, metrics and captures together;
* the timeline writers: a VCD waveform for signal-style series, a
  Chrome/Perfetto ``trace_event`` JSON reconstructing packet lifetimes
  from the run's trace events, and a JSON-lines capture dump.

Run with:  python examples/obs_tour.py
"""

import json
import os
import tempfile

from repro.api import scenarios


def main() -> None:
    system = scenarios.build("obs_tour", traced=True)
    cycles = system.run_until_idle(max_flit_cycles=400000)
    obs = system.obs

    print("obs_tour: GT->DRAM + BE-through-a-drop-window, fully probed\n")
    print(f"  idle after {cycles} flit cycles, {len(obs)} probes attached")

    series = obs.series()
    rows = len(series["cycles"])
    print(f"  sampled {series['samples']} times (stride {series['stride']} "
          f"cycles, {rows} rows retained, "
          f"{len(series['metrics'])} metrics)")

    report = system.report()
    health = report["health"]
    print(f"  health: drops={health['packets_dropped']} "
          f"retries={health['retries']} "
          f"timeouts={health['timeouts']}")

    captures = obs.captures()
    print(f"  captures: {len(captures)} components recorded transitions")
    for record in captures.get("faults", []):
        print(f"    fault @cycle {record['cycle']}: {record['signal']} "
              f"{record['value']}")

    outdir = tempfile.mkdtemp(prefix="obs_tour_")
    vcd_path = os.path.join(outdir, "obs_tour.vcd")
    perfetto_path = os.path.join(outdir, "obs_tour.trace.json")
    jsonl_path = os.path.join(outdir, "obs_tour.captures.jsonl")

    signals = obs.write_vcd(vcd_path)
    events = system.tracer.events
    perfetto_events = obs.write_perfetto(events, perfetto_path)
    capture_records = obs.dump_jsonl(jsonl_path)

    print(f"\n  wrote {signals} signals to {vcd_path}")
    print(f"  wrote {perfetto_events} trace events "
          f"({len(events)} sim events) to {perfetto_path}")
    print(f"  wrote {capture_records} capture records to {jsonl_path}")

    with open(perfetto_path) as handle:
        trace = json.load(handle)
    spans = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
    if spans:
        longest = max(spans, key=lambda e: e["dur"])
        print(f"  longest packet lifetime: {longest['dur']:.3f} us "
              f"({longest['args']['source']} -> {longest['args']['sink']}, "
              f"{longest['args']['hops']} hops)")


if __name__ == "__main__":
    main()
