"""Video pixel-processing pipeline on a guaranteed-throughput connection.

The paper motivates chained point-to-point connections with video pixel
processing (Section 4.2).  This example streams video lines from a producer
to a line memory over a GT connection, checks that the measured throughput,
latency and jitter respect the analytic guarantees of Section 2, and shows
what happens to a best-effort connection sharing the same link.

Run with:  python examples/video_pipeline.py
"""

from repro.analysis.guarantees import GTGuarantees
from repro.analysis.verification import verify_latency, verify_throughput
from repro.ip.traffic import VideoLineTraffic
from repro.testbench import build_point_to_point


def main() -> None:
    pattern = VideoLineTraffic(pixels_per_line=48, burst_words=8,
                               cycles_per_burst=24, blanking_cycles=48)
    tb = build_point_to_point(gt=True, request_slots=3, response_slots=1,
                              queue_words=16, pattern=pattern,
                              max_transactions=240)

    warmup, window = 240, 1200
    slave_kernel = tb.system.kernel(tb.slave_ni)
    tb.run_flit_cycles(warmup)
    words_before = slave_kernel.stats.counter("words_received").value
    tb.run_flit_cycles(window)
    words_after = slave_kernel.stats.counter("words_received").value
    tb.run_until_done(max_flit_cycles=40000)

    slots = tb.slot_assignment[(tb.master_ni, 0)]
    hops = tb.noc.hop_count(tb.master_ni, tb.slave_ni)
    guarantees = GTGuarantees(slot_pattern=slots, num_slots=8, hops=hops,
                              packet_flits=3)

    print(f"GT connection: slots {slots} of 8, {hops} routers on the path")
    print(f"  guaranteed throughput : "
          f"{guarantees.throughput_gbit_s:.2f} Gbit/s")
    print(f"  latency bound         : {guarantees.latency_bound} flit cycles")
    print(f"  jitter bound          : {guarantees.jitter_bound} slots")

    offered = pattern.expected_words_per_cycle() * 3  # words per flit cycle
    delivered = (words_after - words_before) / window
    print(f"\nOffered load   : {offered:.3f} words/flit cycle")
    print(f"Delivered load : {delivered:.3f} words/flit cycle "
          f"(bound {guarantees.throughput_words_per_flit_cycle:.3f})")

    throughput_check = verify_throughput(
        guarantees, words_after - words_before, window,
        warmup_slack_words=32)
    recorder = slave_kernel.stats.latencies["packet_network_latency"]
    latency_report = verify_latency(guarantees, recorder.samples)
    print("\nGuarantee verification:")
    print(f"  throughput >= bound : "
          f"{'OK' if throughput_check.satisfied or delivered >= offered * 0.95 else 'VIOLATED'}")
    for row in latency_report.rows():
        status = "OK" if row["ok"] else "VIOLATED"
        print(f"  {row['check']:<32} measured={row['measured']:<6} "
              f"bound={row['bound']:<6} {status}")

    print(f"\nVideo lines delivered: {tb.memory.memory.writes} pixel words, "
          f"{len(tb.master.completed)} bursts")


if __name__ == "__main__":
    main()
