"""Video pixel-processing pipeline on a guaranteed-throughput connection.

The paper motivates chained point-to-point connections with video pixel
processing (Section 4.2).  This example declares the whole GT system in one
SystemBuilder chain, streams video lines from a producer to a line memory,
checks that the measured throughput, latency and jitter respect the analytic
guarantees of Section 2, and reads the reserved TDMA slots back off the
connection handle.

Run with:  python examples/video_pipeline.py
"""

from repro.analysis.guarantees import GTGuarantees
from repro.analysis.verification import verify_latency, verify_throughput
from repro.api import SystemBuilder
from repro.ip.traffic import VideoLineTraffic


def main() -> None:
    pattern = VideoLineTraffic(pixels_per_line=48, burst_words=8,
                               cycles_per_burst=24, blanking_cycles=48)
    system = (SystemBuilder("video_pipeline")
              .mesh(1, 2)
              .add_master("producer", router=(0, 0), pattern=pattern,
                          max_transactions=240, queue_words=16)
              .add_memory("line_mem", router=(0, 1), queue_words=16)
              .connect("producer", "line_mem", name="stream", gt=True,
                       request_slots=3, response_slots=1)
              .build())
    producer = system.master("producer")
    line_mem = system.memory("line_mem")

    warmup, window = 240, 1200
    slave_kernel = system.kernel(line_mem.ni)
    system.run_flit_cycles(warmup)
    words_before = slave_kernel.stats.counter("words_received").value
    system.run_flit_cycles(window)
    words_after = slave_kernel.stats.counter("words_received").value
    system.run_until_idle(max_flit_cycles=40000)

    stream = system.connection("stream")
    slots = stream.slot_assignment[(producer.ni, 0)]
    hops = system.noc.hop_count(producer.ni, line_mem.ni)
    guarantees = GTGuarantees(slot_pattern=slots, num_slots=8, hops=hops,
                              packet_flits=3)

    print(f"GT connection: slots {slots} of 8, {hops} routers on the path")
    print(f"  guaranteed throughput : "
          f"{guarantees.throughput_gbit_s:.2f} Gbit/s")
    print(f"  latency bound         : {guarantees.latency_bound} flit cycles")
    print(f"  jitter bound          : {guarantees.jitter_bound} slots")

    offered = pattern.expected_words_per_cycle() * 3  # words per flit cycle
    delivered = (words_after - words_before) / window
    print(f"\nOffered load   : {offered:.3f} words/flit cycle")
    print(f"Delivered load : {delivered:.3f} words/flit cycle "
          f"(bound {guarantees.throughput_words_per_flit_cycle:.3f})")

    throughput_check = verify_throughput(
        guarantees, words_after - words_before, window,
        warmup_slack_words=32)
    recorder = slave_kernel.stats.latencies["packet_network_latency"]
    latency_report = verify_latency(guarantees, recorder.samples)
    print("\nGuarantee verification:")
    print(f"  throughput >= bound : "
          f"{'OK' if throughput_check.satisfied or delivered >= offered * 0.95 else 'VIOLATED'}")
    for row in latency_report.rows():
        status = "OK" if row["ok"] else "VIOLATED"
        print(f"  {row['check']:<32} measured={row['measured']:<6} "
              f"bound={row['bound']:<6} {status}")

    print(f"\nVideo lines delivered: {line_mem.memory.writes} pixel words, "
          f"{len(producer.completed)} bursts")


if __name__ == "__main__":
    main()
