"""A DSP with one shared address space split over several memories.

The narrowcast connection (Figure 3) gives a master "a simple, low-cost
solution for a single shared address space mapped on multiple memories".
Here a DSP-like master scatters coefficient blocks across four memory tiles
declared through the SystemBuilder narrowcast form of ``connect`` — one
master, several slaves, one address range per tile — reads them back through
the same flat address space, and the example reports the per-tile traffic
split plus the silicon area of the NI instance that provides all of this
(Section 5 area model).

Run with:  python examples/multi_dsp_shared_memory.py
"""

from repro.api import SystemBuilder
from repro.design.area import AreaModel
from repro.design.spec import reference_ni_spec
from repro.protocol.transactions import Transaction


def main() -> None:
    num_tiles = 4
    tile_words = 512
    tile_bytes = tile_words * 4

    builder = (SystemBuilder("multi_dsp")
               .mesh(2, 2)
               .add_master("dsp", router=(0, 0)))
    tiles = [(r, c) for r in range(2) for c in range(2)]
    for index in range(num_tiles):
        builder.add_memory(f"tile{index}",
                           router=tiles[(index + 1) % len(tiles)],
                           words=tile_bytes)
    builder.connect("dsp", [f"tile{i}" for i in range(num_tiles)],
                    narrowcast_ranges=[(i * tile_bytes, tile_bytes)
                                       for i in range(num_tiles)])
    system = builder.build()

    # Scatter 16 coefficient blocks across the flat address space.
    dsp = system.master("dsp")
    blocks = {}
    for block in range(16):
        address = block * 128 * 4          # blocks land on alternating tiles
        data = [block * 100 + i for i in range(8)]
        blocks[address] = data
        dsp.issue(Transaction.write(address, data))
    # Read every block back.
    for address in blocks:
        dsp.issue(Transaction.read(address, length=8))
    system.run_until_idle(max_flit_cycles=80000)

    reads = [t for t in dsp.completed if t.is_read]
    correct = sum(t.response.read_data == blocks[t.address] for t in reads)
    print(f"Blocks written and read back correctly: {correct}/{len(blocks)}")
    print("Per-tile write traffic (words):",
          [system.memory(f"tile{i}").memory.writes for i in range(num_tiles)])
    print("Mean transaction latency:",
          f"{dsp.latency_summary()['mean']:.1f} port cycles")

    # What does the NI providing this cost in silicon?  (Section 5 model.)
    report = AreaModel().ni_area(reference_ni_spec())
    print("\nNI instance area (0.13 um technology):")
    for component, area, percent in report.rows():
        print(f"  {component:<22} {area:.3f} mm^2  ({percent:.0f}% of kernel)")


if __name__ == "__main__":
    main()
