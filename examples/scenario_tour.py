"""A tour of the scenario registry: ring, hotspot and seeded random systems.

Every scenario in :mod:`repro.api.scenarios` is a named, parameterized
system description shared by the tests, the examples and the perf suite.
This example builds the three workloads that go beyond the paper's classic
experiments, runs each until the engine is idle, and prints a compact
traffic report.

Run with:  python examples/scenario_tour.py
"""

from repro.api import scenarios


def report(name: str, system, cycles: int) -> None:
    masters = sorted(system.masters)
    completed = sum(len(system.master(m).completed) for m in masters)
    flits = system.noc.total_flits_forwarded()
    print(f"{name:>14}: {len(system.model.nis):>2} NIs, "
          f"{len(masters)} masters, {completed:>3} transactions, "
          f"{flits:>5} flits forwarded, idle after {cycles} flit cycles")
    for m in masters:
        latency = system.master(m).latency_summary()
        mean = latency["mean"]
        mean_str = f"{mean:6.1f}" if latency["count"] else "   n/a"
        print(f"                  {m}: {len(system.master(m).completed):>3} "
              f"done, mean latency {mean_str} port cycles")


def main() -> None:
    print("Registered scenarios:")
    for name, description, tags in scenarios.describe():
        print(f"  {name:<16} [{', '.join(tags)}] {description}")
    print()

    # A pipeline of master/memory pairs around an 8-router ring.
    ring = scenarios.build("ring", num_pairs=4, hops=3, gt=True, slots=2)
    cycles = ring.run_until_idle()
    report("ring", ring, cycles)

    # Four masters hammering one shared memory through a multi-connection
    # shell (Figure 4): the hotspot serializes at the slave NI.
    hotspot = scenarios.build("hotspot", num_masters=4)
    cycles = hotspot.run_until_idle()
    report("hotspot", hotspot, cycles)

    # A seeded random system: same seed, same system, same results.
    for seed in (7, 11):
        random_system = scenarios.build("random_system", seed=seed)
        cycles = random_system.run_until_idle(max_flit_cycles=100000)
        report(f"random(seed={seed})", random_system, cycles)


if __name__ == "__main__":
    main()
