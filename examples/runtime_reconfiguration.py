"""Run-time NoC reconfiguration over the NoC itself (Figures 8 and 9).

A centralized configuration module bootstraps its configuration connections
to the CNIPs of two data NIs, opens a guaranteed connection between them by
sending DTL-MMIO register writes over the network, uses the connection, then
closes it and opens a different one — the partial reconfiguration scenario of
Section 3.  The Figure 8 system comes from the ``config_system`` scenario of
the registry; the data endpoints are attached by hand, as an integrator
would.

Run with:  python examples/runtime_reconfiguration.py
"""

from repro.api import scenarios
from repro.config.connection import (
    ChannelEndpointRef,
    ChannelPairSpec,
    ConnectionSpec,
)
from repro.core.shells.master import MasterShell
from repro.core.shells.point_to_point import PointToPointShell
from repro.core.shells.slave import SlaveShell
from repro.ip.slave import MemorySlave
from repro.protocol.transactions import Transaction


def attach_data_endpoints(system):
    """Attach a master IP to ni1 and a memory slave to ni2 (data channel 0)."""
    master_conn = PointToPointShell("b_conn", system.kernel("ni1").port("data"),
                                    role="master", conn=0)
    master_shell = MasterShell("b_shell", master_conn)
    slave_conn = PointToPointShell("a_conn", system.kernel("ni2").port("data"),
                                   role="slave", conn=0)
    memory = MemorySlave("a_mem")
    slave_shell = SlaveShell("a_slave", slave_conn, memory)
    for component in (master_shell, master_conn):
        system.port_clock("ni1", "data").add_component(component)
    for component in (slave_conn, slave_shell, memory):
        system.port_clock("ni2", "data").add_component(component)
    return master_shell, memory


def main() -> None:
    system = scenarios.build("config_system", num_data_nis=2)
    cycles = system.run_until_idle(predicate=system.config_shell.is_idle)
    print("Step 1+2 (Figure 9): configuration connections bootstrapped")
    print(f"  register writes issued : {system.bootstrap_operations}")
    print(f"  completed after        : {cycles} flit cycles")

    master_shell, memory = attach_data_endpoints(system)

    spec = ConnectionSpec(
        name="b_to_a", kind="p2p",
        pairs=[ChannelPairSpec(master=ChannelEndpointRef("ni1", 1),
                               slave=ChannelEndpointRef("ni2", 1),
                               request_gt=True, request_slots=2,
                               response_gt=True, response_slots=1)])
    handle = system.config_manager.open_connection(spec)
    cycles = system.run_until_idle(predicate=system.config_shell.is_idle)
    print("\nStep 3+4 (Figure 9): GT connection B->A opened over the NoC")
    print(f"  register writes        : {handle.register_writes} "
          f"({handle.register_writes_per_ni})")
    print(f"  slots reserved         : {handle.slot_assignment}")
    print(f"  completed after        : {cycles} flit cycles")

    master_shell.submit(Transaction.write(0x20, [1, 2, 3, 4]))
    master_shell.submit(Transaction.read(0x20, length=4))
    system.run_flit_cycles(1500)
    completed = master_shell.poll_completed()
    print("\nTraffic over the new connection:")
    for txn in completed:
        extra = f" -> {txn.response.read_data}" if txn.is_read else ""
        print(f"  {txn.command.name} @0x{txn.address:x}{extra}")
    print(f"  memory now holds {memory.memory.read_burst(0x20, 4)}")

    close_handle = system.config_manager.close_connection(spec)
    system.run_until_idle(predicate=system.config_shell.is_idle)
    print("\nConnection closed again (partial reconfiguration):")
    print(f"  register writes        : {close_handle.register_writes}")
    kernel = system.kernel("ni1")
    print(f"  ni1 channel 1 enabled  : {kernel.channel(1).regs.enabled}")
    print(f"  ni1 GT slots in use    : {kernel.slot_table.slots_of(1)}")


if __name__ == "__main__":
    main()
