"""DRAM-backed shared memory: timing-accurate service behind the NI.

The ideal ``MemorySlave`` answers every transaction after one fixed latency;
the ``backend="dram"`` memory pays open-row, bank-conflict and refresh
timing through the banked controller in ``repro.mem``.  This example runs
the same bursty read/write mix (three streams interleaving rows of one DRAM
bank) under both request schedulers and shows why the scheduler matters:
in-order FCFS pays a row conflict on almost every access, open-page
FR-FCFS batches whatever row is open and finishes the same workload sooner.

Run with:  python examples/dram_memory.py
"""

from repro.api import scenarios
from repro.mem.timing import TIMING_PRESETS


def run(scheduler: str):
    system = scenarios.build("dram_scheduler_mix", scheduler=scheduler)
    cycles = system.run_until_idle(max_flit_cycles=200000)
    words = sum(handle.stats.counter("words_completed").value
                for handle in system.masters.values())
    return system, cycles, words


def main() -> None:
    print("Bursty read/write mix into one DRAM bank, both schedulers:\n")
    results = {}
    for scheduler in ("fcfs", "frfcfs"):
        system, cycles, words = run(scheduler)
        results[scheduler] = (cycles, words)
        dram = system.memory("dram").dram
        summary = dram.service_summary()
        latency = summary["service_latency"]
        print(f"  {scheduler:>7}: idle after {cycles:>4} flit cycles, "
              f"{words} words moved")
        print(f"           row hits {summary['row_hits']:>3}  "
              f"conflicts {summary['row_conflicts']:>3}  "
              f"hit rate {dram.row_hit_rate:.0%}")
        print(f"           service latency (controller cycles): "
              f"min {latency['min']}  mean {latency['mean']:.1f}  "
              f"max {latency['max']}\n")

    (fcfs_cycles, words), (frfcfs_cycles, _) = (results["fcfs"],
                                                results["frfcfs"])
    speedup = fcfs_cycles / frfcfs_cycles
    print(f"FR-FCFS moved the same {words} words "
          f"{speedup:.2f}x faster than in-order FCFS.")

    timing = TIMING_PRESETS["slow"]
    print(f"\nWorst-case single access (slow preset): "
          f"{timing.worst_case_access_cycles(4)} controller cycles; "
          f"behind a 4-deep queue, refresh included: "
          f"{timing.worst_case_service_cycles(4, queue_depth=4)} cycles — "
          "the term verify_end_to_end_latency() folds into the GT bound.")


if __name__ == "__main__":
    main()
