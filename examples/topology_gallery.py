"""The topology gallery: torus, tree and arbitrary-floorplan systems.

The paper offers guaranteed services over *arbitrary* topologies via source
routing.  This example walks the three topology-gallery scenarios — a torus
with wraparound links and deadlock-safe dimension-ordered routing, a tree
with a root hotspot, and the ~10-router irregular SoC floorplan built
through ``custom_topology`` — printing each system's shape, its
channel-dependency deadlock report, and the resulting traffic.  It closes
with the negative case: shortest-path routing on a ring is *not*
deadlock-free, and the analysis says exactly why.

Run with:  python examples/topology_gallery.py
"""

from repro.analysis.deadlock import analyze_strategy
from repro.api import scenarios
from repro.network.topology import Topology


def report(name: str, system, cycles: int) -> None:
    topo = system.noc.topology
    deadlock = system.deadlock_report
    completed = sum(len(handle.completed)
                    for handle in system.masters.values())
    print(f"{name:>15}: {topo.num_routers:>2} routers "
          f"({topo.name}), {system.noc.num_links} links, "
          f"{len(system.masters)} masters")
    print(f"{'':>17}deadlock check: {deadlock.describe()}")
    print(f"{'':>17}{completed} transactions, "
          f"{system.noc.total_flits_forwarded()} flits, "
          f"idle after {cycles} flit cycles")


def main() -> None:
    # 1. A 3x3 torus: every master streams to its +x neighbour; the edge
    #    columns ride the wraparound links in a single hop.
    torus = scenarios.build("torus_neighbor", rows=3, cols=3)
    report("torus_neighbor", torus, torus.run_until_idle())
    wrap = torus.noc.route("m0_2", "mem0_2")
    print(f"{'':>17}wrap route m0_2 -> mem0_2: {wrap} (one wraparound hop)")

    # 2. A binary tree, depth 2: four leaves into one root memory.  Tree
    #    routes are unique and acyclic, so the gate runs in error mode.
    tree = scenarios.build("tree_hotspot", arity=2, depth=2)
    report("tree_hotspot", tree, tree.run_until_idle())

    # 3. The paper's arbitrary-floorplan claim: a 10-router irregular SoC
    #    (host CPU, DSP cluster, video path, two memory controllers)
    #    declared through custom_topology with per-node attributes.
    soc = scenarios.build("irregular_soc")
    report("irregular_soc", soc, soc.run_until_idle())
    blocks = {node: soc.noc.topology.node_attrs(node).get("block", "?")
              for node in soc.noc.topology.routers}
    print(f"{'':>17}floorplan blocks: {blocks}")

    # 4. The negative case, before any system is built: shortest-path on a
    #    ring cannot be deadlock-free for all-pairs best-effort traffic.
    verdict = analyze_strategy(Topology.ring(5), "shortest")
    print(f"\n{'ring check':>15}: all-pairs shortest-path on a 5-ring -> "
          f"{'OK' if verdict.ok else 'CYCLE'}")
    print(f"{'':>17}{verdict.describe()}")


if __name__ == "__main__":
    main()
