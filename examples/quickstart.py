"""Quickstart: a master IP talking to a memory through the Aethereal NI.

The whole system — simulator, 1x2 mesh, two NIs, shells, master, memory and
an open best-effort connection — is declared in one fluent SystemBuilder
chain; the master is then driven by hand and the system runs until the
engine is idle.

Run with:  python examples/quickstart.py
"""

from repro.api import SystemBuilder
from repro.protocol.transactions import Transaction


def main() -> None:
    system = (SystemBuilder("quickstart")
              .mesh(1, 2)
              .add_master("cpu", router=(0, 0))
              .add_memory("mem", router=(0, 1))
              .connect("cpu", "mem")
              .build())

    cpu = system.master("cpu")
    cpu.issue(Transaction.write(0x100, [0xCAFE, 0xBEEF, 0x1234]))
    cpu.issue(Transaction.write(0x200, [7, 8], posted=True))
    cpu.issue(Transaction.read(0x100, length=3))

    cycles = system.run_until_idle()

    print(f"Transactions completed (idle after {cycles} flit cycles):")
    for txn in cpu.completed:
        result = ""
        if txn.is_read:
            result = f" -> {[hex(w) for w in txn.response.read_data]}"
        print(f"  {txn.command.name:<12} @0x{txn.address:04x} "
              f"burst={txn.burst_length} latency={txn.latency_cycles} "
              f"port cycles{result}")

    print("\nMemory contents at 0x100:",
          [hex(w) for w in system.memory("mem").memory.read_burst(0x100, 3)])

    print("\nNI kernel statistics (master side):")
    kernel_stats = system.kernel(cpu.ni).stats
    for name in ("be_packets_sent", "words_sent", "credits_received"):
        print(f"  {name:<20} {kernel_stats.counter(name).value}")


if __name__ == "__main__":
    main()
