"""Quickstart: a master IP talking to a memory through the Aethereal NI.

Builds the smallest useful system — one traffic-generating master, one memory
slave, two NIs on a 1x2 mesh — opens a best-effort connection, performs a few
shared-memory transactions and prints what happened.

Run with:  python examples/quickstart.py
"""

from repro.protocol.transactions import Transaction
from repro.testbench import build_point_to_point


def main() -> None:
    # One call assembles the simulator, the NoC, both NIs, the shells, the
    # master and the memory, and opens the (BE) connection.  No background
    # traffic pattern: we drive the master by hand.
    tb = build_point_to_point(max_transactions=0)

    # The master IP sees a shared-memory abstraction: plain reads and writes.
    tb.master.issue(Transaction.write(0x100, [0xCAFE, 0xBEEF, 0x1234]))
    tb.master.issue(Transaction.write(0x200, [7, 8], posted=True))
    tb.master.issue(Transaction.read(0x100, length=3))

    tb.run_until_done()

    print("Transactions completed:")
    for txn in tb.master.completed:
        result = ""
        if txn.is_read:
            result = f" -> {[hex(w) for w in txn.response.read_data]}"
        print(f"  {txn.command.name:<12} @0x{txn.address:04x} "
              f"burst={txn.burst_length} latency={txn.latency_cycles} "
              f"port cycles{result}")

    print("\nMemory contents at 0x100:",
          [hex(w) for w in tb.memory.memory.read_burst(0x100, 3)])

    master_kernel = tb.system.kernel(tb.master_ni).stats
    print("\nNI kernel statistics (master side):")
    for name in ("be_packets_sent", "words_sent", "credits_received"):
        print(f"  {name:<20} {master_kernel.counter(name).value}")


if __name__ == "__main__":
    main()
