"""Custom hardware FIFO model.

The prototype NI uses "area-efficient custom-made hardware fifos" instead of
RAMs because every port needs simultaneous access and may run at its own
clock frequency; the FIFOs also implement the clock-domain boundary
(Section 5).  The model captures the two properties that matter for cycle
behaviour:

* bounded capacity in 32-bit words;
* a synchronization delay: a word pushed by the writer becomes visible to the
  reader only after the clock-domain-crossing delay (2 cycles of the reader's
  clock in the prototype).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from repro.sim.engine import Simulator


class QueueError(RuntimeError):
    """Raised on FIFO misuse (overflow, popping an empty or unsynced word)."""


class HardwareFifo:
    """A bounded word FIFO with a clock-domain-crossing delay."""

    def __init__(self, capacity_words: int, sim: Optional[Simulator] = None,
                 cdc_delay_ps: int = 0, name: str = "fifo") -> None:
        if capacity_words <= 0:
            raise QueueError(f"fifo {name}: capacity must be positive")
        if cdc_delay_ps < 0:
            raise QueueError(f"fifo {name}: negative CDC delay")
        self.name = name
        self.capacity = capacity_words
        self.sim = sim
        self.cdc_delay_ps = cdc_delay_ps
        self._items: Deque[Tuple[int, int]] = deque()  # (visible_at_ps, word)
        # Incremental synchronization cache: ``_sync_count`` items (a prefix
        # of ``_items``) were known visible at time ``_sync_time``.  Push
        # times are monotone, so visibility times are too, and the count
        # only needs to advance — ``fill`` is O(1) amortized instead of a
        # scan over the queue per call (it is called on every scheduler and
        # shell hot path).
        self._sync_count = 0
        self._sync_time = -1
        # Arrival cursor: ``_arr_count`` items were *written by the producer*
        # (visible_at - cdc_delay <= now).  Differs from the raw queue length
        # only while a batched burst deposit (:meth:`push_run`) holds
        # forward-dated words; register reads (status word, flush snapshots)
        # use :attr:`arrived_fill` so batching stays observably identical.
        self._arr_count = 0
        self._arr_time = -1
        self.total_pushed = 0
        self.total_popped = 0
        self.max_fill_seen = 0
        #: Called after every push; the activity-driven engine hangs clock
        #: wake-ups here so writing into a FIFO revives its reader even when
        #: the write bypasses the port API (tests poke queues directly).
        self.on_push: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------------ time
    def _now(self) -> int:
        return self.sim.now if self.sim is not None else 0

    # --------------------------------------------------------------- writing
    @property
    def total_fill(self) -> int:
        """All words in the FIFO, including those still crossing clock domains."""
        return len(self._items)

    @property
    def space(self) -> int:
        return self.capacity - len(self._items)

    def can_push(self, count: int = 1) -> bool:
        return len(self._items) + count <= self.capacity

    def push(self, word: int) -> None:
        if not self.can_push():
            raise QueueError(f"fifo {self.name}: overflow (capacity {self.capacity})")
        now = self._now()
        visible_at = now + self.cdc_delay_ps
        self._items.append((visible_at, int(word)))
        if visible_at <= now:
            # No CDC delay: the new word (and thus, by monotonicity, the
            # whole queue) is immediately visible to the reader.
            self._sync_count = len(self._items)
            self._sync_time = now
        # The word is being written *now*, and producer write times are
        # monotone, so the whole queue has arrived.
        self._arr_count = len(self._items)
        self._arr_time = now
        self.total_pushed += 1
        if len(self._items) > self.max_fill_seen:
            self.max_fill_seen = len(self._items)
        if self.on_push is not None:
            self.on_push()

    def push_many(self, words: List[int]) -> None:
        if not self.can_push(len(words)):
            raise QueueError(
                f"fifo {self.name}: cannot push {len(words)} words "
                f"({self.space} free)")
        for word in words:
            self.push(word)

    def push_run(self, pairs: List[Tuple[int, int]]) -> None:
        """Deposit a run of ``(visible_at_ps, word)`` pairs in one call.

        The batched NI receive path uses this to deliver a whole flit
        burst's words with their exact per-flit visibility times (each
        flit's arrival edge plus the CDC delay), so readers observe the
        same word stream as the per-flit pipeline.  Visibility times must
        be monotone and no earlier than any word already queued — true by
        construction, since bursts deposit on head arrival and the next
        packet cannot arrive before this one's tail.  Fires ``on_push``
        once for the whole run.
        """
        count = len(pairs)
        items = self._items
        if len(items) + count > self.capacity:
            raise QueueError(
                f"fifo {self.name}: cannot push {count} words "
                f"({self.space} free)")
        items.extend(pairs)
        self.total_pushed += count
        if len(items) > self.max_fill_seen:
            self.max_fill_seen = len(items)
        if self.on_push is not None:
            self.on_push()

    # --------------------------------------------------------------- reading
    @property
    def fill(self) -> int:
        """Words visible to the reader (synchronized across the clock boundary)."""
        now = self._now()
        count = self._sync_count
        if now != self._sync_time:
            items = self._items
            total = len(items)
            while count < total and items[count][0] <= now:
                count += 1
            self._sync_count = count
            self._sync_time = now
        return count

    @property
    def arrived_fill(self) -> int:
        """Words the producer has physically written by now.

        Equals :attr:`total_fill` except while a batched burst deposit
        holds forward-dated words; exact-semantics readers (status word,
        flush snapshots) use this so batched and per-flit runs agree at
        every observation point.
        """
        now = self._now()
        count = self._arr_count
        if now != self._arr_time:
            items = self._items
            total = len(items)
            limit = now + self.cdc_delay_ps
            while count < total and items[count][0] <= limit:
                count += 1
            self._arr_count = count
            self._arr_time = now
        return count

    def can_pop(self, count: int = 1) -> bool:
        return self.fill >= count

    def peek(self) -> int:
        if not self.can_pop():
            raise QueueError(f"fifo {self.name}: peek on empty/unsynchronized fifo")
        return self._items[0][1]

    def peek_many(self, count: int) -> List[int]:
        available = min(count, self.fill)
        return [self._items[i][1] for i in range(available)]

    def pop(self) -> int:
        if not self.can_pop():
            raise QueueError(f"fifo {self.name}: pop on empty/unsynchronized fifo")
        _, word = self._items.popleft()
        # can_pop just synchronized the cache at the current time, so the
        # popped word was counted (visible implies arrived).
        self._sync_count -= 1
        if self._arr_count:
            self._arr_count -= 1
        self.total_popped += 1
        return word

    def pop_many(self, count: int) -> List[int]:
        """Pop up to ``count`` visible words (may return fewer).

        Slice-style drain: one fill synchronization, then a straight run of
        popleft calls with the cursors adjusted once (the batched packet
        formation path drains whole payloads this way).
        """
        available = min(count, self.fill)
        if not available:
            return []
        popleft = self._items.popleft
        out = [popleft()[1] for _ in range(available)]
        self._sync_count -= available
        self._arr_count = max(0, self._arr_count - available)
        self.total_popped += available
        return out

    def clear(self) -> None:
        self._items.clear()
        self._sync_count = 0
        self._sync_time = -1
        self._arr_count = 0
        self._arr_time = -1

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"HardwareFifo({self.name}, fill={self.fill}/{self.capacity}, "
                f"in-flight={self.total_fill - self.fill})")
