"""The Aethereal network interface (the paper's primary contribution).

The NI is split exactly as in Figure 1 of the paper:

* the **kernel** (:mod:`repro.core.kernel`) implements the channels, message
  queues (custom hardware FIFOs that also cross clock domains), packetization
  and depacketization, the GT/BE scheduler, end-to-end flow control with
  credit piggybacking, and the memory-mapped configuration register file;
* the **shells** (:mod:`repro.core.shells`) add connection types (narrowcast,
  multicast, multi-connection), master/slave protocol adapters (simplified
  DTL and AXI) and the configuration shell, and can be plugged in or left out
  at design time.
"""

from repro.core.channel import Channel, ChannelRegisters, FlowControlError
from repro.core.kernel import NIKernel
from repro.core.ni import NetworkInterface
from repro.core.port import NIPort
from repro.core.queues import HardwareFifo, QueueError
from repro.core.registers import (
    CHANNEL_REG_STRIDE,
    REG_CREDIT_THRESHOLD,
    REG_CTRL,
    REG_DATA_THRESHOLD,
    REG_FLUSH,
    REG_PATH,
    REG_REMOTE_QID,
    REG_SPACE,
    REG_STATUS,
    SLOT_TABLE_BASE,
    RegisterError,
    decode_path,
    encode_path,
)
from repro.core.scheduler import (
    QueueFillArbiter,
    RoundRobinArbiter,
    WeightedRoundRobinArbiter,
    make_arbiter,
)

__all__ = [
    "CHANNEL_REG_STRIDE",
    "Channel",
    "ChannelRegisters",
    "FlowControlError",
    "HardwareFifo",
    "NIKernel",
    "NIPort",
    "NetworkInterface",
    "QueueError",
    "QueueFillArbiter",
    "REG_CREDIT_THRESHOLD",
    "REG_CTRL",
    "REG_DATA_THRESHOLD",
    "REG_FLUSH",
    "REG_PATH",
    "REG_REMOTE_QID",
    "REG_SPACE",
    "REG_STATUS",
    "RegisterError",
    "RoundRobinArbiter",
    "SLOT_TABLE_BASE",
    "WeightedRoundRobinArbiter",
    "decode_path",
    "encode_path",
    "make_arbiter",
]
