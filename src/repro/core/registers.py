"""Memory-mapped register layout of the NI kernel.

Every NI exposes its control registers through a configuration port (CNIP)
offering "a memory-mapped view on all control registers in the NIs"
(Section 4.3).  The layout below gives each channel a block of eight
word-addressed registers, followed by the NI slot table and a read-only
information block.  The paper reports 5 registers written at the master NI
and 3 at the slave NI per channel; the concrete writes generated for a
connection are produced by :mod:`repro.config.connection` and counted in
experiment E7.
"""

from __future__ import annotations

from typing import Sequence, Tuple

#: Register offsets within a channel block.
REG_CTRL = 0              #: bit0 = enable, bit1 = guaranteed throughput
REG_PATH = 1              #: encoded source route (see :func:`encode_path`)
REG_REMOTE_QID = 2        #: destination queue index at the remote NI
REG_SPACE = 3             #: credit counter (initialised to the remote queue size)
REG_DATA_THRESHOLD = 4    #: minimum sendable words before scheduling (Section 4.1)
REG_CREDIT_THRESHOLD = 5  #: minimum credits before an empty credit packet is sent
REG_FLUSH = 6             #: write 1 to temporarily override the thresholds
REG_STATUS = 7            #: read-only: source fill in [31:16], dest fill in [15:0]

#: Words reserved per channel in the register map.
CHANNEL_REG_STRIDE = 8

#: Base address of the NI slot table: address SLOT_TABLE_BASE + s holds the
#: owner of slot s, encoded as channel index + 1 (0 means the slot is free).
SLOT_TABLE_BASE = 0x1000

#: Base address of the read-only NI information block.
NI_INFO_BASE = 0x2000
INFO_NUM_CHANNELS = 0
INFO_NUM_SLOTS = 1
INFO_NUM_PORTS = 2

#: Control register bits.
CTRL_ENABLE = 0x1
CTRL_GT = 0x2

#: Path encoding limits: 4 bits per hop, up to 7 hops per register word.
PATH_MAX_HOPS = 7
PATH_MAX_PORT = 15


class RegisterError(ValueError):
    """Raised on out-of-range register accesses or encodings."""


def channel_register_address(channel_index: int, register: int) -> int:
    """Address of ``register`` of channel ``channel_index``."""
    if channel_index < 0:
        raise RegisterError(f"negative channel index {channel_index}")
    if not 0 <= register < CHANNEL_REG_STRIDE:
        raise RegisterError(f"register offset {register} out of range")
    return channel_index * CHANNEL_REG_STRIDE + register


def slot_register_address(slot: int) -> int:
    if slot < 0:
        raise RegisterError(f"negative slot {slot}")
    return SLOT_TABLE_BASE + slot


def encode_path(path: Sequence[int]) -> int:
    """Pack a source route into one 32-bit register word.

    The top nibble holds the hop count; each following nibble holds one output
    port.  Routes longer than 7 hops do not fit (the paper targets NoCs of
    around 10 routers, whose diameter stays well below this).
    """
    path = list(path)
    if len(path) > PATH_MAX_HOPS:
        raise RegisterError(
            f"path of {len(path)} hops does not fit the path register "
            f"(max {PATH_MAX_HOPS})")
    word = (len(path) & 0xF) << 28
    for hop, port in enumerate(path):
        if not 0 <= port <= PATH_MAX_PORT:
            raise RegisterError(f"output port {port} does not fit in 4 bits")
        word |= (port & 0xF) << (24 - 4 * hop)
    return word


def decode_path(word: int) -> Tuple[int, ...]:
    """Inverse of :func:`encode_path`."""
    length = (word >> 28) & 0xF
    if length > PATH_MAX_HOPS:
        raise RegisterError(f"encoded path length {length} out of range")
    return tuple((word >> (24 - 4 * hop)) & 0xF for hop in range(length))


def encode_ctrl(enabled: bool, gt: bool) -> int:
    return (CTRL_ENABLE if enabled else 0) | (CTRL_GT if gt else 0)


def decode_ctrl(word: int) -> Tuple[bool, bool]:
    return bool(word & CTRL_ENABLE), bool(word & CTRL_GT)
