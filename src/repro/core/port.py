"""NI kernel ports.

"The NI kernel communicates with the NI shells via ports.  At each port,
point-to-point connections can be configured, their maximum number being
selected at NI instantiation time.  A port can have multiple connections to
allow differentiated traffic classes, in which case there are also connid
signals to select on which connection a message is supplied or consumed."
(Section 4.1)

An :class:`NIPort` exposes a word-level view of the channels it groups: the
shells push message words into the source queues and pop message words from
the destination queues.  Popping a word is the moment the IP consumes data,
so it produces a credit to be returned to the producer (end-to-end flow
control).

Wake-up protocol: every mutation reachable through this port revives the
kernel's (activity-driven) clock automatically — pushes via the source
queue's ``on_push`` hook, pops via :meth:`~repro.core.channel.Channel.add_credit`,
flushes via :meth:`~repro.core.channel.Channel.request_flush` — so shell
authors never call :meth:`Clock.wake` themselves.  See PERFORMANCE.md.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.core.queues import QueueError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.core.channel import Channel
    from repro.core.kernel import NIKernel


class NIPort:
    """A kernel port grouping one or more connections (channels)."""

    def __init__(self, kernel: "NIKernel", name: str,
                 channel_indices: List[int]) -> None:
        if not channel_indices:
            raise ValueError(f"port {name}: needs at least one channel")
        self.kernel = kernel
        self.name = name
        self.channel_indices = list(channel_indices)

    # --------------------------------------------------------------- lookup
    @property
    def num_connections(self) -> int:
        return len(self.channel_indices)

    def channel_index(self, conn: int) -> int:
        """Global channel index of local connection id ``conn``."""
        if not 0 <= conn < len(self.channel_indices):
            raise ValueError(
                f"port {self.name}: connection id {conn} out of range "
                f"(has {len(self.channel_indices)})")
        return self.channel_indices[conn]

    def channel(self, conn: int) -> "Channel":
        return self.kernel.channel(self.channel_index(conn))

    # ----------------------------------------------------------- source side
    def can_push(self, conn: int, count: int = 1) -> bool:
        return self.channel(conn).source_queue.can_push(count)

    def push(self, conn: int, word: int) -> None:
        channel = self.channel(conn)
        if not channel.source_queue.can_push():
            raise QueueError(
                f"port {self.name}: source queue of connection {conn} is full")
        channel.source_queue.push(word)

    def source_space(self, conn: int) -> int:
        return self.channel(conn).source_queue.space

    def flush(self, conn: int) -> None:
        """Raise the flush signal for a connection (Section 4.1)."""
        self.channel(conn).request_flush()

    # ------------------------------------------------------ destination side
    def can_pop(self, conn: int, count: int = 1) -> bool:
        return self.channel(conn).dest_queue.can_pop(count)

    def dest_fill(self, conn: int) -> int:
        return self.channel(conn).dest_queue.fill

    def peek(self, conn: int) -> int:
        return self.channel(conn).dest_queue.peek()

    def pop(self, conn: int) -> int:
        """Consume one word; this frees destination buffer space, so a credit
        is produced for the remote producer."""
        channel = self.channel(conn)
        word = channel.dest_queue.pop()
        channel.add_credit(1)
        return word

    def pop_many(self, conn: int, count: int) -> List[int]:
        channel = self.channel(conn)
        words = channel.dest_queue.pop_many(count)
        if words:
            channel.add_credit(len(words))
        return words

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"NIPort({self.name}, connections={self.num_connections}, "
                f"channels={self.channel_indices})")
