"""A connection endpoint channel inside the NI kernel.

"In the NI kernel, there are two message queues for each point-to-point
connection (one source queue, for messages going to the NoC, and one
destination queue, for messages coming from the NoC)" (Section 4.1).  A
:class:`Channel` bundles those two queues together with the per-channel
state the kernel needs:

* the configuration registers (enable, GT/BE, source route, remote queue id,
  thresholds);
* the ``space`` counter tracking free words in the remote destination queue
  (end-to-end flow control);
* the ``credit`` counter accumulating credits to return as the local IP
  consumes words from the destination queue;
* flush state used to override the scheduling thresholds.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional, Tuple

from repro.core.queues import HardwareFifo
from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry


class FlowControlError(RuntimeError):
    """End-to-end flow control was violated (destination queue overflow)."""


@dataclass
class ChannelRegisters:
    """The run-time configurable registers of one channel (Section 4.1)."""

    enabled: bool = False
    gt: bool = False
    path: Tuple[int, ...] = ()
    remote_qid: int = 0
    data_threshold: int = 1
    credit_threshold: int = 1


class Channel:
    """One connection endpoint at an NI: a source queue, a destination queue
    and the associated flow-control counters."""

    def __init__(self, index: int, name: str,
                 source_queue_words: int = 8,
                 dest_queue_words: int = 8,
                 sim: Optional[Simulator] = None,
                 source_cdc_delay_ps: int = 0,
                 dest_cdc_delay_ps: int = 0) -> None:
        self.index = index
        self.name = name
        self.regs = ChannelRegisters()
        self.source_queue = HardwareFifo(source_queue_words, sim=sim,
                                         cdc_delay_ps=source_cdc_delay_ps,
                                         name=f"{name}.src")
        self.dest_queue = HardwareFifo(dest_queue_words, sim=sim,
                                       cdc_delay_ps=dest_cdc_delay_ps,
                                       name=f"{name}.dst")
        #: Remaining space (in words) in the remote destination queue.
        self.space = 0
        #: Credits to return to the remote producer (words consumed locally).
        self.credit = 0
        self.flush_pending = False
        self._flush_words_remaining = 0
        self.stats = StatsRegistry()
        #: Hot-path counters, cached as attributes so the kernel bumps them
        #: without a string-keyed registry lookup per packet (they remain
        #: reachable through ``stats`` under the same names).
        self._ctr_words_sent = self.stats.counter("words_sent")
        self._ctr_packets_sent = self.stats.counter("packets_sent")
        self._ctr_credits_sent = self.stats.counter("credits_sent")
        self._ctr_words_received = self.stats.counter("words_received")
        #: Corrupt word ranges in the destination stream (repro.faults):
        #: ``[start, end)`` intervals in cumulative deposit order.  Empty —
        #: and completely free — on healthy channels.
        self.poison_intervals: Deque[List[int]] = deque()
        self._rx_popped = 0  # pop cursor; (re)based when poison appears
        #: Wake hook toward the kernel (transmit side): fires on any stimulus
        #: that could make this channel schedulable (source words, credits,
        #: space, flush).  Set by :meth:`NIKernel.add_channel`.
        self._tx_wake: Optional[Callable[[], None]] = None
        #: Wake hooks toward the IP-side reader (receive side): fire when the
        #: kernel deposits words in the destination queue.  Registered by the
        #: connection shell reading this channel.
        self._rx_listeners: List[Callable[[], None]] = []
        self.source_queue.on_push = self._notify_tx
        self.dest_queue.on_push = self.notify_rx

    # ------------------------------------------------------------ wake hooks
    def set_tx_wake(self, callback: Callable[[], None]) -> None:
        """Install the transmit-side wake hook (called by the owning kernel)."""
        self._tx_wake = callback
        # Skip the _notify_tx indirection on the per-word push path.
        self.source_queue.on_push = callback

    def add_rx_listener(self, callback: Callable[[], None]) -> None:
        """Register a receive-side wake hook (called by the reading shell)."""
        self._rx_listeners.append(callback)
        # One listener is the overwhelmingly common case: bind it directly.
        self.dest_queue.on_push = (callback if len(self._rx_listeners) == 1
                                   else self.notify_rx)

    def _notify_tx(self) -> None:
        callback = self._tx_wake
        if callback is not None:
            callback()

    def notify_rx(self) -> None:
        for callback in self._rx_listeners:
            callback()

    # -------------------------------------------------------------- counters
    @property
    def sendable(self) -> int:
        """Words that may be transmitted now: min(queue filling, space).

        "Note that at most Space data items can be transmitted before credits
        are received.  We call the minimum between the data items in the queue
        and the value in the counter Space, the sendable data." (Section 4.1)
        """
        return min(self.source_queue.fill, self.space)

    def add_space(self, credits: int) -> None:
        """Credits received from the remote consumer increase ``space``."""
        if credits < 0:
            raise FlowControlError(f"channel {self.name}: negative credits")
        self.space += credits
        self._notify_tx()

    def consume_space(self, words: int) -> None:
        if words > self.space:
            raise FlowControlError(
                f"channel {self.name}: sending {words} words with only "
                f"{self.space} space credits")
        self.space -= words

    def add_credit(self, words: int = 1) -> None:
        """The local IP consumed words from the destination queue."""
        self.credit += words
        self._notify_tx()

    def take_credits(self, maximum: int) -> int:
        """Remove up to ``maximum`` credits for piggybacking in a header."""
        taken = min(self.credit, maximum)
        self.credit -= taken
        return taken

    # ---------------------------------------------------------------- poison
    def note_poisoned_words(self, words: int) -> None:
        """Mark the last ``words`` words deposited into the destination
        queue as corrupt (the flit that carried them crossed a faulty link
        — see the fault model note in :mod:`repro.network.link`).

        The queue is FIFO, so cumulative deposit indices equal cumulative
        pop indices; intervals are recorded in that shared coordinate and
        consumed in order by :meth:`rx_word_poisoned`, which the reading
        connection shell calls per popped word while poison is pending.
        """
        if words <= 0:
            return
        end = self._ctr_words_received.value
        start = end - words
        intervals = self.poison_intervals
        if not intervals:
            # (Re)base the pop cursor: everything deposited but not yet
            # popped is still in (or crossing into) the destination queue.
            self._rx_popped = end - self.dest_queue.total_fill
            intervals.append([start, end])
        elif intervals[-1][1] == start:
            intervals[-1][1] = end
        else:
            intervals.append([start, end])

    def rx_word_poisoned(self) -> bool:
        """Advance the pop cursor one word; True when that word is corrupt.

        Only meaningful while :attr:`poison_intervals` is non-empty — the
        shell guards on that, so healthy channels never pay for this.
        """
        index = self._rx_popped
        self._rx_popped = index + 1
        intervals = self.poison_intervals
        if not intervals:
            return False
        start, end = intervals[0]
        if index < start:
            return False
        if index >= end - 1:
            intervals.popleft()
        return True

    # ----------------------------------------------------------------- flush
    def request_flush(self) -> None:
        """Override the thresholds until the currently queued words are sent.

        "When the flush signal is high for a cycle, a snapshot of its source
        queue filling is taken, and as long as all the words in the queue at
        the time of flushing have not been sent, the threshold for that queue
        is bypassed." (Section 4.1)
        """
        self.flush_pending = True
        self._flush_words_remaining = self.source_queue.total_fill
        self._notify_tx()

    def note_words_sent(self, words: int) -> None:
        if not self.flush_pending:
            return
        self._flush_words_remaining -= words
        if self._flush_words_remaining <= 0:
            self.flush_pending = False
            self._flush_words_remaining = 0

    # ------------------------------------------------------------ scheduling
    def eligible(self) -> bool:
        """True when the scheduler may select this channel (Section 4.1)."""
        if not self.regs.enabled:
            return False
        sendable = self.sendable
        credits = self.credit
        if sendable <= 0 and credits <= 0:
            return False
        if self.flush_pending:
            return True
        if sendable > 0 and sendable >= self.regs.data_threshold:
            return True
        if credits > 0 and credits >= self.regs.credit_threshold:
            return True
        return False

    def potentially_active(self) -> bool:
        """Conservative transmit-side activity predicate for idle-skip.

        Mirrors :meth:`eligible` but counts *all* queued source words
        (``total_fill``, including words still crossing the clock-domain
        boundary): a word that is queued but not yet synchronized will become
        sendable purely through the passage of time, without any further
        stimulus, so the kernel must keep ticking to observe it.  Must be
        True whenever :meth:`eligible` is, or could become, True without a
        new wake-triggering stimulus.
        """
        if not self.regs.enabled:
            return False
        potential = self.source_queue.total_fill
        if self.space < potential:
            potential = self.space
        credits = self.credit
        if potential <= 0 and credits <= 0:
            return False
        if self.flush_pending:
            return True
        if potential > 0 and potential >= self.regs.data_threshold:
            return True
        if credits > 0 and credits >= self.regs.credit_threshold:
            return True
        return False

    # --------------------------------------------------------------- helpers
    @property
    def status_word(self) -> int:
        """REG_STATUS value: source fill in the top half, dest fill in the bottom.

        The destination half reads :attr:`HardwareFifo.arrived_fill` — the
        words physically delivered by now — so a batched burst deposit
        (which dates each word with its per-flit arrival time) is invisible
        to software polling this register: batched and per-flit runs return
        identical values at every read point.
        """
        return ((self.source_queue.total_fill & 0xFFFF) << 16 |
                (self.dest_queue.arrived_fill & 0xFFFF))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        kind = "GT" if self.regs.gt else "BE"
        state = "on" if self.regs.enabled else "off"
        return (f"Channel({self.name}, {kind}, {state}, "
                f"src={self.source_queue.total_fill}, "
                f"dst={self.dest_queue.total_fill}, "
                f"space={self.space}, credit={self.credit})")
