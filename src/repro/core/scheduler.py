"""Best-effort channel arbiters.

When the current TDM slot is not used by a guaranteed-throughput channel,
"the scheduler selects a BE channel with data and remote space using some
arbitration scheme: e.g. round-robin, weighted round-robin, or based on the
queue filling" (Section 4.1).  All three schemes are provided; the kernel is
configured with one of them at instantiation time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.channel import Channel


class Arbiter:
    """Interface: pick one of the eligible channel indices."""

    name = "arbiter"

    def select(self, eligible: Sequence[int],
               channels: Sequence[Channel]) -> Optional[int]:
        raise NotImplementedError


class RoundRobinArbiter(Arbiter):
    """Plain round-robin over channel indices."""

    name = "round_robin"

    def __init__(self) -> None:
        self._last_granted = -1

    def select(self, eligible: Sequence[int],
               channels: Sequence[Channel]) -> Optional[int]:
        if not eligible:
            return None
        # Single pass, no sort/copy: grant the lowest index above the last
        # grant, wrapping to the lowest index overall.  Called once per BE
        # flit cycle, so this runs on the kernel's hot path.
        last = self._last_granted
        lowest = None
        lowest_above = None
        for candidate in eligible:
            if lowest is None or candidate < lowest:
                lowest = candidate
            if candidate > last and (lowest_above is None
                                     or candidate < lowest_above):
                lowest_above = candidate
        choice = lowest_above if lowest_above is not None else lowest
        self._last_granted = choice
        return choice


class WeightedRoundRobinArbiter(Arbiter):
    """Round-robin where each channel receives ``weight`` consecutive grants."""

    name = "weighted_round_robin"

    def __init__(self, weights: Optional[Dict[int, int]] = None,
                 default_weight: int = 1) -> None:
        if default_weight <= 0:
            raise ValueError("default weight must be positive")
        self.weights = dict(weights or {})
        self.default_weight = default_weight
        self._current: Optional[int] = None
        self._grants_left = 0
        self._rr = RoundRobinArbiter()

    def weight_of(self, channel_index: int) -> int:
        weight = self.weights.get(channel_index, self.default_weight)
        return max(1, weight)

    def select(self, eligible: Sequence[int],
               channels: Sequence[Channel]) -> Optional[int]:
        if not eligible:
            self._current = None
            self._grants_left = 0
            return None
        if (self._current in eligible) and self._grants_left > 0:
            self._grants_left -= 1
            return self._current
        choice = self._rr.select(eligible, channels)
        self._current = choice
        self._grants_left = self.weight_of(choice) - 1 if choice is not None else 0
        return choice


class QueueFillArbiter(Arbiter):
    """Grant the channel with the most sendable data (ties: lowest index)."""

    name = "queue_fill"

    def select(self, eligible: Sequence[int],
               channels: Sequence[Channel]) -> Optional[int]:
        if not eligible:
            return None
        best: Optional[int] = None
        best_fill = -1
        for index in eligible:
            channel = channels[index]
            fill = max(channel.sendable, min(channel.credit, 1))
            if fill > best_fill or (fill == best_fill and index < best):
                best_fill = fill
                best = index
        return best


_ARBITERS = {
    "round_robin": RoundRobinArbiter,
    "weighted_round_robin": WeightedRoundRobinArbiter,
    "queue_fill": QueueFillArbiter,
}


def make_arbiter(name: str, **kwargs) -> Arbiter:
    """Create an arbiter by name (``round_robin``, ``weighted_round_robin``,
    ``queue_fill``)."""
    try:
        factory = _ARBITERS[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown arbiter {name!r}; choose from {sorted(_ARBITERS)}") from exc
    return factory(**kwargs)


def available_arbiters() -> List[str]:
    return sorted(_ARBITERS)
