"""Configuration shell and configuration slave port (CNIP), Figure 8.

Every NI exposes a configuration port (CNIP) that gives "a memory-mapped view
on all control registers in the NIs"; registers are read and written with
normal DTL-MMIO transactions.  Configuration travels over the NoC itself:
the configuration module's NI carries a *configuration shell* which, based on
the address, either configures the local NI directly or sends configuration
messages via the NoC to the CNIPs of remote NIs.

Two classes implement this:

* :class:`ConfigurationSlave` — the slave IP behind a CNIP: it executes MMIO
  transactions against its NI kernel's register file.
* :class:`ConfigShell` — the shell at the configuration module: it accepts a
  stream of :class:`ConfigOperation` register accesses, performs local ones
  directly (optimizing away the extra data port, as the paper notes) and
  ships remote ones as MMIO request messages on per-NI connections.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.core.kernel import NIKernel
from repro.core.registers import RegisterError
from repro.core.shells.base import ConnectionShell, ShellError
from repro.protocol.messages import FLAG_POSTED, RequestMessage, ResponseMessage
from repro.protocol.transactions import (
    Command,
    ResponseError,
    Transaction,
    TransactionResponse,
)
from repro.sim.clock import ClockedComponent
from repro.sim.stats import StatsRegistry
from repro.sim.trace import NULL_TRACER, Tracer


class ConfigurationSlave:
    """The slave IP module behind a CNIP: the NI's own register file.

    Implements the :class:`repro.ip.slave.SlaveIP` interface (``enqueue`` /
    ``pop_response``) so it can sit behind a normal slave shell.
    """

    def __init__(self, kernel: NIKernel, name: Optional[str] = None) -> None:
        self.kernel = kernel
        self.name = name if name else f"{kernel.name}.cnip"
        self._responses: Deque[Tuple[Transaction, TransactionResponse]] = deque()
        self.stats = StatsRegistry()

    def enqueue(self, transaction: Transaction) -> None:
        response = self.execute(transaction)
        self._responses.append((transaction, response))

    def pop_response(self) -> Optional[Tuple[Transaction, TransactionResponse]]:
        if self._responses:
            return self._responses.popleft()
        return None

    def idle(self) -> bool:
        return not self._responses

    def execute(self, transaction: Transaction) -> TransactionResponse:
        """Execute one MMIO transaction against the kernel register file."""
        try:
            if transaction.is_read:
                data = [self.kernel.read_register(transaction.address + i)
                        for i in range(transaction.read_length)]
                self.stats.counter("register_reads").increment(len(data))
                return TransactionResponse(error=ResponseError.OK, read_data=data)
            for offset, word in enumerate(transaction.write_data):
                self.kernel.write_register(transaction.address + offset, word)
            self.stats.counter("register_writes").increment(
                len(transaction.write_data))
            return TransactionResponse(error=ResponseError.OK)
        except RegisterError:
            self.stats.counter("register_errors").increment()
            return TransactionResponse(error=ResponseError.DECODE_ERROR)


class ConfigOperation:
    """One register access issued by the configuration module."""

    def __init__(self, target_ni: str, address: int, value: Optional[int],
                 acknowledged: bool) -> None:
        self.target_ni = target_ni
        self.address = address
        self.value = value
        self.acknowledged = acknowledged
        self.is_read = value is None
        self.done = False
        self.result: Optional[int] = None
        self.error = False
        self.issue_cycle: Optional[int] = None
        self.complete_cycle: Optional[int] = None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        kind = "rd" if self.is_read else "wr"
        return (f"ConfigOperation({kind} {self.target_ni}@0x{self.address:x}, "
                f"done={self.done})")


class ConfigShell(ClockedComponent):
    """The configuration shell at the configuration module's NI (Figure 8).

    ``remote_conns`` maps a remote NI name onto the connection id (of the
    underlying connection shell's port) leading to that NI's CNIP.  Accesses
    to the local NI bypass the network entirely.
    """

    def __init__(self, name: str, local_kernel: NIKernel,
                 shell: Optional[ConnectionShell] = None,
                 remote_conns: Optional[Dict[str, int]] = None,
                 local_access_cycles: int = 1,
                 tracer: Tracer = NULL_TRACER) -> None:
        self.name = name
        self.local_kernel = local_kernel
        self.shell = shell
        self.remote_conns = dict(remote_conns or {})
        self.local_access_cycles = local_access_cycles
        self.tracer = tracer
        self.stats = StatsRegistry()
        self._queue: Deque[ConfigOperation] = deque()
        self._in_flight: Deque[ConfigOperation] = deque()
        self._next_trans_id = 0
        self._cycle = 0

    # -------------------------------------------------------------- issuing
    def write(self, target_ni: str, address: int, value: int,
              acknowledged: bool = False) -> ConfigOperation:
        op = ConfigOperation(target_ni, address, value, acknowledged)
        self._queue.append(op)
        self.notify_active()
        return op

    def read(self, target_ni: str, address: int) -> ConfigOperation:
        op = ConfigOperation(target_ni, address, None, acknowledged=True)
        self._queue.append(op)
        self.notify_active()
        return op

    # Design-time wiring: mapping a remote NI name to a connection index
    # cannot raise eligibility (the op queue is what drives activity).
    def add_remote(self, ni_name: str, conn: int) -> None:  # reprolint: disable=wake-mutate-no-notify
        self.remote_conns[ni_name] = conn

    def is_idle(self) -> bool:
        """No operation queued or awaiting acknowledgement.

        Doubles as the idle-skip activity predicate: the shell keeps its
        clock running (conservatively) until every queued operation has been
        issued and every acknowledged one has seen its response.
        """
        return not self._queue and not self._in_flight

    @property
    def pending_operations(self) -> int:
        return len(self._queue) + len(self._in_flight)

    # ----------------------------------------------------------------- clock
    def tick(self, cycle: int) -> None:
        self._cycle = cycle
        self._collect_responses(cycle)
        self._issue(cycle)

    def _issue(self, cycle: int) -> None:
        while self._queue:
            # Keep configuration strictly ordered: an acknowledged operation
            # blocks later operations until its response returns.
            if self._in_flight and self._in_flight[-1].acknowledged \
                    and not self._in_flight[-1].done:
                return
            op = self._queue[0]
            if op.target_ni == self.local_kernel.name:
                self._queue.popleft()
                self._execute_local(op, cycle)
                continue
            if self.shell is None:
                raise ShellError(
                    f"config shell {self.name}: no connection shell for remote "
                    f"access to {op.target_ni!r}")
            conn = self.remote_conns.get(op.target_ni)
            if conn is None:
                raise ShellError(
                    f"config shell {self.name}: no connection to the CNIP of "
                    f"{op.target_ni!r}")
            if not self.shell.can_submit():
                return
            message = self._to_message(op)
            if not self.shell.submit(message, conn=conn):
                return
            self._queue.popleft()
            op.issue_cycle = cycle
            if op.acknowledged or op.is_read:
                self._in_flight.append(op)
            else:
                op.done = True
                op.complete_cycle = cycle
            self.stats.counter("remote_operations").increment()

    def _execute_local(self, op: ConfigOperation, cycle: int) -> None:
        """Local registers are accessed directly through the Config Shell."""
        op.issue_cycle = cycle
        try:
            if op.is_read:
                op.result = self.local_kernel.read_register(op.address)
            else:
                self.local_kernel.write_register(op.address, op.value)
        except RegisterError:
            op.error = True
        op.done = True
        op.complete_cycle = cycle + self.local_access_cycles
        self.stats.counter("local_operations").increment()

    def _collect_responses(self, cycle: int) -> None:
        if self.shell is None:
            return
        while True:
            polled = self.shell.poll()
            if polled is None:
                return
            message, conn = polled
            if not isinstance(message, ResponseMessage):
                raise ShellError(f"config shell {self.name}: received a request")
            if not self._in_flight:
                raise ShellError(
                    f"config shell {self.name}: unexpected response on {conn}")
            op = self._in_flight.popleft()
            op.done = True
            op.complete_cycle = cycle
            op.error = not message.ok
            if op.is_read and message.read_data:
                op.result = message.read_data[0]
            self.stats.counter("acknowledgements").increment()

    # -------------------------------------------------------------- helpers
    def _to_message(self, op: ConfigOperation) -> RequestMessage:
        trans_id = self._next_trans_id
        self._next_trans_id = (self._next_trans_id + 1) & 0xFF
        if op.is_read:
            return RequestMessage(command=Command.READ, address=op.address,
                                  read_length=1, trans_id=trans_id)
        command = Command.WRITE if op.acknowledged else Command.WRITE_POSTED
        flags = 0 if op.acknowledged else FLAG_POSTED
        return RequestMessage(command=command, address=op.address,
                              write_data=[op.value], flags=flags,
                              trans_id=trans_id)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ConfigShell({self.name}, remotes={sorted(self.remote_conns)})"
