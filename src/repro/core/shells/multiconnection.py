"""Multi-connection shell (Figure 4 of the paper).

"When a slave using a connectionless protocol (e.g., DTL) is connected to a
NI port supporting multiple connections, a multi-connection shell must be
included to arbitrate between the connections.  A multi-connection shell
includes a scheduler to select connections from which messages are consumed,
based e.g., on their filling.  As for the narrowcast, the multi-connection
shell has a connection id history for scheduling the responses."

The shell therefore sits at a *slave* port: it consumes request messages from
whichever connection its scheduler picks (largest destination-queue filling
by default), remembers the connection order of requests that expect
responses, and routes each response submitted by the slave back onto the
connection of the oldest outstanding request.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Sequence

from repro.core.port import NIPort
from repro.core.shells.base import ConnectionShell, Message, ShellError
from repro.protocol.messages import RequestMessage, ResponseMessage
from repro.sim.trace import NULL_TRACER, Tracer


class MultiConnectionShell(ConnectionShell):
    """Slave-side shell arbitrating between multiple connections."""

    def __init__(self, name: str, port: NIPort, scheduling: str = "queue_fill",
                 tracer: Tracer = NULL_TRACER) -> None:
        if scheduling not in ("queue_fill", "round_robin"):
            raise ShellError(
                f"shell {name}: unknown scheduling policy {scheduling!r}")
        super().__init__(name=name, port=port, role="slave", tracer=tracer)
        self.scheduling = scheduling
        self._rr_next = 0
        #: Connections of delivered requests that still await a response.
        self._response_history: Deque[int] = deque()

    # ----------------------------------------------------------- rx policy
    def _rx_conn_candidates(self) -> Sequence[int]:
        conns = list(range(self.port.num_connections))
        if self.scheduling == "round_robin":
            return conns[self._rr_next:] + conns[:self._rr_next]
        # Queue-filling based: largest destination queue first.
        return sorted(conns, key=lambda c: -self.port.dest_fill(c))

    def _deliver(self, message: Message, conn: int) -> None:
        if not isinstance(message, RequestMessage):
            raise ShellError(
                f"shell {self.name}: slave port received a non-request message")
        if message.expects_response:
            self._response_history.append(conn)
        if self.scheduling == "round_robin":
            self._rr_next = (conn + 1) % self.port.num_connections
        super()._deliver(message, conn)

    # ----------------------------------------------------------- tx policy
    def _select_conns(self, message: Message,
                      conn: Optional[int]) -> Sequence[int]:
        if not isinstance(message, ResponseMessage):
            raise ShellError(
                f"shell {self.name}: slave ports send responses only")
        if conn is not None:
            return (conn,)
        if not self._response_history:
            raise ShellError(
                f"shell {self.name}: response submitted with no outstanding request")
        return (self._response_history.popleft(),)

    # ------------------------------------------------------------ inspection
    @property
    def outstanding_responses(self) -> int:
        return len(self._response_history)
