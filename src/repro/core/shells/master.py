"""Master protocol-adapter shell (Figure 5 of the paper).

"The basic functionality of such a shell is to sequentialize commands and
their flags, addresses, and write data in request messages, and to
desequentialize messages into read data, and write responses."

The master shell accepts :class:`~repro.protocol.transactions.Transaction`
objects from a master IP module (via the simplified DTL or AXI signal
groups), assigns them wrapping 8-bit transaction ids, converts them to
request messages and hands them to the connection shell below (point-to-
point, narrowcast or multicast).  Responses coming back are matched to the
outstanding transactions and completed.

The sequentialization pipeline of the prototype DTL master shell costs 2
cycles (Section 5); that latency is modeled by delaying the issue of every
request by ``seq_latency_cycles`` port-clock cycles.

End-to-end retry (``repro.faults``): with ``timeout_cycles`` set, a
transaction whose response does not arrive in time is retransmitted (same
trans_id, bounded by ``max_retries``, exponential ``retry_backoff``), and a
late original response is suppressed as a duplicate instead of raising.
``timeout_cycles=None`` (the default) disables all of it — no extra state,
no extra ticks — which is what keeps no-fault runs byte-identical.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.shells.base import ConnectionShell, ShellError
from repro.protocol.messages import FLAG_FLUSH, FLAG_POSTED, RequestMessage, ResponseMessage
from repro.protocol.transactions import (
    Command,
    MAX_TRANS_ID,
    ResponseError,
    Transaction,
    TransactionResponse,
    TransactionStatus,
)
from repro.sim.batching import FAR_FUTURE
from repro.sim.clock import ClockedComponent
from repro.sim.stats import StatsRegistry
from repro.sim.trace import NULL_TRACER, Tracer

#: Default sequentialization latency of the simplified DTL master shell.
DEFAULT_SEQ_LATENCY = 2


class MasterShell(ClockedComponent):
    """Transaction-to-message adapter for a master IP module."""

    def __init__(self, name: str, shell: ConnectionShell,
                 protocol: str = "dtl",
                 seq_latency_cycles: int = DEFAULT_SEQ_LATENCY,
                 max_outstanding: int = 16,
                 timeout_cycles: Optional[int] = None,
                 max_retries: int = 3,
                 retry_backoff: float = 2.0,
                 tracer: Tracer = NULL_TRACER) -> None:
        if shell.role != "master":
            raise ShellError(f"master shell {name} needs a master-role connection shell")
        if protocol not in ("dtl", "axi"):
            raise ShellError(f"master shell {name}: unknown protocol {protocol!r}")
        if timeout_cycles is not None and timeout_cycles <= 0:
            raise ShellError(f"master shell {name}: timeout_cycles must be positive")
        if max_retries < 0:
            raise ShellError(f"master shell {name}: max_retries must be >= 0")
        if retry_backoff < 1.0:
            raise ShellError(f"master shell {name}: retry_backoff must be >= 1")
        self.name = name
        self.shell = shell
        self.protocol = protocol
        self.seq_latency_cycles = seq_latency_cycles
        self.max_outstanding = max_outstanding
        self.timeout_cycles = timeout_cycles
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.tracer = tracer
        self.stats = StatsRegistry()
        #: Wake hook for the master IP above: called whenever a completion
        #: is appended, so a tick-gated IP collects it (mirrors
        #: ``ConnectionShell.on_deliver`` one layer down).
        self.on_complete = None
        # Un-gate this shell the moment the connection shell reassembles a
        # response (tick gating: a standing gate is only cancelled by an
        # explicit notify).
        shell.on_deliver = self.notify_active
        self._next_trans_id = 0
        self._pending: Deque[Tuple[int, Transaction]] = deque()  # (ready_cycle, txn)
        self._outstanding: Dict[int, Transaction] = {}
        self._completed: Deque[Transaction] = deque()
        self._cycle = 0
        # Retry state (only populated when timeout_cycles is set):
        # trans_id -> [deadline_cycle, retries_used].
        self._retry_state: Dict[int, list] = {}
        # Ids whose transaction was retried or aborted; a late response for
        # one of these is a duplicate to suppress, not a protocol error.
        self._retired_ids: Deque[int] = deque(maxlen=64)
        # Hot counters cached as attributes; shared with ``self.stats``.
        stats = self.stats
        self._ctr_transactions_submitted = stats.counter("transactions_submitted")
        self._ctr_issue_stalls = stats.counter("issue_stalls")
        self._ctr_requests_issued = stats.counter("requests_issued")
        self._ctr_posted_completions = stats.counter("posted_completions")
        self._ctr_responses_received = stats.counter("responses_received")
        self._lat_transaction = stats.latency("transaction_latency")
        if timeout_cycles is not None:
            # Only materialised when the retry machinery is armed, so the
            # stats dict (and thus system fingerprints) of no-fault runs
            # stays identical.
            self._ctr_retries = stats.counter("retries")
            self._ctr_timeouts = stats.counter("timeouts")
            self._ctr_duplicates = stats.counter("duplicates_suppressed")

    # ------------------------------------------------------------- IP side
    def can_submit(self) -> bool:
        return (len(self._outstanding) + len(self._pending)) < self.max_outstanding

    def submit(self, transaction: Transaction,
               cycle: Optional[int] = None) -> bool:
        """Accept a transaction from the master IP.  Returns False when full."""
        if not self.can_submit():
            return False
        issue_cycle = cycle if cycle is not None else self._cycle
        transaction.issue_cycle = issue_cycle
        transaction.status = TransactionStatus.ISSUED
        transaction.trans_id = self._allocate_trans_id()
        self._pending.append((issue_cycle + self.seq_latency_cycles, transaction))
        self._ctr_transactions_submitted.increment()
        self.notify_active()
        return True

    def poll_completed(self) -> List[Transaction]:
        """Transactions completed since the last call."""
        if not self._completed:
            return []
        done = list(self._completed)
        self._completed.clear()
        return done

    @property
    def outstanding(self) -> int:
        return len(self._outstanding) + len(self._pending)

    @property
    def uncollected_completions(self) -> int:
        """Completed transactions the IP has not polled yet.

        The IP module ticks *before* this shell on their shared clock, so a
        completion produced in tick N is only collected in tick N+1; "am I
        done" predicates must count these or they can report done one cycle
        early and strand the last completion.
        """
        return len(self._completed)

    def idle(self) -> bool:
        return not self._pending and not self._outstanding and self.shell.idle()

    def is_idle(self) -> bool:
        """Activity predicate for idle-skip.

        Busy while requests await their sequentialization delay or completed
        transactions await collection by the IP.  Outstanding transactions do
        *not* keep the clock running: the response's arrival revives the
        connection shell (same clock domain), which in turn keeps this shell
        ticking until the completion is handed upward.  Exception: with
        timeouts armed, outstanding transactions must keep the clock ticking
        — a dropped response produces no wake-up, only the passage of cycles
        can expire it.
        """
        return (not self._pending and not self._completed
                and not self._retry_state)

    def next_action_cycle(self, cycle: int) -> int:
        """Horizon: reassembled responses now, else the next deadline.

        Dense while the connection shell holds responses to complete.
        Otherwise the earliest of the next sequentialization-ready request
        (``_pending`` is ready-ordered: FIFO with a constant delay) and the
        earliest retry deadline; the ``max(..., cycle + 1)`` clamp keeps a
        backpressure-deferred issue or retransmit dense, matching the
        per-cycle ``issue_stalls`` accounting of an ungated run.  New
        submissions and deliveries cancel the gate via ``notify_active`` /
        :attr:`ConnectionShell.on_deliver`.
        """
        if self.shell._rx_ready:
            return cycle + 1
        horizon = FAR_FUTURE
        if self._pending:
            horizon = self._pending[0][0]
        if self._retry_state:
            for state in self._retry_state.values():
                if state[0] < horizon:
                    horizon = state[0]
        if horizon <= cycle:
            return cycle + 1
        return horizon

    def request_flush(self) -> None:
        """Propagate a flush request to the kernel (prevents starvation when
        the IP waits for an acknowledgement of buffered write data)."""
        self.shell.request_flush()

    # ----------------------------------------------------------------- clock
    def tick(self, cycle: int) -> None:
        self._cycle = cycle
        self._issue(cycle)
        self._complete(cycle)
        if self._retry_state:
            self._check_timeouts(cycle)

    def _issue(self, cycle: int) -> None:
        while self._pending and self._pending[0][0] <= cycle:
            # Check for shell backpressure before building the message, so a
            # stalled transaction does not re-serialize itself every cycle.
            if not self.shell.can_submit():
                self._ctr_issue_stalls.increment()
                return
            transaction = self._pending[0][1]
            message = self._to_message(transaction)
            if not self.shell.submit(message):
                self._ctr_issue_stalls.increment()
                return
            self._pending.popleft()
            if transaction.expects_response:
                self._outstanding[transaction.trans_id] = transaction
                if self.timeout_cycles is not None:
                    self._retry_state[transaction.trans_id] = [
                        cycle + self.timeout_cycles, 0]
            else:
                # Posted writes complete as soon as they are handed to the NI.
                transaction.complete(TransactionResponse(), cycle=cycle)
                self._completed.append(transaction)
                self._ctr_posted_completions.increment()
                if self.on_complete is not None:
                    self.on_complete()
            self._ctr_requests_issued.increment()

    def _complete(self, cycle: int) -> None:
        while True:
            polled = self.shell.poll()
            if polled is None:
                return
            message, conn = polled
            if not isinstance(message, ResponseMessage):
                raise ShellError(f"master shell {self.name}: received a request")
            transaction = self._outstanding.pop(message.trans_id, None)
            if transaction is None:
                if message.trans_id in self._retired_ids:
                    # Late response for a transaction that was already
                    # retried or aborted: the retry layer expects these.
                    self._ctr_duplicates.increment()
                    continue
                raise ShellError(
                    f"master shell {self.name}: response for unknown "
                    f"transaction id {message.trans_id} on connection {conn}")
            if self.timeout_cycles is not None:
                state = self._retry_state.pop(message.trans_id, None)
                if state is not None and state[1] > 0:
                    # The transaction was retransmitted: a duplicate of this
                    # response may still arrive and must be recognised.
                    self._retired_ids.append(message.trans_id)
            response = TransactionResponse(error=message.error,
                                           read_data=list(message.read_data))
            transaction.complete(response, cycle=cycle)
            self._completed.append(transaction)
            self._ctr_responses_received.increment()
            if self.on_complete is not None:
                self.on_complete()
            if transaction.latency_cycles is not None:
                self._lat_transaction.record(transaction.issue_cycle, cycle)

    def _check_timeouts(self, cycle: int) -> None:
        for trans_id, state in list(self._retry_state.items()):
            if cycle < state[0]:
                continue
            transaction = self._outstanding.get(trans_id)
            if transaction is None:
                self._retry_state.pop(trans_id, None)
                continue
            if state[1] >= self.max_retries:
                # Retry budget exhausted: abort locally with a timeout error
                # so the IP sees a failed transaction instead of a hang.
                self._outstanding.pop(trans_id, None)
                self._retry_state.pop(trans_id, None)
                self._retired_ids.append(trans_id)
                transaction.complete(
                    TransactionResponse(error=ResponseError.TIMEOUT),
                    cycle=cycle)
                self._completed.append(transaction)
                self._ctr_timeouts.increment()
                if self.on_complete is not None:
                    self.on_complete()
                continue
            # Retransmit the same request (same trans_id) with exponential
            # backoff; shell backpressure just defers to the next cycle.
            if not self.shell.can_submit():
                continue
            if not self.shell.submit(self._to_message(transaction)):
                continue
            state[1] += 1
            delay = int(self.timeout_cycles * (self.retry_backoff ** state[1]))
            state[0] = cycle + max(1, delay)
            self._ctr_retries.increment()

    # -------------------------------------------------------------- helpers
    def _allocate_trans_id(self) -> int:
        # 8-bit wrapping id; skip ids still outstanding to keep matching unique.
        for _ in range(MAX_TRANS_ID + 1):
            candidate = self._next_trans_id
            self._next_trans_id = (self._next_trans_id + 1) & MAX_TRANS_ID
            if candidate not in self._outstanding:
                return candidate
        raise ShellError(f"master shell {self.name}: transaction id space exhausted")

    def _to_message(self, transaction: Transaction) -> RequestMessage:
        flags = 0
        if transaction.command == Command.WRITE_POSTED:
            flags |= FLAG_POSTED
        if transaction.command == Command.FLUSH:
            flags |= FLAG_FLUSH
        return RequestMessage(command=transaction.command,
                              address=transaction.address,
                              write_data=list(transaction.write_data),
                              read_length=transaction.read_length,
                              flags=flags,
                              trans_id=transaction.trans_id)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"MasterShell({self.name}, protocol={self.protocol})"
