"""Master protocol-adapter shell (Figure 5 of the paper).

"The basic functionality of such a shell is to sequentialize commands and
their flags, addresses, and write data in request messages, and to
desequentialize messages into read data, and write responses."

The master shell accepts :class:`~repro.protocol.transactions.Transaction`
objects from a master IP module (via the simplified DTL or AXI signal
groups), assigns them wrapping 8-bit transaction ids, converts them to
request messages and hands them to the connection shell below (point-to-
point, narrowcast or multicast).  Responses coming back are matched to the
outstanding transactions and completed.

The sequentialization pipeline of the prototype DTL master shell costs 2
cycles (Section 5); that latency is modeled by delaying the issue of every
request by ``seq_latency_cycles`` port-clock cycles.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.shells.base import ConnectionShell, ShellError
from repro.protocol.messages import FLAG_FLUSH, FLAG_POSTED, RequestMessage, ResponseMessage
from repro.protocol.transactions import (
    Command,
    MAX_TRANS_ID,
    Transaction,
    TransactionResponse,
    TransactionStatus,
)
from repro.sim.clock import ClockedComponent
from repro.sim.stats import StatsRegistry
from repro.sim.trace import NULL_TRACER, Tracer

#: Default sequentialization latency of the simplified DTL master shell.
DEFAULT_SEQ_LATENCY = 2


class MasterShell(ClockedComponent):
    """Transaction-to-message adapter for a master IP module."""

    def __init__(self, name: str, shell: ConnectionShell,
                 protocol: str = "dtl",
                 seq_latency_cycles: int = DEFAULT_SEQ_LATENCY,
                 max_outstanding: int = 16,
                 tracer: Tracer = NULL_TRACER) -> None:
        if shell.role != "master":
            raise ShellError(f"master shell {name} needs a master-role connection shell")
        if protocol not in ("dtl", "axi"):
            raise ShellError(f"master shell {name}: unknown protocol {protocol!r}")
        self.name = name
        self.shell = shell
        self.protocol = protocol
        self.seq_latency_cycles = seq_latency_cycles
        self.max_outstanding = max_outstanding
        self.tracer = tracer
        self.stats = StatsRegistry()
        self._next_trans_id = 0
        self._pending: Deque[Tuple[int, Transaction]] = deque()  # (ready_cycle, txn)
        self._outstanding: Dict[int, Transaction] = {}
        self._completed: Deque[Transaction] = deque()
        self._cycle = 0
        # Hot counters cached as attributes; shared with ``self.stats``.
        stats = self.stats
        self._ctr_transactions_submitted = stats.counter("transactions_submitted")
        self._ctr_issue_stalls = stats.counter("issue_stalls")
        self._ctr_requests_issued = stats.counter("requests_issued")
        self._ctr_posted_completions = stats.counter("posted_completions")
        self._ctr_responses_received = stats.counter("responses_received")
        self._lat_transaction = stats.latency("transaction_latency")

    # ------------------------------------------------------------- IP side
    def can_submit(self) -> bool:
        return (len(self._outstanding) + len(self._pending)) < self.max_outstanding

    def submit(self, transaction: Transaction,
               cycle: Optional[int] = None) -> bool:
        """Accept a transaction from the master IP.  Returns False when full."""
        if not self.can_submit():
            return False
        issue_cycle = cycle if cycle is not None else self._cycle
        transaction.issue_cycle = issue_cycle
        transaction.status = TransactionStatus.ISSUED
        transaction.trans_id = self._allocate_trans_id()
        self._pending.append((issue_cycle + self.seq_latency_cycles, transaction))
        self._ctr_transactions_submitted.increment()
        self.notify_active()
        return True

    def poll_completed(self) -> List[Transaction]:
        """Transactions completed since the last call."""
        if not self._completed:
            return []
        done = list(self._completed)
        self._completed.clear()
        return done

    @property
    def outstanding(self) -> int:
        return len(self._outstanding) + len(self._pending)

    @property
    def uncollected_completions(self) -> int:
        """Completed transactions the IP has not polled yet.

        The IP module ticks *before* this shell on their shared clock, so a
        completion produced in tick N is only collected in tick N+1; "am I
        done" predicates must count these or they can report done one cycle
        early and strand the last completion.
        """
        return len(self._completed)

    def idle(self) -> bool:
        return not self._pending and not self._outstanding and self.shell.idle()

    def is_idle(self) -> bool:
        """Activity predicate for idle-skip.

        Busy while requests await their sequentialization delay or completed
        transactions await collection by the IP.  Outstanding transactions do
        *not* keep the clock running: the response's arrival revives the
        connection shell (same clock domain), which in turn keeps this shell
        ticking until the completion is handed upward.
        """
        return not self._pending and not self._completed

    def request_flush(self) -> None:
        """Propagate a flush request to the kernel (prevents starvation when
        the IP waits for an acknowledgement of buffered write data)."""
        self.shell.request_flush()

    # ----------------------------------------------------------------- clock
    def tick(self, cycle: int) -> None:
        self._cycle = cycle
        self._issue(cycle)
        self._complete(cycle)

    def _issue(self, cycle: int) -> None:
        while self._pending and self._pending[0][0] <= cycle:
            # Check for shell backpressure before building the message, so a
            # stalled transaction does not re-serialize itself every cycle.
            if not self.shell.can_submit():
                self._ctr_issue_stalls.increment()
                return
            transaction = self._pending[0][1]
            message = self._to_message(transaction)
            if not self.shell.submit(message):
                self._ctr_issue_stalls.increment()
                return
            self._pending.popleft()
            if transaction.expects_response:
                self._outstanding[transaction.trans_id] = transaction
            else:
                # Posted writes complete as soon as they are handed to the NI.
                transaction.complete(TransactionResponse(), cycle=cycle)
                self._completed.append(transaction)
                self._ctr_posted_completions.increment()
            self._ctr_requests_issued.increment()

    def _complete(self, cycle: int) -> None:
        while True:
            polled = self.shell.poll()
            if polled is None:
                return
            message, conn = polled
            if not isinstance(message, ResponseMessage):
                raise ShellError(f"master shell {self.name}: received a request")
            transaction = self._outstanding.pop(message.trans_id, None)
            if transaction is None:
                raise ShellError(
                    f"master shell {self.name}: response for unknown "
                    f"transaction id {message.trans_id} on connection {conn}")
            response = TransactionResponse(error=message.error,
                                           read_data=list(message.read_data))
            transaction.complete(response, cycle=cycle)
            self._completed.append(transaction)
            self._ctr_responses_received.increment()
            if transaction.latency_cycles is not None:
                self._lat_transaction.record(transaction.issue_cycle, cycle)

    # -------------------------------------------------------------- helpers
    def _allocate_trans_id(self) -> int:
        # 8-bit wrapping id; skip ids still outstanding to keep matching unique.
        for _ in range(MAX_TRANS_ID + 1):
            candidate = self._next_trans_id
            self._next_trans_id = (self._next_trans_id + 1) & MAX_TRANS_ID
            if candidate not in self._outstanding:
                return candidate
        raise ShellError(f"master shell {self.name}: transaction id space exhausted")

    def _to_message(self, transaction: Transaction) -> RequestMessage:
        flags = 0
        if transaction.command == Command.WRITE_POSTED:
            flags |= FLAG_POSTED
        if transaction.command == Command.FLUSH:
            flags |= FLAG_FLUSH
        return RequestMessage(command=transaction.command,
                              address=transaction.address,
                              write_data=list(transaction.write_data),
                              read_length=transaction.read_length,
                              flags=flags,
                              trans_id=transaction.trans_id)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"MasterShell({self.name}, protocol={self.protocol})"
