"""NI shells (Figure 1 of the paper).

Shells wrap the NI kernel ports and add higher-level functionality: connection
types beyond point-to-point (narrowcast, multicast), arbitration between
multiple connections at a slave port, protocol adapters (simplified DTL and
AXI master/slave shells), and the configuration shell.  "All these shells can
be plugged in or left out at design time according to the needs."
"""

from repro.core.shells.base import ConnectionShell, ShellError
from repro.core.shells.config_shell import ConfigOperation, ConfigShell, ConfigurationSlave
from repro.core.shells.master import MasterShell
from repro.core.shells.multicast import MulticastShell
from repro.core.shells.multiconnection import MultiConnectionShell
from repro.core.shells.narrowcast import AddressRange, NarrowcastShell
from repro.core.shells.point_to_point import PointToPointShell
from repro.core.shells.slave import SlaveShell

__all__ = [
    "AddressRange",
    "ConfigOperation",
    "ConfigShell",
    "ConfigurationSlave",
    "ConnectionShell",
    "MasterShell",
    "MulticastShell",
    "MultiConnectionShell",
    "NarrowcastShell",
    "PointToPointShell",
    "ShellError",
    "SlaveShell",
]
