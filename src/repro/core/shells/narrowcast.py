"""Narrowcast shell (Figure 3 of the paper).

"Narrowcast connections are connections between one master and several
slaves, where each transaction is executed by a single slave selected based
on the address provided in the transaction.  Narrowcast connections provide a
simple, low-cost solution for a single shared address space mapped on
multiple memories."

The shell decodes the request address against configurable per-slave address
ranges (the ``Conn`` block of Figure 3), forwards the request on the matching
connection, and keeps "a history of connection identifiers of the
transactions including responses" so responses are delivered to the master in
transaction order even when slaves respond out of order relative to each
other.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence

from repro.core.port import NIPort
from repro.core.shells.base import ConnectionShell, Message, ShellError
from repro.protocol.messages import RequestMessage
from repro.sim.trace import NULL_TRACER, Tracer


@dataclass
class AddressRange:
    """The address window mapped onto one slave connection."""

    base: int
    size: int
    conn: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ShellError(f"address range at 0x{self.base:x} has size {self.size}")

    @property
    def limit(self) -> int:
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.limit


class NarrowcastShell(ConnectionShell):
    """Address-decoded one-master / many-slaves connection shell."""

    def __init__(self, name: str, port: NIPort,
                 address_ranges: List[AddressRange],
                 translate_addresses: bool = True,
                 tracer: Tracer = NULL_TRACER) -> None:
        super().__init__(name=name, port=port, role="master", tracer=tracer)
        if not address_ranges:
            raise ShellError(f"shell {name}: narrowcast needs address ranges")
        self._check_ranges(address_ranges, port)
        self.address_ranges = list(address_ranges)
        self.translate_addresses = translate_addresses
        #: Connection ids of transactions awaiting a response, in issue order.
        self._response_history: Deque[int] = deque()
        #: Response lengths, kept alongside the history as in Figure 3.
        self._response_lengths: Deque[int] = deque()

    @staticmethod
    def _check_ranges(ranges: List[AddressRange], port: NIPort) -> None:
        ordered = sorted(ranges, key=lambda r: r.base)
        for a, b in zip(ordered, ordered[1:]):
            if a.limit > b.base:
                raise ShellError(
                    f"overlapping narrowcast address ranges at 0x{a.base:x} "
                    f"and 0x{b.base:x}")
        for r in ranges:
            if not 0 <= r.conn < port.num_connections:
                raise ShellError(
                    f"narrowcast range at 0x{r.base:x} targets unknown "
                    f"connection {r.conn}")

    # ------------------------------------------------------------- decoding
    def decode(self, address: int) -> AddressRange:
        """The address range (slave) a request address falls into."""
        for r in self.address_ranges:
            if r.contains(address):
                return r
        raise ShellError(
            f"shell {self.name}: address 0x{address:x} matches no slave range")

    # ----------------------------------------------------------- tx policy
    def submit(self, message: Message, conn: Optional[int] = None) -> bool:
        if not isinstance(message, RequestMessage):
            raise ShellError(
                f"shell {self.name}: narrowcast shells transport requests only")
        target = self.decode(message.address)
        if self.translate_addresses and message.address != target.base:
            message = RequestMessage(
                command=message.command,
                address=message.address - target.base,
                write_data=list(message.write_data),
                read_length=message.read_length,
                flags=message.flags,
                trans_id=message.trans_id)
        elif self.translate_addresses:
            message = RequestMessage(
                command=message.command,
                address=0,
                write_data=list(message.write_data),
                read_length=message.read_length,
                flags=message.flags,
                trans_id=message.trans_id)
        return super().submit(message, conn=target.conn)

    def _select_conns(self, message: Message,
                      conn: Optional[int]) -> Sequence[int]:
        # ``submit`` already decoded the target connection.
        return (conn,) if conn is not None else (0,)

    def _on_submitted(self, message: Message, conns) -> None:
        if isinstance(message, RequestMessage) and message.expects_response:
            self._response_history.append(conns[0])
            self._response_lengths.append(message.response_length)
            self.stats.counter("history_entries").increment()

    # ----------------------------------------------------------- rx policy
    def _rx_conn_candidates(self) -> Sequence[int]:
        # In-order response delivery: only consume the response of the oldest
        # outstanding transaction.
        if not self._response_history:
            return ()
        return (self._response_history[0],)

    def _deliver(self, message: Message, conn: int) -> None:
        if not self._response_history:
            raise ShellError(
                f"shell {self.name}: response received with empty history")
        expected_conn = self._response_history.popleft()
        self._response_lengths.popleft()
        if expected_conn != conn:
            raise ShellError(
                f"shell {self.name}: response arrived on connection {conn} "
                f"but history expected {expected_conn}")
        super()._deliver(message, conn)

    # ------------------------------------------------------------ inspection
    @property
    def outstanding_responses(self) -> int:
        return len(self._response_history)
