"""Multicast connection shell.

A multicast connection has "one master, multiple slaves, all slaves executing
each transaction" (Section 2).  The shell duplicates every request message
onto all slave connections.  When the transaction is acknowledged (e.g. a
non-posted write), one response is collected from every slave and merged into
a single acknowledgement for the master: the merged response reports the
worst error code and the read data of the first connection.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence

from repro.core.port import NIPort
from repro.core.shells.base import ConnectionShell, Message, ShellError
from repro.protocol.messages import RequestMessage, ResponseMessage
from repro.protocol.transactions import ResponseError
from repro.sim.trace import NULL_TRACER, Tracer


class MulticastShell(ConnectionShell):
    """One-master / many-slaves shell where every slave executes everything."""

    def __init__(self, name: str, port: NIPort,
                 conns: Optional[List[int]] = None,
                 tracer: Tracer = NULL_TRACER) -> None:
        conns = list(conns) if conns is not None else list(range(port.num_connections))
        if not conns:
            raise ShellError(f"shell {name}: multicast needs at least one connection")
        super().__init__(name=name, port=port, role="master",
                         tx_words_per_cycle=1, tracer=tracer)
        for conn in conns:
            if not 0 <= conn < port.num_connections:
                raise ShellError(f"shell {name}: unknown connection {conn}")
        self.conns = conns
        #: One entry per acknowledged multicast transaction: conn -> response.
        self._pending_acks: Deque[Dict[int, Optional[ResponseMessage]]] = deque()

    # ----------------------------------------------------------- tx policy
    def _select_conns(self, message: Message,
                      conn: Optional[int]) -> Sequence[int]:
        if not isinstance(message, RequestMessage):
            raise ShellError(
                f"shell {self.name}: multicast shells transport requests only")
        return tuple(self.conns)

    def _on_submitted(self, message: Message, conns) -> None:
        if isinstance(message, RequestMessage) and message.expects_response:
            self._pending_acks.append({conn: None for conn in conns})

    # ----------------------------------------------------------- rx policy
    def _rx_conn_candidates(self) -> Sequence[int]:
        if not self._pending_acks:
            return ()
        head = self._pending_acks[0]
        return tuple(conn for conn, resp in head.items() if resp is None)

    def _deliver(self, message: Message, conn: int) -> None:
        if not self._pending_acks:
            raise ShellError(
                f"shell {self.name}: unexpected multicast response on {conn}")
        head = self._pending_acks[0]
        if conn not in head or head[conn] is not None:
            raise ShellError(
                f"shell {self.name}: duplicate or stray response on {conn}")
        if not isinstance(message, ResponseMessage):
            raise ShellError(f"shell {self.name}: expected a response message")
        head[conn] = message
        if all(resp is not None for resp in head.values()):
            self._pending_acks.popleft()
            merged = self._merge(head)
            super()._deliver(merged, self.conns[0])

    def _merge(self, responses: Dict[int, ResponseMessage]) -> ResponseMessage:
        ordered = [responses[conn] for conn in self.conns if conn in responses]
        worst = ResponseError.OK
        for resp in ordered:
            if int(resp.error) > int(worst):
                worst = resp.error
        first = ordered[0]
        return ResponseMessage(command=first.command, error=worst,
                               read_data=list(first.read_data),
                               trans_id=first.trans_id)

    # ------------------------------------------------------------ inspection
    @property
    def outstanding_acks(self) -> int:
        return len(self._pending_acks)
