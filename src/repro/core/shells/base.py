"""Base connection shell: message (de)sequentialization over a kernel port.

A connection shell converts between whole messages (the unit protocol
adapters work with) and the word streams the kernel queues carry.  It streams
one word per port-clock cycle in each direction, which models the
sequentialization the paper charges 2 cycles of latency for in the DTL master
shell plus one cycle per message word.

Subclasses implement the connection-type policies:

* which connection(s) a submitted message is sent on
  (:meth:`ConnectionShell._select_conns`);
* which connection incoming words are consumed from
  (:meth:`ConnectionShell._rx_conn_candidates`), which is how narrowcast
  shells enforce in-order response delivery;
* what happens when a complete message has been reassembled
  (:meth:`ConnectionShell._deliver`).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.port import NIPort
from repro.protocol.messages import (
    RequestMessage,
    ResponseMessage,
    request_from_words,
    response_from_words,
)
from repro.sim.batching import FAR_FUTURE
from repro.sim.clock import ClockedComponent
from repro.sim.stats import StatsRegistry
from repro.sim.trace import NULL_TRACER, Tracer

Message = Union[RequestMessage, ResponseMessage]


class ShellError(RuntimeError):
    """Raised for shell protocol violations (bad conn ids, ordering bugs)."""


class ConnectionShell(ClockedComponent):
    """Message-level shell over one NI kernel port."""

    #: Wake hook for the protocol adapter above (master/slave shell): called
    #: after every completed message reassembly so a tick-gated adapter is
    #: un-gated the moment work for it exists.  ``tick`` itself never acts
    #: on ``_rx_ready`` — only the adapter's tick drains it — so without
    #: this hook a delivery could sit under a standing adapter gate forever.
    on_deliver = None

    #: 'master' shells send requests and receive responses; 'slave' shells the
    #: reverse.  The role determines how incoming words are parsed.
    def __init__(self, name: str, port: NIPort, role: str = "master",
                 tx_words_per_cycle: int = 1, rx_words_per_cycle: int = 1,
                 max_pending_messages: int = 64,
                 tracer: Tracer = NULL_TRACER) -> None:
        if role not in ("master", "slave"):
            raise ShellError(f"shell {name}: role must be 'master' or 'slave'")
        if tx_words_per_cycle <= 0 or rx_words_per_cycle <= 0:
            raise ShellError(f"shell {name}: word budgets must be positive")
        self.name = name
        self.port = port
        self.role = role
        self.tx_words_per_cycle = tx_words_per_cycle
        self.rx_words_per_cycle = rx_words_per_cycle
        self.max_pending_messages = max_pending_messages
        self.tracer = tracer
        self.stats = StatsRegistry()
        #: Global transmit stream: (conns, remaining words) per message.
        self._tx_queue: Deque[Tuple[Tuple[int, ...], List[int]]] = deque()
        #: Per-connection receive reassembly state, indexed by connection
        #: (flat lists — the per-word dict lookups were measurable).
        self._rx_partial: List[List[int]] = [
            [] for _ in range(port.num_connections)]
        self._rx_expected: List[Optional[int]] = [None] * port.num_connections
        #: Fully reassembled messages ready for the adapter above.
        self._rx_ready: Deque[Tuple[Message, int]] = deque()
        self._rx_current_conn: Optional[int] = None
        #: Connections whose message-in-reassembly touched a poisoned word
        #: (repro.faults): the completed message is CRC-discarded.
        self._rx_poisoned: set = set()
        #: Channels this shell streams to/from, cached to skip the
        #: port -> kernel -> channel lookup chain on every word (hot path).
        self._conn_channels = [port.channel(conn)
                               for conn in range(port.num_connections)]
        #: Reusable candidate sequence for the default rx policy.
        self._all_conns = range(port.num_connections)
        #: Simulator (via the owning kernel) for trace timestamps.
        self._sim = getattr(port.kernel, "sim", None)
        # Hot counters cached as attributes; shared with ``self.stats``.
        stats = self.stats
        self._ctr_messages_submitted = stats.counter("messages_submitted")
        self._ctr_tx_stalls = stats.counter("tx_stalls")
        self._ctr_tx_words = stats.counter("tx_words")
        self._ctr_messages_sent = stats.counter("messages_sent")
        self._ctr_rx_words = stats.counter("rx_words")
        self._ctr_messages_received = stats.counter("messages_received")
        self._ctr_messages_discarded = stats.counter("messages_discarded")
        #: True while a destination queue may hold (or grow) readable words;
        #: set by the rx stimulus below, cleared by ``_collect_rx`` once all
        #: queues are drained.  Lets ``tick`` skip the receive scan on
        #: transmit-only cycles.
        self._rx_maybe = False
        # Wake this shell's clock whenever the kernel deposits words in any
        # destination queue this shell reads (activity-driven scheduling).
        for channel in self._conn_channels:
            channel.add_rx_listener(self._rx_stimulus)

    # ----------------------------------------------------------- upward API
    def can_submit(self) -> bool:
        return len(self._tx_queue) < self.max_pending_messages

    def submit(self, message: Message, conn: Optional[int] = None) -> bool:
        """Queue a message for transmission.  Returns False when full."""
        if not self.can_submit():
            return False
        conns = tuple(self._select_conns(message, conn))
        if not conns:
            raise ShellError(f"shell {self.name}: no connection selected")
        for c in conns:
            self.port.channel_index(c)  # bounds check
        self._tx_queue.append((conns, list(message.to_words())))
        self._on_submitted(message, conns)
        self._ctr_messages_submitted.value += 1
        self.notify_active()
        return True

    def poll(self) -> Optional[Tuple[Message, int]]:
        """A fully reassembled incoming message and the connection it used."""
        if self._rx_ready:
            return self._rx_ready.popleft()
        return None

    def pending_tx_messages(self) -> int:
        return len(self._tx_queue)

    def pending_tx_words(self) -> int:
        return sum(len(words) for _, words in self._tx_queue)

    def idle(self) -> bool:
        return (not self._tx_queue and not self._rx_ready
                and not any(self._rx_partial))

    def is_idle(self) -> bool:
        """Activity predicate for idle-skip.

        Busy while there are words to stream out, reassembled messages the
        adapter above has not polled, a partially reassembled message, or
        destination-queue words (including words still crossing the clock
        boundary, which become readable purely through the passage of time).
        """
        if self._tx_queue or self._rx_ready:
            return False
        for buffer in self._rx_partial:
            if buffer:
                return False
        for channel in self._conn_channels:
            if channel.dest_queue.total_fill:
                return False
        return True

    def next_action_cycle(self, cycle: int) -> int:
        """Dense while streaming out or while the rx scan is armed.

        Both directions move one word per cycle (backpressure and CDC
        visibility can change every edge), so no horizon tighter than
        ``cycle + 1`` is attempted; the win is the FAR claim between
        messages.  ``_rx_ready`` deliberately does not keep this shell
        dense: only the adapter above acts on it, and :attr:`on_deliver`
        un-gates that adapter the moment a message completes.
        """
        if self._tx_queue or self._rx_maybe:
            return cycle + 1
        return FAR_FUTURE

    def request_flush(self, conn: int = 0) -> None:
        """Raise the per-channel flush signal (Section 4.1)."""
        self.port.flush(conn)

    # -------------------------------------------------------- policy hooks
    def _select_conns(self, message: Message,
                      conn: Optional[int]) -> Sequence[int]:
        """Connections a submitted message is sent on (default: as given)."""
        return (conn if conn is not None else 0,)

    def _on_submitted(self, message: Message, conns: Tuple[int, ...]) -> None:
        """Bookkeeping hook (narrowcast/multicast history)."""

    def _rx_conn_candidates(self) -> Sequence[int]:
        """Connections that may deliver words this cycle, in priority order."""
        return self._all_conns

    def _deliver(self, message: Message, conn: int) -> None:
        """A complete message arrived on ``conn``."""
        self._rx_ready.append((message, conn))

    # ----------------------------------------------------------------- clock
    def tick(self, cycle: int) -> None:
        if self._tx_queue:
            self._stream_tx(cycle)
        if self._rx_maybe:
            self._collect_rx(cycle)

    def _rx_stimulus(self) -> None:
        """Kernel deposited destination-queue words: re-enable the rx scan."""
        self._rx_maybe = True
        self.notify_active()

    # -------------------------------------------------------------- internal
    def _stream_tx(self, cycle: int) -> None:
        budget = self.tx_words_per_cycle
        tx_queue = self._tx_queue
        channels = self._conn_channels
        while budget > 0 and tx_queue:
            conns, words = tx_queue[0]
            if not words:
                tx_queue.popleft()
                continue
            if len(conns) == 1:
                queue = channels[conns[0]].source_queue
                if not queue.can_push():
                    self._ctr_tx_stalls.value += 1
                    break
                queue.push(words.pop(0))
            else:
                # A multicast message advances only when every target can
                # accept.
                stalled = False
                for c in conns:
                    if not channels[c].source_queue.can_push():
                        stalled = True
                        break
                if stalled:
                    self._ctr_tx_stalls.value += 1
                    break
                word = words.pop(0)
                for c in conns:
                    channels[c].source_queue.push(word)
            self._ctr_tx_words.value += 1
            budget -= 1
            if not words:
                tx_queue.popleft()
                self._ctr_messages_sent.value += 1

    def _collect_rx(self, cycle: int) -> None:
        budget = self.rx_words_per_cycle
        channels = self._conn_channels
        while budget > 0:
            conn = self._pick_rx_conn()
            if conn is None:
                # Nothing readable now.  Words still crossing the clock
                # boundary (total_fill > 0) become readable purely through
                # time, so the flag must stay set until queues truly drain.
                if not any(channel.dest_queue.total_fill
                           for channel in channels):
                    self._rx_maybe = False
                return
            # Popping a word is the moment the IP consumes data: return a
            # credit to the remote producer (same semantics as NIPort.pop).
            channel = channels[conn]
            word = channel.dest_queue.pop()
            channel.add_credit(1)
            if channel.poison_intervals and channel.rx_word_poisoned():
                self._rx_poisoned.add(conn)
            buffer = self._rx_partial[conn]
            buffer.append(word)
            if self._rx_expected[conn] is None:
                self._rx_expected[conn] = self._words_expected(word)
            self._ctr_rx_words.value += 1
            budget -= 1
            expected = self._rx_expected[conn]
            if expected is not None and len(buffer) >= expected:
                words = list(buffer)
                self._rx_partial[conn] = []
                self._rx_expected[conn] = None
                self._rx_current_conn = None
                if conn in self._rx_poisoned:
                    # A faulty link corrupted part of this message: the
                    # CRC check fails and the whole message is discarded.
                    # The end-to-end retry layer (master shell timeouts)
                    # is what recovers the transaction.
                    self._rx_poisoned.discard(conn)
                    self._ctr_messages_discarded.value += 1
                    if self.tracer.enabled:
                        self.tracer.record(self._now_ps(), self.name,
                                           "message_discarded",
                                           conn=conn, words=len(words))
                    continue
                message = self._parse(words)
                self._ctr_messages_received.value += 1
                if self.tracer.enabled:
                    self.tracer.record(self._now_ps(), self.name,
                                       "message_received",
                                       conn=conn, words=len(words))
                self._deliver(message, conn)
                on_deliver = self.on_deliver
                if on_deliver is not None:
                    on_deliver()

    def _pick_rx_conn(self) -> Optional[int]:
        channels = self._conn_channels
        current = self._rx_current_conn
        # Finish the message currently being reassembled before switching.
        if current is not None and self._rx_partial[current]:
            if channels[current].dest_queue.fill:
                return current
            return None
        for conn in self._rx_conn_candidates():
            if channels[conn].dest_queue.fill:
                self._rx_current_conn = conn
                return conn
        return None

    def _now_ps(self) -> int:
        """Current simulation time for trace events (0 when unclocked)."""
        return self._sim.now if self._sim is not None else 0

    def _words_expected(self, header_word: int) -> int:
        if self.role == "master":
            return ResponseMessage.words_expected(header_word)
        return RequestMessage.words_expected(header_word)

    def _parse(self, words: List[int]) -> Message:
        if self.role == "master":
            return response_from_words(words)
        return request_from_words(words)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}({self.name}, role={self.role})"
