"""Slave protocol-adapter shell (Figure 6 of the paper).

The slave shell desequentializes incoming request messages into commands,
addresses and write data for the slave IP module, and sequentializes the
slave's read data / write acknowledgements back into response messages.

The slave IP module is any object implementing the small interface of
:class:`repro.ip.slave.SlaveIP`: ``enqueue(transaction)`` and
``pop_response() -> (transaction, response) | None``.  Responses must be
produced in the order requests were enqueued (the connection shell's history
relies on this to route responses onto the right connection).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.core.shells.base import ConnectionShell, ShellError
from repro.protocol.messages import RequestMessage, ResponseMessage
from repro.protocol.transactions import Command, Transaction
from repro.sim.batching import FAR_FUTURE
from repro.sim.clock import ClockedComponent
from repro.sim.stats import StatsRegistry
from repro.sim.trace import NULL_TRACER, Tracer


class SlaveShell(ClockedComponent):
    """Message-to-transaction adapter for a slave IP module."""

    def __init__(self, name: str, shell: ConnectionShell, slave,
                 protocol: str = "dtl",
                 tracer: Tracer = NULL_TRACER) -> None:
        if shell.role != "slave":
            raise ShellError(f"slave shell {name} needs a slave-role connection shell")
        if protocol not in ("dtl", "axi"):
            raise ShellError(f"slave shell {name}: unknown protocol {protocol!r}")
        self.name = name
        self.shell = shell
        self.slave = slave
        self.protocol = protocol
        self.tracer = tracer
        self.stats = StatsRegistry()
        #: Requests handed to the slave IP that expect a response, in order.
        self._awaiting_response: Deque[RequestMessage] = deque()
        self._response_backlog: Deque[ResponseMessage] = deque()
        # Un-gate this shell when the connection shell reassembles a request
        # (tick gating: a standing gate is only cancelled by a notify).
        shell.on_deliver = self.notify_active
        #: Slave IP's bound ``is_idle``, cached for the next-action horizon
        #: (None for duck-typed slaves without an activity predicate).
        self._slave_is_idle = getattr(slave, "is_idle", None)

    # ----------------------------------------------------------------- clock
    def tick(self, cycle: int) -> None:
        self._accept_requests(cycle)
        self._return_responses(cycle)

    def _accept_requests(self, cycle: int) -> None:
        while True:
            polled = self.shell.poll()
            if polled is None:
                return
            message, conn = polled
            if not isinstance(message, RequestMessage):
                raise ShellError(f"slave shell {self.name}: received a response")
            transaction = self._to_transaction(message)
            transaction.issue_cycle = cycle
            self.slave.enqueue(transaction)
            self.stats.counter("requests_accepted").increment()
            if message.expects_response:
                self._awaiting_response.append(message)
            del conn

    def _return_responses(self, cycle: int) -> None:
        # Drain the slave IP into the local backlog.
        while True:
            produced = self.slave.pop_response()
            if produced is None:
                break
            transaction, response = produced
            if not transaction.expects_response:
                # Posted commands produce no response message.
                continue
            if not self._awaiting_response:
                raise ShellError(
                    f"slave shell {self.name}: slave produced a response with "
                    f"no outstanding acknowledged request")
            request = self._awaiting_response.popleft()
            message = ResponseMessage(command=request.command,
                                      error=response.error,
                                      read_data=list(response.read_data),
                                      trans_id=request.trans_id)
            self._response_backlog.append(message)
            del transaction
        # Send as many backlogged responses as the shell accepts.
        while self._response_backlog:
            if not self.shell.can_submit():
                self.stats.counter("response_stalls").increment()
                return
            if not self.shell.submit(self._response_backlog[0]):
                self.stats.counter("response_stalls").increment()
                return
            self._response_backlog.popleft()
            self.stats.counter("responses_sent").increment()

    # -------------------------------------------------------------- helpers
    @staticmethod
    def _to_transaction(message: RequestMessage) -> Transaction:
        if message.command in (Command.READ, Command.READ_LINKED):
            return Transaction(command=message.command, address=message.address,
                               read_length=message.read_length,
                               trans_id=message.trans_id)
        return Transaction(command=message.command, address=message.address,
                           write_data=list(message.write_data),
                           trans_id=message.trans_id)

    def idle(self) -> bool:
        return (not self._awaiting_response and not self._response_backlog
                and self.shell.idle())

    def is_idle(self) -> bool:
        """Activity predicate for idle-skip.

        Conservatively busy while any accepted request still awaits its
        response from the slave IP — the slave may be an unclocked immediate
        executor (e.g. the CNIP register file), in which case nothing else
        would keep this clock running until the response is drained.
        """
        return not self._awaiting_response and not self._response_backlog

    def next_action_cycle(self, cycle: int) -> int:
        """Dense while polling the slave IP or draining the backlog.

        The slave IP below may be an unclocked immediate executor or a
        multi-cycle memory model; either way ``pop_response`` must be
        polled every cycle while a request is outstanding (the IP exposes
        no completion hook), so the only gain claimed here is the FAR
        claim between transactions.  The slave's own activity predicate is
        consulted because posted commands leave ``_awaiting_response``
        empty while the slave still owes a drain of its done queue.  Fresh
        requests cancel the gate via :attr:`ConnectionShell.on_deliver`.
        """
        if (self._awaiting_response or self._response_backlog
                or self.shell._rx_ready):
            return cycle + 1
        slave_is_idle = self._slave_is_idle
        if slave_is_idle is not None and not slave_is_idle():
            return cycle + 1
        return FAR_FUTURE

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"SlaveShell({self.name}, protocol={self.protocol})"
