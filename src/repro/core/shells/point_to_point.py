"""Point-to-point connection shell.

"With the NI kernel described in the previous section, point-to-point
connections (i.e., between one master and one slave) can be supported
directly.  These type of connections are useful in systems involving chains
of modules communicating point to point with one another (e.g., video pixel
processing)." (Section 4.2)

The point-to-point shell is therefore the thinnest shell: it only performs
message (de)sequentialization on a single connection.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.port import NIPort
from repro.core.shells.base import ConnectionShell, Message, ShellError
from repro.sim.trace import NULL_TRACER, Tracer


class PointToPointShell(ConnectionShell):
    """A shell bound to exactly one connection of a port."""

    def __init__(self, name: str, port: NIPort, role: str = "master",
                 conn: int = 0, tracer: Tracer = NULL_TRACER) -> None:
        super().__init__(name=name, port=port, role=role, tracer=tracer)
        if not 0 <= conn < port.num_connections:
            raise ShellError(
                f"shell {name}: port {port.name} has no connection {conn}")
        self.conn = conn

    def _select_conns(self, message: Message,
                      conn: Optional[int]) -> Sequence[int]:
        if conn is not None and conn != self.conn:
            raise ShellError(
                f"shell {self.name}: point-to-point shell is bound to "
                f"connection {self.conn}, got {conn}")
        return (self.conn,)

    def _rx_conn_candidates(self) -> Sequence[int]:
        return (self.conn,)
