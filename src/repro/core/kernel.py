"""The NI kernel (Figure 2 of the paper).

The kernel:

* holds one :class:`~repro.core.channel.Channel` (source queue + destination
  queue + flow-control counters) per configured point-to-point connection
  endpoint;
* runs the GT/BE scheduler every flit cycle: if the current TDM slot is
  reserved for a guaranteed-throughput channel that has sendable data (or
  credits / a pending flush), that channel transmits; otherwise a best-effort
  channel is selected by the configured arbiter;
* packetizes messages from the source queues (header word = source route,
  remote queue id, piggybacked credits) and depacketizes incoming flits into
  the destination queues, adding piggybacked credits to the ``space`` counter
  of the corresponding channel;
* exposes every control register through a memory-mapped register file so the
  NI can be configured over the NoC itself (Section 4.3).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.core.channel import Channel, FlowControlError
from repro.core.port import NIPort
from repro.core.registers import (
    CHANNEL_REG_STRIDE,
    CTRL_ENABLE,
    CTRL_GT,
    INFO_NUM_CHANNELS,
    INFO_NUM_PORTS,
    INFO_NUM_SLOTS,
    NI_INFO_BASE,
    REG_CREDIT_THRESHOLD,
    REG_CTRL,
    REG_DATA_THRESHOLD,
    REG_FLUSH,
    REG_PATH,
    REG_REMOTE_QID,
    REG_SPACE,
    REG_STATUS,
    SLOT_TABLE_BASE,
    RegisterError,
    decode_path,
    encode_ctrl,
    encode_path,
)
from repro.core.scheduler import Arbiter, make_arbiter
from repro.network.link import Link
from repro.network.noc import Attachment
from repro.network.packet import (
    DEFAULT_MAX_PACKET_WORDS,
    FLIT_WORDS,
    MAX_HEADER_CREDITS,
    Flit,
    Packet,
    PacketHeader,
    packet_to_flits,
)
from repro.network.slot_table import SlotTable
from repro.sim.batching import (
    FAR_FUTURE,
    NO_BARRIER,
    batching_default,
    burst_cap,
)
from repro.sim.clock import ClockedComponent
from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry
from repro.sim.trace import NULL_TRACER, Tracer

#: Destination queues are protected by end-to-end flow control, so the NI can
#: always accept flits from its router (the credits guarantee space).
_UNLIMITED_BE_SPACE = 1 << 30

#: Default clock-domain-crossing penalty (cycles of the reading clock).
DEFAULT_CDC_CYCLES = 2


class NIKernel(ClockedComponent):
    """The NI kernel: queues, scheduler, packetization and flow control."""

    def __init__(self, name: str, sim: Simulator, num_slots: int = 8,
                 max_packet_words: int = DEFAULT_MAX_PACKET_WORDS,
                 be_arbiter: str = "round_robin",
                 flit_period_ps: int = 6000,
                 tracer: Tracer = NULL_TRACER) -> None:
        if num_slots <= 0:
            raise ValueError("the slot table needs at least one slot")
        if max_packet_words <= 0:
            raise ValueError("max packet payload must be positive")
        self.name = name
        self.sim = sim
        self.num_slots = num_slots
        self.max_packet_words = max_packet_words
        self.flit_period_ps = flit_period_ps
        self.tracer = tracer
        self.stats = StatsRegistry()
        self.channels: List[Channel] = []
        self.ports: Dict[str, NIPort] = {}
        self.slot_table = SlotTable(num_slots)
        self.be_arbiter: Arbiter = (make_arbiter(be_arbiter)
                                    if isinstance(be_arbiter, str) else be_arbiter)
        self.to_network: Optional[Link] = None
        self.from_network: Optional[Link] = None
        self._gt_flits: Deque[Flit] = deque()
        self._be_flits: Deque[Flit] = deque()
        self._cycle = 0
        # ------------------------------------------------------- batching
        #: Captured process-wide default (repro.sim.batching): when True the
        #: kernel moves whole packet bursts per event; when False it runs
        #: the per-flit reference pipeline.  Both produce identical results.
        self._batching = batching_default()
        #: Maximum burst length; longer packets split into burst + per-flit
        #: remainder (property tests sweep this boundary).
        self._burst_cap = burst_cap()
        #: Next scheduled fault-event cycle (shared, mutable); bursts must
        #: fully drain before it.  Installed by the system builder when a
        #: fault plan exists.
        self.burst_barrier = NO_BARRIER
        #: End cycle of the current bounded run (shared, mutable; installed
        #: by ``SystemModel``): no burst may straddle a run boundary, so
        #: counter totals at every observation point equal the per-flit
        #: pipeline's.
        self._stop_barrier = NO_BARRIER
        #: Next metrics-sample cycle (shared, mutable; installed by the
        #: system builder when observers are declared): no burst may be in
        #: flight when the sampler reads, so sampled series equal the
        #: per-flit pipeline's at every sample point.
        self.obs_barrier = NO_BARRIER
        #: First cycle a new transmit decision is due: while a burst's
        #: flits stream mechanically, the scheduler has nothing to decide
        #: (exactly the cycles the per-flit path spent in its continuation
        #: branches).
        self._tx_busy_until = 0
        # ------------------------------------------------------- hot path
        # (see PERFORMANCE.md "hot path": invariants a ClockedComponent
        # author must preserve when touching any of this state)
        #: Ready-channel overlay: a superset of the BE channels that are
        #: potentially schedulable.  Every stimulus that can raise a
        #: channel's eligibility adds its index here (via the per-channel
        #: tx-wake closure or ``write_register``); ``_transmit_be`` scans
        #: only this overlay and lazily drops channels that went quiescent.
        #: A dict-of-None, not a set: the scan feeds arbitration, so its
        #: order must be insertion-deterministic, not hash-dependent
        #: (reprolint det-unordered-iter).
        self._be_ready: Dict[int, None] = {}
        #: Scratch list reused every cycle for the eligible indices handed
        #: to the arbiter (arbiters do not retain it).
        self._eligible_scratch: List[int] = []
        #: Slot->owner / slot->consecutive-run cache, invalidated by the
        #: slot table's version counter (bumped on every reservation
        #: mutation, including direct ``slot_table.reserve`` calls).
        self._slot_owners: List[Optional[int]] = [None] * num_slots
        self._slot_runs: List[int] = [1] * num_slots
        self._slot_cache_version = -1
        # Hot counters cached as attributes: one string-keyed registry
        # lookup at construction instead of one per flit per cycle.  The
        # objects stay shared with ``self.stats``, so summaries and tests
        # observe the same values.
        stats = self.stats
        self._ctr_gt_flits_sent = stats.counter("gt_flits_sent")
        self._ctr_gt_packets_sent = stats.counter("gt_packets_sent")
        self._ctr_gt_slots_unused = stats.counter("gt_slots_unused")
        self._ctr_be_flits_sent = stats.counter("be_flits_sent")
        self._ctr_be_packets_sent = stats.counter("be_packets_sent")
        self._ctr_be_stalls = stats.counter("be_stalls")
        self._ctr_words_sent = stats.counter("words_sent")
        self._ctr_credits_sent = stats.counter("credits_sent")
        self._ctr_credit_only_packets = stats.counter("credit_only_packets")
        self._ctr_credits_received = stats.counter("credits_received")
        self._ctr_words_received = stats.counter("words_received")
        self._ctr_packets_received = stats.counter("packets_received")
        self._ctr_gt_flits_received = stats.counter("gt_flits_received")
        self._ctr_be_flits_received = stats.counter("be_flits_received")
        self._hist_payload_words = stats.histogram("packet_payload_words")
        self._lat_network = stats.latency("packet_network_latency")

    # ------------------------------------------------------------- channels
    # Design-time wiring: a freshly added channel starts disabled and empty,
    # so it cannot change the kernel's idleness — no wake hook needed.
    def add_channel(self, source_queue_words: int = 8, dest_queue_words: int = 8,  # reprolint: disable=wake-mutate-no-notify
                    port_clock_period_ps: Optional[int] = None,
                    cdc_cycles: int = DEFAULT_CDC_CYCLES) -> Channel:
        """Instantiate a channel (design time, Section 4.1).

        The source queue is read by the kernel at the flit clock; the
        destination queue is read by the IP-side port at its own clock, so the
        CDC delay of each queue is expressed in cycles of its reader.
        """
        index = len(self.channels)
        reader_period = (port_clock_period_ps if port_clock_period_ps
                         else self.flit_period_ps)
        channel = Channel(index=index, name=f"{self.name}.ch{index}",
                          source_queue_words=source_queue_words,
                          dest_queue_words=dest_queue_words,
                          sim=self.sim,
                          source_cdc_delay_ps=cdc_cycles * self.flit_period_ps,
                          dest_cdc_delay_ps=cdc_cycles * reader_period)
        channel.set_tx_wake(self._make_tx_wake(index))
        self.channels.append(channel)
        return channel

    def _make_tx_wake(self, index: int):
        """Transmit-side wake hook for channel ``index``.

        Marks the channel ready for the BE scheduler scan and revives the
        kernel's clock.  Installed as both ``Channel._tx_wake`` and the
        source queue's ``on_push``, so every eligibility-raising stimulus
        (words, credits, space, flush — including direct queue pokes in
        tests) maintains the ready set.
        """
        be_ready = self._be_ready
        notify = self.notify_active

        def wake() -> None:
            be_ready[index] = None
            notify()

        return wake

    def channel(self, index: int) -> Channel:
        try:
            return self.channels[index]
        except IndexError as exc:
            raise RegisterError(
                f"{self.name}: channel {index} does not exist "
                f"({len(self.channels)} instantiated)") from exc

    @property
    def num_channels(self) -> int:
        return len(self.channels)

    # ----------------------------------------------------------------- ports
    # Design-time wiring: port grouping is metadata over existing channels
    # and cannot raise eligibility — no wake hook needed.
    def add_port(self, name: str, channel_indices: List[int]) -> NIPort:  # reprolint: disable=wake-mutate-no-notify
        """Group channels into an NI port (Figure 1: "NI kernel ports")."""
        if name in self.ports:
            raise ValueError(f"{self.name}: duplicate port name {name!r}")
        for index in channel_indices:
            self.channel(index)  # bounds check
        port = NIPort(kernel=self, name=name, channel_indices=list(channel_indices))
        self.ports[name] = port
        return port

    def port(self, name: str) -> NIPort:
        try:
            return self.ports[name]
        except KeyError as exc:
            raise KeyError(f"{self.name}: unknown port {name!r}") from exc

    # -------------------------------------------------------------- network
    def attach(self, attachment: Attachment) -> None:
        """Connect the kernel to its router-side links."""
        self.to_network = attachment.to_network
        self.from_network = attachment.from_network
        self.from_network.sink = self
        self.from_network.sink_port = 0
        self.to_network.source = self
        self.to_network.source_port = 0

    def attach_links(self, to_network: Link, from_network: Link) -> None:
        """Directly attach raw links (used by back-to-back NI tests).

        Performs the same wiring as :meth:`attach`, including the
        ``sink_port``/``source_port`` assignment, so back-to-back kernels
        exercise exactly the link configuration of the NoC path.
        """
        self.to_network = to_network
        self.from_network = from_network
        self.from_network.sink = self
        self.from_network.sink_port = 0
        self.to_network.source = self
        self.to_network.source_port = 0

    def be_space(self, port: int) -> int:
        """Link-level BE space: destination queues are guaranteed by credits."""
        return _UNLIMITED_BE_SPACE

    # ----------------------------------------------------------------- clock
    def tick(self, cycle: int) -> None:
        self._cycle = cycle
        self._receive(cycle)
        self._transmit(cycle)

    def is_idle(self) -> bool:
        """Activity predicate for idle-skip (see PERFORMANCE.md).

        The kernel is busy while it has partially transmitted packets, flits
        arriving from the network, any channel that is (or can become without
        new stimulus) schedulable — or any reserved TDM slot: an unused
        reserved slot is *observed* every cycle (the ``gt_slots_unused``
        counter), so a kernel with reservations must keep ticking to match
        always-tick statistics exactly.
        """
        if self._gt_flits or self._be_flits:
            return False
        if self.slot_table.has_reservations:
            return False
        from_network = self.from_network
        if from_network is not None and from_network.occupancy:
            return False
        for channel in self.channels:
            if channel.potentially_active():
                return False
        return True

    def next_action_cycle(self, cycle: int) -> int:
        """Next-action horizon — the TDMA frame macro-stepping rule.

        With a static slot table and a quiescent best-effort side, the only
        cycles a tick can change state are (a) the cycle a new transmit
        decision is due (``_tx_busy_until`` after a burst) and (b) cycles
        whose TDM slot is *owned*: an owned slot either transmits or bumps
        ``gt_slots_unused`` — both observable — while an unowned slot with
        nothing pending is a proven no-op.  Scanning the cached slot->owner
        list for the next owned slot therefore steps whole slot-table
        revolutions in one edge (one per reservation run), which is the
        analytic macro-step; the burst machinery already packetizes the
        owner run when that edge fires.

        Exactness notes (why each branch is dense):

        * flits in flight on ``from_network`` — receive work happens every
          tick, even inside a transmit-busy window;
        * a stale slot cache — purity forbids refreshing it here, and the
          horizon must not be computed from stale owners;
        * continuation flits or a non-empty BE ready overlay — per-flit
          sends, BE arbitration and ``be_stalls``/CDC-visibility polling
          all happen cycle by cycle once the busy window ends.
        """
        link = self.from_network
        if link is not None and (
                link._stage is not None or link._incoming is not None
                or link._staged_burst is not None
                or link._incoming_burst is not None
                or link._trickle is not None):
            return cycle + 1
        if self._slot_cache_version != self.slot_table.version:
            return cycle + 1
        nxt = self._tx_busy_until
        if nxt <= cycle:
            nxt = cycle + 1
        if self._gt_flits or self._be_flits or self._be_ready:
            return nxt
        owners = self._slot_owners
        num_slots = self.num_slots
        for offset in range(num_slots):
            c = nxt + offset
            if owners[c % num_slots] is not None:
                return c
        return FAR_FUTURE

    def is_quiescent(self) -> bool:
        """True when ticking only *observes* state (no data in flight).

        Weaker than :meth:`is_idle`: a kernel holding GT slot reservations
        is never idle (the ``gt_slots_unused`` counter must be sampled every
        cycle to match always-tick statistics), but once no flit, word or
        credit is in flight anywhere near it, further ticks change nothing a
        workload can see.  ``SystemModel.run_until_idle`` uses this to stop
        GT systems, whose event queue never drains, without polling
        overshoot.
        """
        if self._gt_flits or self._be_flits:
            return False
        from_network = self.from_network
        if from_network is not None and from_network.occupancy:
            return False
        for channel in self.channels:
            if channel.potentially_active():
                return False
        return True

    # --------------------------------------------------------------- receive
    def _receive(self, cycle: int) -> None:
        link = self.from_network
        if link is None:
            return
        burst = link._staged_burst
        if burst is not None:
            link._staged_burst = None
            self._receive_burst(burst, cycle)
            return
        flit = link.take()
        if flit is None:
            return
        packet = flit.packet
        qid = packet.header.remote_qid
        if qid >= len(self.channels):
            raise RegisterError(
                f"{self.name}: packet addressed to unknown queue {qid}")
        channel = self.channels[qid]
        if flit.is_head:
            credits = packet.header.credits
            if credits:
                channel.add_space(credits)
                self._ctr_credits_received.value += credits
        words = self._flit_payload(flit)
        for word in words:
            if not channel.dest_queue.can_push():
                raise FlowControlError(
                    f"{self.name}: destination queue of channel {qid} overflowed "
                    f"(end-to-end flow control violated)")
            # dest_queue.on_push wakes the IP-side reader's clock domain.
            channel.dest_queue.push(word)
        if words:
            self._ctr_words_received.value += len(words)
            channel._ctr_words_received.value += len(words)
            if packet.poisoned:
                # A faulty link corrupted this packet: the words are
                # delivered (framing stays intact) but flagged so the
                # message layer CRC-discards whatever they touch.
                channel.note_poisoned_words(len(words))
        if flit.is_tail:
            packet.delivered_cycle = cycle
            self._ctr_packets_received.value += 1
            if packet.injected_cycle is not None:
                self._lat_network.record(packet.injected_cycle, cycle)
            if self.tracer.enabled:
                self.tracer.record(self.sim.now, self.name,
                                   "packet_delivered",
                                   packet=packet.packet_id,
                                   channel=qid, gt=flit.is_gt)
        if flit.is_gt:
            self._ctr_gt_flits_received.value += 1
        else:
            self._ctr_be_flits_received.value += 1

    def _receive_burst(self, burst: List[Flit], cycle: int) -> None:
        """Depacketize a whole GT burst in one event.

        Word visibility stays flit-exact: flit ``j`` of the burst arrives at
        ``cycle + j``, so its words enter the destination queue dated
        ``now + j*flit_period + cdc`` — readers observe the identical word
        stream the per-flit pipeline delivers, just with the kernel-side
        events collapsed.  Credits post at the head (their real cycle);
        tail bookkeeping uses the tail's real arrival cycle.
        """
        head = burst[0]
        packet = head.packet
        qid = packet.header.remote_qid
        if qid >= len(self.channels):
            raise RegisterError(
                f"{self.name}: packet addressed to unknown queue {qid}")
        channel = self.channels[qid]
        credits = packet.header.credits
        if credits:
            channel.add_space(credits)
            self._ctr_credits_received.value += credits
        count = len(burst)
        nwords = -1  # the head flit's first word is the header
        for flit in burst:
            nwords += flit.num_words
        if nwords:
            dest = channel.dest_queue
            if not dest.can_push(nwords):
                raise FlowControlError(
                    f"{self.name}: destination queue of channel {qid} "
                    f"overflowed (end-to-end flow control violated)")
            # Burst flits cover a contiguous payload prefix (only a
            # packet's last flit can be short, and a split burst is always
            # a head-aligned prefix of the packet).
            words = packet.payload[:nwords]
            now = self.sim.now
            period = self.flit_period_ps
            cdc = dest.cdc_delay_ps
            pairs = []
            append = pairs.append
            index = 0
            for j, flit in enumerate(burst):
                n = flit.num_words - 1 if j == 0 else flit.num_words
                visible = now + j * period + cdc
                for _ in range(n):
                    append((visible, words[index]))
                    index += 1
            dest.push_run(pairs)
            self._ctr_words_received.value += nwords
            channel._ctr_words_received.value += nwords
            if packet.poisoned:
                channel.note_poisoned_words(nwords)
        if burst[count - 1].is_tail:
            tail_cycle = cycle + count - 1
            packet.delivered_cycle = tail_cycle
            self._ctr_packets_received.value += 1
            if packet.injected_cycle is not None:
                self._lat_network.record(packet.injected_cycle, tail_cycle)
            if self.tracer.enabled:
                # Bursts only form while the tracer is disabled, but one
                # already in flight when a tracer arms still records its
                # delivery (at the tail's real arrival time).
                self.tracer.record(self.sim.now + (count - 1)
                                   * self.flit_period_ps,
                                   self.name, "packet_delivered",
                                   packet=packet.packet_id,
                                   channel=qid, gt=True)
        self._ctr_gt_flits_received.value += count

    @staticmethod
    def _flit_payload(flit: Flit) -> List[int]:
        payload = flit.packet.payload
        if flit.is_head:
            return payload[:flit.num_words - 1]
        base = (FLIT_WORDS - 1) + (flit.index - 1) * FLIT_WORDS
        return payload[base:base + flit.num_words]

    # -------------------------------------------------------------- transmit
    def _transmit(self, cycle: int) -> None:
        if self.to_network is None:
            return
        if cycle < self._tx_busy_until:
            # A previously sent burst's flits are streaming mechanically;
            # the per-flit pipeline would spend these cycles in its
            # continuation branches with no new decision (and no counter
            # the batched path has not already accounted).
            return
        slot = cycle % self.num_slots
        if self._transmit_gt(cycle, slot):
            return
        self._transmit_be(cycle)

    def _burst_length(self, cycle: int, nflits: int, path_len: int) -> int:
        """Flits of a freshly formed packet that may travel as one burst.

        Truncation invariants (PERFORMANCE.md "Burst-granularity
        simulation"): the burst cap splits the packet, an armed/enabled
        tracer forces per-flit fallback, and a scheduled fault event
        truncates so the burst fully drains every hop strictly before the
        event applies.
        """
        if not self._batching or self.tracer.enabled:
            return 1
        length = nflits
        if self._burst_cap < length:
            length = self._burst_cap
        barrier = self.burst_barrier.cycle
        stop = self._stop_barrier.cycle
        if stop < barrier:
            barrier = stop
        obs = self.obs_barrier.cycle
        if obs < barrier:
            barrier = obs
        allowance = barrier - cycle - path_len - 2
        if allowance < length:
            length = allowance
        return length

    def _transmit_gt(self, cycle: int, slot: int) -> bool:
        # Continue an in-flight GT packet: its length was bounded by the
        # consecutive slots reserved for the channel, so the slot is ours.
        if self._gt_flits:
            self.to_network.send(self._gt_flits.popleft())
            self._ctr_gt_flits_sent.value += 1
            return True
        if self._slot_cache_version != self.slot_table.version:
            self._refresh_slot_cache()
        owner = self._slot_owners[slot]
        if owner is None:
            return False
        channel = self.channels[owner]
        if not channel.regs.gt or not channel.eligible():
            # The reserved slot goes unused by GT; BE may claim it.
            self._ctr_gt_slots_unused.value += 1
            return False
        run = self._slot_runs[slot]
        packet = self._form_packet(channel, gt=True, cycle=cycle,
                                   max_payload=min(self.max_packet_words,
                                                   FLIT_WORDS * run - 1))
        flits = packet_to_flits(packet)
        nflits = len(flits)
        if nflits > 1:
            length = self._burst_length(cycle, nflits,
                                        len(packet.header.path))
            if length >= 2:
                self.to_network.send_burst(
                    flits if length == nflits else flits[:length], cycle)
                self._tx_busy_until = cycle + length
                if length < nflits:
                    self._gt_flits.extend(flits[length:])
                self._ctr_gt_flits_sent.value += length
                self._ctr_gt_packets_sent.value += 1
                return True
        self.to_network.send(flits[0])
        self._gt_flits.extend(flits[1:])
        self._ctr_gt_flits_sent.value += 1
        self._ctr_gt_packets_sent.value += 1
        return True

    def _transmit_be(self, cycle: int) -> None:
        if self._be_flits:
            if self.to_network.can_send_be():
                self.to_network.send(self._be_flits.popleft())
                self._ctr_be_flits_sent.value += 1
            else:
                self._ctr_be_stalls.value += 1
            return
        ready = self._be_ready
        if not ready:
            return
        channels = self.channels
        eligible = self._eligible_scratch
        del eligible[:]
        stale = None
        for index in ready:
            channel = channels[index]
            if channel.regs.gt:
                # GT channels drift in through the shared wake hooks; they
                # are never BE-schedulable, so drop them from the overlay.
                if stale is None:
                    stale = []
                stale.append(index)
                continue
            if channel.eligible():
                eligible.append(index)
            elif not channel.potentially_active():
                if stale is None:
                    stale = []
                stale.append(index)
        if stale:
            for index in stale:
                ready.pop(index, None)
        if not eligible:
            return
        if not self.to_network.can_send_be():
            self._ctr_be_stalls.value += 1
            return
        choice = self.be_arbiter.select(eligible, channels)
        if choice is None:
            return
        channel = channels[choice]
        packet = self._form_packet(channel, gt=False, cycle=cycle,
                                   max_payload=self.max_packet_words)
        flits = packet_to_flits(packet)
        nflits = len(flits)
        if nflits > 1:
            length = self._burst_length(cycle, nflits,
                                        len(packet.header.path))
            if length >= 2:
                # BE bursts additionally stop at link credit exhaustion
                # (space for the whole run must exist up front — it can
                # only grow while this single source streams) and at the
                # first reserved TDM slot in the window, where the per-flit
                # scheduler could have preempted (or counted an unused
                # slot).  The slot cache is fresh: _transmit_gt just ran.
                capacity = self.to_network.be_send_capacity()
                if capacity < length:
                    length = capacity
                owners = self._slot_owners
                num_slots = self.num_slots
                limit = 1
                while (limit < length
                       and owners[(cycle + limit) % num_slots] is None):
                    limit += 1
                length = limit
            if length >= 2:
                self.to_network.send_burst(
                    flits if length == nflits else flits[:length], cycle)
                self._tx_busy_until = cycle + length
                if length < nflits:
                    self._be_flits.extend(flits[length:])
                self._ctr_be_flits_sent.value += length
                self._ctr_be_packets_sent.value += 1
                return
        self.to_network.send(flits[0])
        self._be_flits.extend(flits[1:])
        self._ctr_be_flits_sent.value += 1
        self._ctr_be_packets_sent.value += 1

    def _refresh_slot_cache(self) -> None:
        """Rebuild the slot->owner and slot->run caches from the slot table.

        Runs only when ``SlotTable.version`` moved (a reservation changed),
        so the per-cycle GT path reads two flat lists instead of calling
        ``owner()`` and re-deriving the consecutive-slot run every packet.
        """
        owners, runs = self.slot_table.owner_runs()
        self._slot_owners = owners
        self._slot_runs[:] = runs
        self._slot_cache_version = self.slot_table.version

    def _consecutive_slots(self, owner: int, start_slot: int) -> int:
        """Number of consecutive slots (starting at ``start_slot``) owned by
        ``owner``; bounds the length of a GT packet."""
        run = 0
        for offset in range(self.num_slots):
            slot = (start_slot + offset) % self.num_slots
            if self.slot_table.owner(slot) == owner:
                run += 1
            else:
                break
        return max(run, 1)

    def _form_packet(self, channel: Channel, gt: bool, cycle: int,
                     max_payload: int) -> Packet:
        """Packetization (the Pck block of Figure 2).

        "Once a queue is selected, a packet containing the largest possible
        amount of credits and data will be produced." (Section 4.1)
        """
        payload_words = min(channel.sendable, max_payload)
        payload = channel.source_queue.pop_many(payload_words)
        channel.consume_space(len(payload))
        credits = channel.take_credits(MAX_HEADER_CREDITS)
        header = PacketHeader(path=channel.regs.path,
                              remote_qid=channel.regs.remote_qid,
                              credits=credits,
                              is_gt=gt,
                              flush=channel.flush_pending,
                              channel_key=(self.name, channel.index))
        packet = Packet(header, payload, injected_cycle=cycle)
        channel.note_words_sent(len(payload))
        channel._ctr_words_sent.value += len(payload)
        channel._ctr_packets_sent.value += 1
        channel._ctr_credits_sent.value += credits
        self._ctr_words_sent.value += len(payload)
        self._ctr_credits_sent.value += credits
        if not payload:
            self._ctr_credit_only_packets.value += 1
        self._hist_payload_words.add(len(payload))
        if self.tracer.enabled:
            self.tracer.record(self.sim.now, self.name, "packet_formed",
                               packet=packet.packet_id,
                               channel=channel.index, gt=gt,
                               words=len(payload), credits=credits)
        return packet

    # ------------------------------------------------------------ registers
    def write_register(self, address: int, value: int) -> None:
        """Memory-mapped register write (the CNIP view, Section 4.3)."""
        if address >= NI_INFO_BASE:
            raise RegisterError(
                f"{self.name}: address 0x{address:x} is read-only")
        if address >= SLOT_TABLE_BASE:
            slot = address - SLOT_TABLE_BASE
            if slot >= self.num_slots:
                raise RegisterError(
                    f"{self.name}: slot {slot} out of range")
            if value == 0:
                self.slot_table.release(slot)
            else:
                channel_index = value - 1
                self.channel(channel_index)  # bounds check
                self.slot_table.release(slot)
                self.slot_table.reserve(slot, channel_index)
            self.notify_active()
            return
        channel_index, register = divmod(address, CHANNEL_REG_STRIDE)
        channel = self.channel(channel_index)
        if register == REG_CTRL:
            channel.regs.enabled = bool(value & CTRL_ENABLE)
            channel.regs.gt = bool(value & CTRL_GT)
        elif register == REG_PATH:
            channel.regs.path = decode_path(value)
        elif register == REG_REMOTE_QID:
            channel.regs.remote_qid = int(value)
        elif register == REG_SPACE:
            channel.space = int(value)
        elif register == REG_DATA_THRESHOLD:
            channel.regs.data_threshold = int(value)
        elif register == REG_CREDIT_THRESHOLD:
            channel.regs.credit_threshold = int(value)
        elif register == REG_FLUSH:
            if value:
                channel.request_flush()
        elif register == REG_STATUS:
            raise RegisterError(f"{self.name}: REG_STATUS is read-only")
        else:  # pragma: no cover - unreachable with valid stride
            raise RegisterError(f"{self.name}: unknown register {register}")
        # Any channel register write may raise eligibility (enable, GT->BE
        # flip, threshold drop, space refill): mark the channel ready so the
        # BE scheduler re-examines it.
        self._be_ready[channel_index] = None
        self.notify_active()
        self.tracer.record(self.sim.now, self.name, "register_write",
                           address=address, value=value)

    def read_register(self, address: int) -> int:
        if address >= NI_INFO_BASE:
            info = address - NI_INFO_BASE
            if info == INFO_NUM_CHANNELS:
                return self.num_channels
            if info == INFO_NUM_SLOTS:
                return self.num_slots
            if info == INFO_NUM_PORTS:
                return len(self.ports)
            raise RegisterError(f"{self.name}: unknown info register {info}")
        if address >= SLOT_TABLE_BASE:
            slot = address - SLOT_TABLE_BASE
            if slot >= self.num_slots:
                raise RegisterError(f"{self.name}: slot {slot} out of range")
            owner = self.slot_table.owner(slot)
            return 0 if owner is None else int(owner) + 1
        channel_index, register = divmod(address, CHANNEL_REG_STRIDE)
        channel = self.channel(channel_index)
        if register == REG_CTRL:
            return encode_ctrl(channel.regs.enabled, channel.regs.gt)
        if register == REG_PATH:
            return encode_path(channel.regs.path)
        if register == REG_REMOTE_QID:
            return channel.regs.remote_qid
        if register == REG_SPACE:
            return channel.space
        if register == REG_DATA_THRESHOLD:
            return channel.regs.data_threshold
        if register == REG_CREDIT_THRESHOLD:
            return channel.regs.credit_threshold
        if register == REG_FLUSH:
            return 1 if channel.flush_pending else 0
        if register == REG_STATUS:
            return channel.status_word
        raise RegisterError(f"{self.name}: unknown register {register}")

    # ------------------------------------------------------------ reporting
    def queue_words_total(self) -> int:
        """Total queue capacity in words (area model input)."""
        return sum(ch.source_queue.capacity + ch.dest_queue.capacity
                   for ch in self.channels)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"NIKernel({self.name}, channels={self.num_channels}, "
                f"slots={self.num_slots})")
