"""The assembled network interface: kernel plus shells.

:class:`NetworkInterface` is a convenience container matching Figure 1: one
NI kernel, its kernel ports, and the shells plugged onto those ports.  The
design-time generator (:mod:`repro.design.generator`) builds these from an
instance specification; tests and examples can also assemble them by hand.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.kernel import NIKernel
from repro.core.port import NIPort
from repro.sim.clock import Clock, ClockedComponent
from repro.sim.engine import Simulator


class NetworkInterface:
    """An NI instance: kernel + ports + shells."""

    def __init__(self, name: str, kernel: NIKernel) -> None:
        self.name = name
        self.kernel = kernel
        #: Shells and adapters by name (connection shells, master/slave
        #: shells, config shells, CNIP slaves ...).
        self.shells: Dict[str, object] = {}
        #: Clock domain of each IP-side port (ports may run at different
        #: frequencies; the kernel runs at the network flit clock).
        self.port_clocks: Dict[str, Clock] = {}

    # ----------------------------------------------------------------- ports
    def port(self, name: str) -> NIPort:
        return self.kernel.port(name)

    @property
    def ports(self) -> Dict[str, NIPort]:
        return dict(self.kernel.ports)

    # ---------------------------------------------------------------- shells
    def add_shell(self, name: str, shell: object,
                  clock: Optional[Clock] = None) -> object:
        """Register a shell; if it is clocked and a clock is given, drive it."""
        if name in self.shells:
            raise ValueError(f"NI {self.name}: duplicate shell name {name!r}")
        self.shells[name] = shell
        if clock is not None and isinstance(shell, ClockedComponent):
            clock.add_component(shell)
        return shell

    def shell(self, name: str):
        try:
            return self.shells[name]
        except KeyError as exc:
            raise KeyError(f"NI {self.name}: unknown shell {name!r}") from exc

    # ------------------------------------------------------------- reporting
    def describe(self) -> Dict[str, object]:
        """A printable summary of the instance (used by examples and docs)."""
        return {
            "name": self.name,
            "channels": self.kernel.num_channels,
            "slots": self.kernel.num_slots,
            "ports": {name: port.channel_indices
                      for name, port in self.kernel.ports.items()},
            "shells": sorted(self.shells),
            "queue_words": self.kernel.queue_words_total(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"NetworkInterface({self.name}, ports={len(self.kernel.ports)}, "
                f"channels={self.kernel.num_channels})")
