"""Instance specifications.

A :class:`NoCSpec` describes the topology and every NI instance; a
:class:`NISpec` describes one NI: its ports, the connections (channels) each
port supports, queue sizes, shells and port clock frequencies.  These are the
parameters the paper's XML description fixes at design time.

:func:`reference_ni_spec` reproduces the instance the paper synthesizes in
Section 5: a kernel with an 8-slot STU and 4 ports having 1, 1, 2 and 4
channels, all queues 32-bit wide and 8-word deep; one configuration port, two
master ports (one offering narrowcast) and one slave port (multi-connection).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.network.routing import ROUTING_STRATEGIES
from repro.network.topology import TOPOLOGY_FACTORIES

#: Port kinds.
PORT_KINDS = ("master", "slave", "config")
#: Shells that may be attached to a port at design time.
PORT_SHELLS = ("p2p", "narrowcast", "multicast", "multiconnection", "config",
               None)
#: Supported IP protocols for the adapter shells.
PORT_PROTOCOLS = ("dtl", "axi")


class SpecError(ValueError):
    """Raised for inconsistent instance specifications."""


@dataclass
class ChannelSpec:
    """One connection (channel) supported by a port."""

    source_queue_words: int = 8
    dest_queue_words: int = 8

    def __post_init__(self) -> None:
        if self.source_queue_words <= 0 or self.dest_queue_words <= 0:
            raise SpecError("queue sizes must be positive")


@dataclass
class PortSpec:
    """One NI port: kind, protocol, shell and its channels."""

    name: str
    kind: str = "master"
    protocol: str = "dtl"
    shell: Optional[str] = "p2p"
    channels: List[ChannelSpec] = field(default_factory=lambda: [ChannelSpec()])
    clock_mhz: float = 500.0

    def __post_init__(self) -> None:
        if self.kind not in PORT_KINDS:
            raise SpecError(f"port {self.name}: unknown kind {self.kind!r}")
        if self.shell not in PORT_SHELLS:
            raise SpecError(f"port {self.name}: unknown shell {self.shell!r}")
        if self.protocol not in PORT_PROTOCOLS:
            raise SpecError(f"port {self.name}: unknown protocol {self.protocol!r}")
        if not self.channels:
            raise SpecError(f"port {self.name}: needs at least one channel")
        if self.clock_mhz <= 0:
            raise SpecError(f"port {self.name}: clock must be positive")

    @property
    def num_channels(self) -> int:
        return len(self.channels)


@dataclass
class NISpec:
    """One network interface instance."""

    name: str
    router: object = 0
    num_slots: int = 8
    be_arbiter: str = "round_robin"
    max_packet_words: int = 23
    ports: List[PortSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_slots <= 0:
            raise SpecError(f"NI {self.name}: slot table must have slots")
        names = [p.name for p in self.ports]
        if len(set(names)) != len(names):
            raise SpecError(f"NI {self.name}: duplicate port names")

    @property
    def num_ports(self) -> int:
        return len(self.ports)

    @property
    def num_channels(self) -> int:
        return sum(p.num_channels for p in self.ports)

    def queue_words_total(self) -> int:
        return sum(c.source_queue_words + c.dest_queue_words
                   for p in self.ports for c in p.channels)

    def port(self, name: str) -> PortSpec:
        for port in self.ports:
            if port.name == name:
                return port
        raise SpecError(f"NI {self.name}: unknown port {name!r}")


@dataclass
class NoCSpec:
    """A whole NoC instance: topology plus its NIs.

    ``topology`` names a factory of the topology registry
    (:data:`repro.network.topology.TOPOLOGY_FACTORIES`: ``mesh``, ``ring``,
    ``single``, ``torus``, ``double_ring``, ``tree``, ``custom``, plus any
    user-registered kind); ``topology_params`` carries that factory's
    keyword arguments (e.g. ``{"num_routers": 5}`` for a ring or the
    node/edge lists of a custom graph).  When ``topology_params`` is empty,
    the legacy ``rows`` / ``cols`` encoding is used for the three seed
    kinds, so old specs and XML files elaborate unchanged.

    ``routing`` is a registered strategy name (``auto`` / ``xy`` /
    ``shortest`` / ``torus``) or a
    :class:`~repro.network.routing.RoutingStrategy` instance.
    """

    name: str = "aethereal"
    topology: str = "mesh"
    rows: int = 1
    cols: int = 2
    num_slots: int = 8
    be_buffer_flits: int = 8
    routing: object = "auto"
    #: TDMA slot allocation policy: ``"spread"`` (even spacing, lowest
    #: jitter) or ``"contiguous"`` (consecutive runs — longer packets,
    #: lower header overhead, burst-forwardable).
    slot_policy: str = "spread"
    topology_params: Dict[str, object] = field(default_factory=dict)
    nis: List[NISpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.topology not in TOPOLOGY_FACTORIES:
            known = ", ".join(sorted(TOPOLOGY_FACTORIES))
            raise SpecError(
                f"unknown topology {self.topology!r} (registered: {known})")
        if (isinstance(self.routing, str)
                and self.routing not in ROUTING_STRATEGIES):
            known = ", ".join(sorted(ROUTING_STRATEGIES))
            raise SpecError(
                f"unknown routing {self.routing!r} (registered: {known}; "
                "or pass a RoutingStrategy instance)")
        names = [ni.name for ni in self.nis]
        if len(set(names)) != len(names):
            raise SpecError("duplicate NI names in the NoC spec")

    def ni(self, name: str) -> NISpec:
        for ni in self.nis:
            if ni.name == name:
                return ni
        raise SpecError(f"unknown NI {name!r}")

    @property
    def num_nis(self) -> int:
        return len(self.nis)


def reference_ni_spec(name: str = "ni_ref", router: object = 0) -> NISpec:
    """The Section 5 reference instance (0.143 mm^2 in 0.13 um at 500 MHz)."""
    return NISpec(
        name=name,
        router=router,
        num_slots=8,
        ports=[
            PortSpec(name="cfg", kind="config", protocol="dtl", shell="config",
                     channels=[ChannelSpec()]),
            PortSpec(name="m0", kind="master", protocol="dtl", shell="p2p",
                     channels=[ChannelSpec()]),
            PortSpec(name="m1", kind="master", protocol="dtl", shell="narrowcast",
                     channels=[ChannelSpec(), ChannelSpec()]),
            PortSpec(name="s0", kind="slave", protocol="dtl",
                     shell="multiconnection",
                     channels=[ChannelSpec(), ChannelSpec(),
                               ChannelSpec(), ChannelSpec()]),
        ])


def reference_noc_spec() -> NoCSpec:
    """A small two-router NoC carrying two reference NIs (examples/tests)."""
    return NoCSpec(
        name="aethereal_ref",
        topology="mesh",
        rows=1, cols=2,
        nis=[reference_ni_spec("ni0", router=(0, 0)),
             reference_ni_spec("ni1", router=(0, 1))])
