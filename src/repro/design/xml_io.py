"""XML serialization of instance specifications.

The paper's design flow generates VHDL for the NIs and the topology from an
XML description; here the same XML describes the Python instances that
:mod:`repro.design.generator` builds.  The schema is deliberately simple:

.. code-block:: xml

    <noc name="aethereal" topology="mesh" rows="1" cols="2" slots="8">
      <ni name="ni0" router="0,0" slots="8" arbiter="round_robin">
        <port name="m0" kind="master" protocol="dtl" shell="p2p" clock_mhz="200">
          <channel source_queue="8" dest_queue="8"/>
        </port>
      </ni>
    </noc>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import List, Union

from repro.design.spec import ChannelSpec, NISpec, NoCSpec, PortSpec, SpecError
from repro.network.routing import RouteError
from repro.network.topology import Topology


def _router_to_str(router: object) -> str:
    if isinstance(router, tuple):
        return ",".join(str(x) for x in router)
    return str(router)


def _atom_from_str(text: str) -> Union[int, str]:
    try:
        return int(text)
    except ValueError:
        return text


def _router_from_str(text: str) -> Union[int, str, tuple]:
    if "," in text:
        return tuple(_atom_from_str(x) for x in text.split(","))
    return _atom_from_str(text)


def _scalar_from_str(text: str) -> Union[int, float, str]:
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


#: Attribute-value types a custom-topology node attribute may carry in XML.
#: ``NoneType`` covers factory-produced attrs like the tree root's
#: ``parent=None``.
_ATTR_TYPES = {"int": int, "float": float, "str": str,
               "NoneType": lambda text: None}


def _topology_params_to_xml(root: ET.Element, params: dict) -> None:
    """Serialize ``NoCSpec.topology_params`` as a ``<topology>`` child.

    Scalar parameters become attributes; the ``nodes`` / ``edges`` lists of
    a custom topology become ``<node>`` / ``<edge>`` children, with node
    attributes as typed ``<attr>`` grandchildren.
    """
    topo_el = ET.SubElement(root, "topology")
    for key, value in sorted(params.items()):
        if key in ("nodes", "edges"):
            continue
        topo_el.set(key, str(value))
    for entry in params.get("nodes", ()):
        node, attrs = Topology.split_node_entry(entry)
        encoded = _router_to_str(node)
        if _router_from_str(encoded) != node:
            # A string id like "2" or "a,b" would come back retyped as an
            # int/tuple; refuse rather than silently corrupt node identity.
            raise SpecError(
                f"custom node id {node!r} does not survive the XML "
                f"encoding (reads back as {_router_from_str(encoded)!r}); "
                "use ids that are ints, int tuples, or strings that do not "
                "look like numbers and contain no commas")
        node_el = ET.SubElement(topo_el, "node", {"id": encoded})
        for key, value in sorted(attrs.items(), key=lambda kv: kv[0]):
            kind = type(value).__name__
            if kind not in _ATTR_TYPES:
                raise SpecError(
                    f"node {node!r}: attribute {key!r} has unserializable "
                    f"type {kind!r} (use int, float, str or None)")
            ET.SubElement(node_el, "attr",
                          {"key": key, "value": str(value), "type": kind})
    for a, b in params.get("edges", ()):
        ET.SubElement(topo_el, "edge",
                      {"a": _router_to_str(a), "b": _router_to_str(b)})


def _topology_params_from_xml(topo_el: ET.Element) -> dict:
    params: dict = {key: _scalar_from_str(value)
                    for key, value in topo_el.attrib.items()}
    nodes = []
    for node_el in topo_el.findall("node"):
        node = _router_from_str(node_el.get("id", "0"))
        attrs = {}
        for attr_el in node_el.findall("attr"):
            convert = _ATTR_TYPES.get(attr_el.get("type", "str"), str)
            attrs[attr_el.get("key", "")] = convert(attr_el.get("value", ""))
        nodes.append((node, attrs) if attrs else node)
    edges = [(_router_from_str(edge_el.get("a", "0")),
              _router_from_str(edge_el.get("b", "0")))
             for edge_el in topo_el.findall("edge")]
    if nodes:
        # An edge-free single-node custom topology is valid: keep the
        # (possibly empty) edge list whenever nodes are present so the
        # custom factory receives both arguments.
        params["nodes"] = nodes
        params["edges"] = edges
    elif edges:
        params["edges"] = edges
    return params


def to_xml(spec: NoCSpec) -> str:
    """Serialize a NoC spec to an XML string."""
    if isinstance(spec.routing, str):
        routing = spec.routing
    else:
        # A strategy instance must be losslessly nameable (TableRouting
        # tables, explicit torus dimensions etc. cannot ride in a name).
        try:
            routing = spec.routing.spec_name()
        except RouteError as exc:
            raise SpecError(str(exc)) from None
    root = ET.Element("noc", {
        "name": spec.name,
        "topology": spec.topology,
        "rows": str(spec.rows),
        "cols": str(spec.cols),
        "slots": str(spec.num_slots),
        "be_buffer_flits": str(spec.be_buffer_flits),
        "routing": routing,
    })
    if spec.topology_params:
        _topology_params_to_xml(root, spec.topology_params)
    for ni in spec.nis:
        ni_el = ET.SubElement(root, "ni", {
            "name": ni.name,
            "router": _router_to_str(ni.router),
            "slots": str(ni.num_slots),
            "arbiter": ni.be_arbiter,
            "max_packet_words": str(ni.max_packet_words),
        })
        for port in ni.ports:
            port_el = ET.SubElement(ni_el, "port", {
                "name": port.name,
                "kind": port.kind,
                "protocol": port.protocol,
                "shell": port.shell if port.shell else "none",
                "clock_mhz": str(port.clock_mhz),
            })
            for channel in port.channels:
                ET.SubElement(port_el, "channel", {
                    "source_queue": str(channel.source_queue_words),
                    "dest_queue": str(channel.dest_queue_words),
                })
    return ET.tostring(root, encoding="unicode")


def from_xml(text: str) -> NoCSpec:
    """Parse a NoC spec from an XML string (inverse of :func:`to_xml`)."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise SpecError(f"malformed XML: {exc}") from exc
    if root.tag != "noc":
        raise SpecError(f"expected <noc> root element, got <{root.tag}>")
    nis: List[NISpec] = []
    for ni_el in root.findall("ni"):
        ports: List[PortSpec] = []
        for port_el in ni_el.findall("port"):
            channels = [ChannelSpec(
                source_queue_words=int(ch.get("source_queue", "8")),
                dest_queue_words=int(ch.get("dest_queue", "8")))
                for ch in port_el.findall("channel")]
            if not channels:
                channels = [ChannelSpec()]
            shell = port_el.get("shell", "p2p")
            ports.append(PortSpec(
                name=port_el.get("name", "port"),
                kind=port_el.get("kind", "master"),
                protocol=port_el.get("protocol", "dtl"),
                shell=None if shell == "none" else shell,
                channels=channels,
                clock_mhz=float(port_el.get("clock_mhz", "500"))))
        nis.append(NISpec(
            name=ni_el.get("name", "ni"),
            router=_router_from_str(ni_el.get("router", "0")),
            num_slots=int(ni_el.get("slots", "8")),
            be_arbiter=ni_el.get("arbiter", "round_robin"),
            max_packet_words=int(ni_el.get("max_packet_words", "23")),
            ports=ports))
    topo_el = root.find("topology")
    params = _topology_params_from_xml(topo_el) if topo_el is not None else {}
    return NoCSpec(
        name=root.get("name", "noc"),
        topology=root.get("topology", "mesh"),
        rows=int(root.get("rows", "1")),
        cols=int(root.get("cols", "1")),
        num_slots=int(root.get("slots", "8")),
        be_buffer_flits=int(root.get("be_buffer_flits", "8")),
        routing=root.get("routing", "auto"),
        topology_params=params,
        nis=nis)
