"""XML serialization of instance specifications.

The paper's design flow generates VHDL for the NIs and the topology from an
XML description; here the same XML describes the Python instances that
:mod:`repro.design.generator` builds.  The schema is deliberately simple:

.. code-block:: xml

    <noc name="aethereal" topology="mesh" rows="1" cols="2" slots="8">
      <ni name="ni0" router="0,0" slots="8" arbiter="round_robin">
        <port name="m0" kind="master" protocol="dtl" shell="p2p" clock_mhz="200">
          <channel source_queue="8" dest_queue="8"/>
        </port>
      </ni>
    </noc>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import List, Union

from repro.design.spec import ChannelSpec, NISpec, NoCSpec, PortSpec, SpecError


def _router_to_str(router: object) -> str:
    if isinstance(router, tuple):
        return ",".join(str(x) for x in router)
    return str(router)


def _router_from_str(text: str) -> Union[int, tuple]:
    if "," in text:
        return tuple(int(x) for x in text.split(","))
    return int(text)


def to_xml(spec: NoCSpec) -> str:
    """Serialize a NoC spec to an XML string."""
    root = ET.Element("noc", {
        "name": spec.name,
        "topology": spec.topology,
        "rows": str(spec.rows),
        "cols": str(spec.cols),
        "slots": str(spec.num_slots),
        "be_buffer_flits": str(spec.be_buffer_flits),
        "routing": spec.routing,
    })
    for ni in spec.nis:
        ni_el = ET.SubElement(root, "ni", {
            "name": ni.name,
            "router": _router_to_str(ni.router),
            "slots": str(ni.num_slots),
            "arbiter": ni.be_arbiter,
            "max_packet_words": str(ni.max_packet_words),
        })
        for port in ni.ports:
            port_el = ET.SubElement(ni_el, "port", {
                "name": port.name,
                "kind": port.kind,
                "protocol": port.protocol,
                "shell": port.shell if port.shell else "none",
                "clock_mhz": str(port.clock_mhz),
            })
            for channel in port.channels:
                ET.SubElement(port_el, "channel", {
                    "source_queue": str(channel.source_queue_words),
                    "dest_queue": str(channel.dest_queue_words),
                })
    return ET.tostring(root, encoding="unicode")


def from_xml(text: str) -> NoCSpec:
    """Parse a NoC spec from an XML string (inverse of :func:`to_xml`)."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise SpecError(f"malformed XML: {exc}") from exc
    if root.tag != "noc":
        raise SpecError(f"expected <noc> root element, got <{root.tag}>")
    nis: List[NISpec] = []
    for ni_el in root.findall("ni"):
        ports: List[PortSpec] = []
        for port_el in ni_el.findall("port"):
            channels = [ChannelSpec(
                source_queue_words=int(ch.get("source_queue", "8")),
                dest_queue_words=int(ch.get("dest_queue", "8")))
                for ch in port_el.findall("channel")]
            if not channels:
                channels = [ChannelSpec()]
            shell = port_el.get("shell", "p2p")
            ports.append(PortSpec(
                name=port_el.get("name", "port"),
                kind=port_el.get("kind", "master"),
                protocol=port_el.get("protocol", "dtl"),
                shell=None if shell == "none" else shell,
                channels=channels,
                clock_mhz=float(port_el.get("clock_mhz", "500"))))
        nis.append(NISpec(
            name=ni_el.get("name", "ni"),
            router=_router_from_str(ni_el.get("router", "0")),
            num_slots=int(ni_el.get("slots", "8")),
            be_arbiter=ni_el.get("arbiter", "round_robin"),
            max_packet_words=int(ni_el.get("max_packet_words", "23")),
            ports=ports))
    return NoCSpec(
        name=root.get("name", "noc"),
        topology=root.get("topology", "mesh"),
        rows=int(root.get("rows", "1")),
        cols=int(root.get("cols", "1")),
        num_slots=int(root.get("slots", "8")),
        be_buffer_flits=int(root.get("be_buffer_flits", "8")),
        routing=root.get("routing", "auto"),
        nis=nis)
