"""Calibrated silicon-area model (Section 5 of the paper).

The paper reports synthesis results in a 0.13 um technology:

* NI kernel (8-slot STU, 4 ports with 1/1/2/4 channels, 8-word 32-bit
  queues): 0.11 mm^2;
* narrowcast shell 0.004 mm^2 (4% of the kernel), multi-connection shell
  0.007 mm^2 (6%), DTL master shell 0.005 mm^2 (5%), DTL slave shell
  0.002 mm^2 (2%), configuration shell 0.01 mm^2;
* example 4-port NI total: 0.11 + 0.01 + 2*0.005 + 0.004 + 0.002 + 0.007 =
  0.143 mm^2.

Since we cannot synthesize silicon here, the model decomposes the kernel area
into per-queue-word, per-channel, per-port, per-slot and fixed contributions,
with coefficients calibrated so the paper's reference instance reproduces the
published figures exactly; other instances scale accordingly (the dominant
term is the custom hardware FIFOs, as the paper notes).  This substitution is
recorded in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.design.spec import NISpec, reference_ni_spec

#: Published reference figures (mm^2, 0.13 um technology).
REFERENCE_KERNEL_AREA_MM2 = 0.110
REFERENCE_TOTAL_AREA_MM2 = 0.143
REFERENCE_FREQUENCY_MHZ = 500.0

#: Published shell areas (mm^2).
SHELL_AREAS_MM2: Dict[str, float] = {
    "narrowcast": 0.004,
    "multiconnection": 0.007,
    "dtl_master": 0.005,
    "dtl_slave": 0.002,
    "config": 0.010,
    # Not reported by the paper; conservative extrapolations used for
    # instances that request them.
    "multicast": 0.005,
    "axi_master": 0.006,
    "axi_slave": 0.003,
    "p2p": 0.000,
}

#: Calibrated kernel coefficients (mm^2).  With the reference instance
#: (8 channels, 16 queues x 8 words = 128 queue words, 4 ports, 8 slots) they
#: sum to exactly 0.110 mm^2:
#:   128*0.0005 + 8*0.003 + 4*0.002 + 8*0.0005 + 0.010 = 0.110
KERNEL_AREA_PER_QUEUE_WORD = 0.0005
KERNEL_AREA_PER_CHANNEL = 0.003
KERNEL_AREA_PER_PORT = 0.002
KERNEL_AREA_PER_SLOT = 0.0005
KERNEL_AREA_BASE = 0.010


@dataclass
class AreaReport:
    """Per-component area breakdown of one NI instance."""

    kernel_mm2: float
    shells_mm2: Dict[str, float] = field(default_factory=dict)

    @property
    def shells_total_mm2(self) -> float:
        return sum(self.shells_mm2.values())

    @property
    def total_mm2(self) -> float:
        return self.kernel_mm2 + self.shells_total_mm2

    def shell_fraction_of_kernel(self, shell: str) -> float:
        return self.shells_mm2[shell] / self.kernel_mm2

    def rows(self) -> list:
        """Printable rows: (component, area mm^2, % of kernel)."""
        out = [("NI kernel", self.kernel_mm2, 100.0)]
        for name, area in self.shells_mm2.items():
            out.append((name, area, 100.0 * area / self.kernel_mm2))
        out.append(("total", self.total_mm2,
                    100.0 * self.total_mm2 / self.kernel_mm2))
        return out


class AreaModel:
    """Area estimation calibrated against the paper's 0.13 um prototype."""

    def __init__(self, technology_nm: float = 130.0) -> None:
        if technology_nm <= 0:
            raise ValueError("technology node must be positive")
        self.technology_nm = technology_nm
        #: First-order constant-field scaling of area with the technology node.
        self.scale = (technology_nm / 130.0) ** 2

    # ----------------------------------------------------------------- kernel
    def kernel_area(self, num_channels: int, queue_words: int, num_ports: int,
                    num_slots: int) -> float:
        """Kernel area in mm^2 from the instance parameters."""
        area = (queue_words * KERNEL_AREA_PER_QUEUE_WORD
                + num_channels * KERNEL_AREA_PER_CHANNEL
                + num_ports * KERNEL_AREA_PER_PORT
                + num_slots * KERNEL_AREA_PER_SLOT
                + KERNEL_AREA_BASE)
        return area * self.scale

    def shell_area(self, shell: str) -> float:
        try:
            return SHELL_AREAS_MM2[shell] * self.scale
        except KeyError as exc:
            raise ValueError(f"unknown shell {shell!r}") from exc

    # -------------------------------------------------------------- instances
    def ni_area(self, spec: NISpec) -> AreaReport:
        """Area report of one NI instance described by ``spec``."""
        kernel = self.kernel_area(num_channels=spec.num_channels,
                                  queue_words=spec.queue_words_total(),
                                  num_ports=spec.num_ports,
                                  num_slots=spec.num_slots)
        shells: Dict[str, float] = {}
        for port in spec.ports:
            # Protocol adapter shell of the port.
            if port.kind == "master":
                adapter = f"{port.protocol}_master"
            elif port.kind == "slave":
                adapter = f"{port.protocol}_slave"
            else:
                adapter = None
            if adapter is not None:
                shells[f"{port.name}:{adapter}"] = self.shell_area(adapter)
            # Connection-type / configuration shell of the port.
            if port.shell and port.shell != "p2p":
                shells[f"{port.name}:{port.shell}"] = self.shell_area(port.shell)
        return AreaReport(kernel_mm2=kernel, shells_mm2=shells)

    def reference_report(self) -> AreaReport:
        """The paper's example 4-port NI (E1 reproduces this table)."""
        return self.ni_area(reference_ni_spec())

    def paper_comparison(self) -> Dict[str, Dict[str, Optional[float]]]:
        """Model versus published numbers for every reported component."""
        report = self.reference_report()
        published = {
            "kernel": REFERENCE_KERNEL_AREA_MM2,
            "narrowcast": SHELL_AREAS_MM2["narrowcast"],
            "multiconnection": SHELL_AREAS_MM2["multiconnection"],
            "dtl_master": SHELL_AREAS_MM2["dtl_master"],
            "dtl_slave": SHELL_AREAS_MM2["dtl_slave"],
            "config": SHELL_AREAS_MM2["config"],
            "total": REFERENCE_TOTAL_AREA_MM2,
        }
        modeled = {
            "kernel": report.kernel_mm2,
            "narrowcast": self.shell_area("narrowcast"),
            "multiconnection": self.shell_area("multiconnection"),
            "dtl_master": self.shell_area("dtl_master"),
            "dtl_slave": self.shell_area("dtl_slave"),
            "config": self.shell_area("config"),
            "total": report.total_mm2,
        }
        return {key: {"paper_mm2": published[key], "model_mm2": modeled[key]}
                for key in published}
