"""Instance generation: build a runnable simulated system from a spec.

This mirrors the paper's XML-to-VHDL generation flow: :func:`build_system`
takes a :class:`~repro.design.spec.NoCSpec` and instantiates the simulator,
the topology, the routers and links, every NI kernel with its channels and
ports, and one clock domain per NI port.  Shells, IP modules and connections
are application-level decisions and are added on top by the examples,
testbenches and experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.config.manager import FunctionalConfigurator
from repro.config.slot_allocation import CentralizedSlotAllocator
from repro.core.kernel import NIKernel
from repro.core.ni import NetworkInterface
from repro.design.spec import NISpec, NoCSpec, SpecError
from repro.network.noc import NoC, NoCBuilder
from repro.network.topology import Topology, make_topology
from repro.sim.batching import FAR_FUTURE, BurstBarrier
from repro.sim.clock import Clock, fuse_clocks
from repro.sim.engine import Simulator
from repro.sim.trace import NULL_TRACER, Tracer


@dataclass
class SystemModel:
    """A generated system: simulator, network and NI instances."""

    spec: NoCSpec
    sim: Simulator
    noc: NoC
    nis: Dict[str, NetworkInterface] = field(default_factory=dict)
    port_clocks: Dict[Tuple[str, str], Clock] = field(default_factory=dict)
    allocator: Optional[CentralizedSlotAllocator] = None
    #: Run-boundary burst barrier shared by every NI kernel: bounded runs
    #: (``run_flit_cycles`` / ``run_ns``) publish their stop cycle here so
    #: no burst is ever in flight when the run ends — observations at run
    #: boundaries see counter totals identical to the per-flit pipeline.
    stop_barrier: BurstBarrier = field(default_factory=BurstBarrier)
    #: True once same-rate clocks were fused into groups (first ``start``).
    _fused: bool = False

    # --------------------------------------------------------------- lookups
    @property
    def kernels(self) -> Dict[str, NIKernel]:
        return {name: ni.kernel for name, ni in self.nis.items()}

    def ni(self, name: str) -> NetworkInterface:
        return self.nis[name]

    def kernel(self, name: str) -> NIKernel:
        return self.nis[name].kernel

    def port_clock(self, ni_name: str, port_name: str) -> Clock:
        return self.port_clocks[(ni_name, port_name)]

    def functional_configurator(self) -> FunctionalConfigurator:
        return FunctionalConfigurator(self.kernels, allocator=self.allocator)

    # --------------------------------------------------------------- running
    def start(self) -> None:
        """Start every clock (idempotent).

        On first start, same-rate port clocks are fused into
        :class:`~repro.sim.clock.ClockGroup` runs — one heap event per
        timestamp instead of one per clock (identical tick order and
        results; only engine event counts shrink).
        """
        if not self._fused:
            self._fused = True
            fuse_clocks([self.noc.flit_clock, *self.port_clocks.values()])
        self.noc.flit_clock.start()
        for clock in self.port_clocks.values():
            clock.start()

    def run_flit_cycles(self, cycles: int) -> None:
        """Run the simulation for ``cycles`` network flit cycles."""
        self.start()
        self._run_bounded(cycles * self.noc.flit_clock.period_ps)

    def run_ns(self, nanoseconds: float) -> None:
        self.start()
        self._run_bounded(int(nanoseconds * 1000))

    def _run_bounded(self, duration_ps: int) -> None:
        """Run for a fixed duration with the stop cycle as a burst barrier.

        The last flit edge of the run is ``(until - epoch) // period`` (an
        edge landing exactly on ``until`` executes), so the first cycle the
        run will never see is one past that.  Publishing it through
        :attr:`stop_barrier` makes kernels truncate bursts that could not
        fully drain inside this run — the trailing cycles go per-flit, and
        every counter equals the per-flit pipeline's value at the boundary.
        """
        clock = self.noc.flit_clock
        until = self.sim.now + duration_ps
        self.stop_barrier.cycle = (until - clock._epoch) // clock.period_ps + 1
        try:
            self.sim.run_for(duration_ps)
        finally:
            self.stop_barrier.cycle = FAR_FUTURE

    def functionally_idle(self) -> bool:
        """True when no component can change workload-visible state.

        Every component is idle — except NI kernels holding GT slot
        reservations, which by contract tick forever to sample
        ``gt_slots_unused``; those count as done once quiescent (nothing in
        flight, see ``NIKernel.is_quiescent``).  Components are scanned even
        on sleeping clocks: under tick gating a clock sleeps whenever no
        component will act *on its own* (a master blocked on a response is
        non-idle yet has a far-future horizon), so "asleep" no longer
        implies "every component idle" the way pure idle-skip did.
        """
        clocks = [self.noc.flit_clock, *self.port_clocks.values()]
        for clock in clocks:
            for component in clock._components:
                if component.is_idle():
                    continue
                quiescent = getattr(component, "is_quiescent", None)
                if quiescent is None or not quiescent():
                    return False
        return True

    def run_until_idle(self, max_flit_cycles: int = 200000,
                       predicate=None) -> int:
        """Run until the simulator is idle; returns elapsed flit cycles.

        "Idle" is engine-level: the event queue drained (every
        activity-driven clock went to sleep), the system became
        :meth:`functionally_idle` (GT systems keep a reservation-sampling
        tick alive forever, so their queue never drains), or the optional
        ``predicate`` returned True between event timestamps.  This replaces
        the seed-era pattern of polling a done-flag in 50-cycle chunks,
        which overshot completion by up to a chunk.  ``max_flit_cycles``
        bounds the run for systems that never quiesce (e.g. always-tick
        mode or infinite traffic patterns).
        """
        self.start()
        period = self.noc.flit_clock.period_ps
        start = self.sim.now
        if predicate is None:
            stop = self.functionally_idle
        else:
            def stop():
                return predicate() or self.functionally_idle()
        self.sim.run_until_idle(until=start + max_flit_cycles * period,
                                predicate=stop)
        return -(-(self.sim.now - start) // period)


def _build_topology(spec: NoCSpec) -> Topology:
    """Instantiate the spec's topology through the factory registry.

    ``topology_params`` carries the factory arguments; when absent the
    legacy ``rows`` / ``cols`` encoding of the three seed kinds applies
    (ring size was historically packed as ``(rows=1, cols=n)``).
    """
    if spec.topology_params:
        return make_topology(spec.topology, **spec.topology_params)
    if spec.topology == "mesh":
        return Topology.mesh(spec.rows, spec.cols)
    if spec.topology == "ring":
        return Topology.ring(max(spec.rows * spec.cols, spec.cols))
    if spec.topology in ("single", "single_router"):
        return Topology.single_router()
    return make_topology(spec.topology)


def build_system(spec: NoCSpec, sim: Optional[Simulator] = None,
                 router_slot_tables: bool = False,
                 strict_gt: bool = True,
                 tracer: Tracer = NULL_TRACER) -> SystemModel:
    """Instantiate a complete simulated system from a NoC specification."""
    sim = sim if sim is not None else Simulator()
    topology = _build_topology(spec)

    builder = NoCBuilder(topology, num_slots=spec.num_slots,
                         be_buffer_flits=spec.be_buffer_flits,
                         router_slot_tables=router_slot_tables,
                         strict_gt=strict_gt,
                         routing_algorithm=spec.routing,
                         tracer=tracer)
    for ni_spec in spec.nis:
        if ni_spec.router not in topology.graph:
            raise SpecError(
                f"NI {ni_spec.name}: router {ni_spec.router!r} is not part of "
                f"the {spec.topology} topology")
        builder.add_ni(ni_spec.name, ni_spec.router)
    noc = builder.build(sim)

    system = SystemModel(spec=spec, sim=sim, noc=noc,
                         allocator=CentralizedSlotAllocator(
                             spec.num_slots,
                             policy=getattr(spec, "slot_policy", "spread")))

    for ni_spec in spec.nis:
        ni = _build_ni(ni_spec, sim, noc, system, tracer)
        system.nis[ni_spec.name] = ni
    return system


def _build_ni(ni_spec: NISpec, sim: Simulator, noc: NoC,
              system: SystemModel,
              tracer: Tracer = NULL_TRACER) -> NetworkInterface:
    kernel = NIKernel(name=ni_spec.name, sim=sim,
                      num_slots=ni_spec.num_slots,
                      max_packet_words=ni_spec.max_packet_words,
                      be_arbiter=ni_spec.be_arbiter,
                      flit_period_ps=noc.flit_clock.period_ps,
                      tracer=tracer)
    kernel._stop_barrier = system.stop_barrier
    ni = NetworkInterface(name=ni_spec.name, kernel=kernel)
    for port_spec in ni_spec.ports:
        port_clock = Clock(sim, port_spec.clock_mhz,
                           name=f"{ni_spec.name}.{port_spec.name}.clk")
        system.port_clocks[(ni_spec.name, port_spec.name)] = port_clock
        ni.port_clocks[port_spec.name] = port_clock
        channel_indices = []
        for channel_spec in port_spec.channels:
            channel = kernel.add_channel(
                source_queue_words=channel_spec.source_queue_words,
                dest_queue_words=channel_spec.dest_queue_words,
                port_clock_period_ps=port_clock.period_ps)
            channel_indices.append(channel.index)
        kernel.add_port(port_spec.name, channel_indices)
    kernel.attach(noc.attachment(ni_spec.name))
    noc.flit_clock.add_component(kernel)
    return ni
