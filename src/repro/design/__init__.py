"""Design-time instantiation: specifications, XML, generation, area and timing.

"The number of ports and their type (i.e., configuration port, master port,
or slave port), the number of connections at each port, memory allocated for
the queues, the level of services per port, and the interface to the IP
modules are all configurable at design (instantiation) time using an XML
description."  (Section 1)

This package provides the specification dataclasses, the XML serialization,
an instance generator that builds runnable simulation systems from a spec,
and the calibrated area/timing models that reproduce the synthesis figures of
Section 5.
"""

from repro.design.area import (
    AreaModel,
    AreaReport,
    REFERENCE_KERNEL_AREA_MM2,
    REFERENCE_TOTAL_AREA_MM2,
)
from repro.design.generator import SystemModel, build_system
from repro.design.spec import (
    ChannelSpec,
    NISpec,
    NoCSpec,
    PortSpec,
    SpecError,
    reference_ni_spec,
    reference_noc_spec,
)
from repro.design.timing import LatencyModel, TimingModel
from repro.design.xml_io import from_xml, to_xml

__all__ = [
    "AreaModel",
    "AreaReport",
    "ChannelSpec",
    "LatencyModel",
    "NISpec",
    "NoCSpec",
    "PortSpec",
    "REFERENCE_KERNEL_AREA_MM2",
    "REFERENCE_TOTAL_AREA_MM2",
    "SpecError",
    "SystemModel",
    "TimingModel",
    "build_system",
    "from_xml",
    "reference_ni_spec",
    "reference_noc_spec",
    "to_xml",
]
