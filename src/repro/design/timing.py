"""Frequency, bandwidth and latency-overhead models (Section 5).

The prototype NI's router side runs at 500 MHz and "delivers a bandwidth
toward the router of 16 Gbit/s in each direction" (32-bit links).  The
latency overhead introduced by the NI is:

* 2 cycles in the DTL master shell (sequentialization, part of packetization);
* 0 to 2 cycles in the narrowcast and multicast shells (instance dependent);
* 1 to 3 cycles in the NI kernel (data aligned to a 3-word flit boundary);
* 2 cycles for the clock-domain crossing;

which the paper sums to an overhead between 4 and 10 cycles, pipelined to
maximize throughput, versus e.g. 47 instructions for packetization alone in a
software protocol stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

#: Published prototype figures.
PROTOTYPE_FREQUENCY_MHZ = 500.0
PROTOTYPE_LINK_BITS = 32
PROTOTYPE_BANDWIDTH_GBIT_S = 16.0
PAPER_LATENCY_RANGE_CYCLES = (4, 10)
SOFTWARE_PACKETIZATION_INSTRUCTIONS = 47


@dataclass
class LatencyComponent:
    """One stage of the NI latency overhead, as a (min, max) cycle range."""

    name: str
    min_cycles: int
    max_cycles: int

    def __post_init__(self) -> None:
        if self.min_cycles < 0 or self.max_cycles < self.min_cycles:
            raise ValueError(f"invalid latency range for {self.name}")


@dataclass
class LatencyModel:
    """The per-stage latency overhead breakdown of Section 5."""

    components: Tuple[LatencyComponent, ...] = (
        LatencyComponent("master_shell_sequentialization", 2, 2),
        LatencyComponent("narrowcast_multicast_shell", 0, 2),
        LatencyComponent("kernel_flit_alignment", 1, 3),
        LatencyComponent("clock_domain_crossing", 2, 2),
    )

    def breakdown(self) -> Dict[str, Tuple[int, int]]:
        return {c.name: (c.min_cycles, c.max_cycles) for c in self.components}

    @property
    def min_cycles(self) -> int:
        return sum(c.min_cycles for c in self.components)

    @property
    def max_cycles(self) -> int:
        return sum(c.max_cycles for c in self.components)

    @property
    def paper_range(self) -> Tuple[int, int]:
        """The 4-10 cycle range the paper quotes for the same breakdown."""
        return PAPER_LATENCY_RANGE_CYCLES

    def within_paper_range(self, measured_cycles: int) -> bool:
        low, high = self.paper_range
        return low <= measured_cycles <= high


@dataclass
class TimingModel:
    """Clock frequency and bandwidth model of the NI router side."""

    frequency_mhz: float = PROTOTYPE_FREQUENCY_MHZ
    link_bits: int = PROTOTYPE_LINK_BITS
    latency: LatencyModel = field(default_factory=LatencyModel)

    @property
    def period_ns(self) -> float:
        return 1e3 / self.frequency_mhz

    @property
    def raw_bandwidth_gbit_s(self) -> float:
        """Raw link bandwidth toward the router, per direction."""
        return self.link_bits * self.frequency_mhz / 1000.0

    def slot_bandwidth_gbit_s(self, slots_reserved: int, num_slots: int,
                              header_words: int = 1,
                              flit_words: int = 3) -> float:
        """Effective payload bandwidth of a GT channel.

        ``slots_reserved`` slots out of ``num_slots`` give a share of the raw
        link bandwidth; each slot (flit) loses ``header_words`` of its
        ``flit_words`` to the packet header when every flit starts a packet
        (worst case).  Consecutive slot reservations amortize the header.
        """
        if not 0 <= slots_reserved <= num_slots:
            raise ValueError("slots_reserved outside the slot table")
        share = slots_reserved / num_slots
        payload_fraction = (flit_words - header_words) / flit_words
        return self.raw_bandwidth_gbit_s * share * payload_fraction

    def cycles_to_ns(self, cycles: int) -> float:
        return cycles * self.period_ns

    def software_stack_latency_cycles(self, instructions: int =
                                      SOFTWARE_PACKETIZATION_INSTRUCTIONS,
                                      cycles_per_instruction: float = 1.0
                                      ) -> float:
        """Latency of a software protocol stack executing on an embedded core
        clocked at the NI frequency (the paper's [4] comparison point)."""
        return instructions * cycles_per_instruction
