"""TDM slot tables.

The guaranteed-throughput service of Aethereal reserves TDM slots: an NI slot
table of size ``S`` maps slot indices onto channels, and a channel that
injects a flit in slot ``s`` owns link ``i`` along its path in slot
``(s + i) mod S`` (pipelined time-division-multiplexed circuits, Section 2).

Two flavours are provided:

* :class:`SlotTable` — the NI-side table (slot -> channel index), also used by
  the centralized slot allocator as its global view of every link;
* :class:`RouterSlotTable` — the per-router table keyed by (output port, slot)
  that routers keep in the *distributed* configuration model, where they
  accept or reject tentative reservations (Section 3).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple


class SlotTableError(ValueError):
    """Raised for conflicting or out-of-range slot reservations."""


class SlotTable:
    """Maps each of ``size`` slots to an owner (channel index) or ``None``."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise SlotTableError(f"slot table size must be positive, got {size}")
        self.size = size
        self._entries: List[Optional[Hashable]] = [None] * size
        self._reserved = 0
        #: Bumped on every mutation; hot-path readers (the NI kernel's
        #: slot->channel cache) compare it instead of re-reading the table
        #: every cycle.  See PERFORMANCE.md ("hot path").
        self.version = 0

    # -------------------------------------------------------------- mutation
    def reserve(self, slot: int, owner: Hashable) -> None:
        """Reserve ``slot`` for ``owner``; conflicts raise."""
        self._check_slot(slot)
        if owner is None:
            raise SlotTableError("owner must not be None")
        current = self._entries[slot]
        if current is not None and current != owner:
            raise SlotTableError(
                f"slot {slot} already reserved for {current!r}, "
                f"cannot reserve for {owner!r}")
        if current is None:
            self._reserved += 1
        self._entries[slot] = owner
        self.version += 1

    def release(self, slot: int) -> None:
        self._check_slot(slot)
        if self._entries[slot] is not None:
            self._reserved -= 1
        self._entries[slot] = None
        self.version += 1

    def release_owner(self, owner: Hashable) -> int:
        """Release every slot owned by ``owner``; returns how many were freed."""
        freed = 0
        for slot, current in enumerate(self._entries):
            if current == owner:
                self._entries[slot] = None
                freed += 1
        self._reserved -= freed
        self.version += 1
        return freed

    def clear(self) -> None:
        self._entries[:] = [None] * self.size
        self._reserved = 0
        self.version += 1

    # --------------------------------------------------------------- queries
    def owner(self, slot: int) -> Optional[Hashable]:
        self._check_slot(slot)
        return self._entries[slot]

    def is_free(self, slot: int) -> bool:
        return self.owner(slot) is None

    @property
    def has_reservations(self) -> bool:
        """True when any slot is reserved (O(1); used by kernel idle-skip)."""
        return self._reserved > 0

    def slots_of(self, owner: Hashable) -> List[int]:
        return [s for s, o in enumerate(self._entries) if o == owner]

    def free_slots(self) -> List[int]:
        return [s for s, o in enumerate(self._entries) if o is None]

    def occupancy(self) -> float:
        """Fraction of slots reserved."""
        return self._reserved / self.size

    def entries(self) -> List[Optional[Hashable]]:
        return list(self._entries)

    def owner_runs(self) -> Tuple[List[Optional[Hashable]], List[int]]:
        """``(owners, runs)``: each slot's owner and its consecutive run.

        ``runs[s]`` is the number of consecutive slots starting at ``s``
        (wrapping around the table) held by ``owners[s]``; free slots get a
        run of 1.  A run bounds how many flits one GT packet injected at
        slot ``s`` may occupy before the table's ownership changes — the
        quantity both the NI packetizer and the batched pipeline's
        burst-length computation need.  Callers cache the result keyed on
        :attr:`version`.
        """
        owners = list(self._entries)
        size = self.size
        runs = [1] * size
        for slot in range(size):
            owner = owners[slot]
            if owner is None:
                continue
            run = 0
            for offset in range(size):
                if owners[(slot + offset) % size] == owner:
                    run += 1
                else:
                    break
            runs[slot] = max(run, 1)
        return owners, runs

    def copy(self) -> "SlotTable":
        table = SlotTable(self.size)
        table._entries = list(self._entries)
        table._reserved = self._reserved
        return table

    # --------------------------------------------------------------- service
    def max_gap(self, owner: Hashable) -> Optional[int]:
        """Largest distance between consecutive reservations of ``owner``.

        This is the jitter bound of Section 2 ("jitter is given by the maximum
        distance between two slot reservations"), measured in slots.  Returns
        ``None`` when the owner has no reservations.
        """
        slots = self.slots_of(owner)
        if not slots:
            return None
        if len(slots) == 1:
            return self.size
        gaps = []
        for i, slot in enumerate(slots):
            nxt = slots[(i + 1) % len(slots)]
            gap = (nxt - slot) % self.size
            if gap == 0:
                gap = self.size
            gaps.append(gap)
        return max(gaps)

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.size:
            raise SlotTableError(
                f"slot {slot} out of range for table of size {self.size}")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"SlotTable(size={self.size}, entries={self._entries})"


class RouterSlotTable:
    """Per-router slot bookkeeping keyed by ``(output port, slot)``.

    Used in the distributed configuration model (Section 3): "information
    about the slots is maintained in the routers, which also accept or reject
    a tentative slot allocation."
    """

    def __init__(self, num_outputs: int, num_slots: int) -> None:
        if num_outputs <= 0 or num_slots <= 0:
            raise SlotTableError("router slot table dimensions must be positive")
        self.num_outputs = num_outputs
        self.num_slots = num_slots
        self._entries: Dict[Tuple[int, int], Hashable] = {}

    def try_reserve(self, output: int, slot: int, owner: Hashable) -> bool:
        """Tentatively reserve; returns False (reject) on conflict."""
        self._check(output, slot)
        key = (output, slot)
        current = self._entries.get(key)
        if current is not None and current != owner:
            return False
        self._entries[key] = owner
        return True

    def reserve(self, output: int, slot: int, owner: Hashable) -> None:
        if not self.try_reserve(output, slot, owner):
            raise SlotTableError(
                f"output {output} slot {slot} already owned by "
                f"{self._entries[(output, slot)]!r}")

    def release(self, output: int, slot: int) -> None:
        self._check(output, slot)
        self._entries.pop((output, slot), None)

    def release_owner(self, owner: Hashable) -> int:
        keys = [k for k, o in self._entries.items() if o == owner]
        for key in keys:
            del self._entries[key]
        return len(keys)

    def owner(self, output: int, slot: int) -> Optional[Hashable]:
        self._check(output, slot)
        return self._entries.get((output, slot))

    def occupancy(self) -> float:
        return len(self._entries) / (self.num_outputs * self.num_slots)

    def reservations(self) -> Dict[Tuple[int, int], Hashable]:
        return dict(self._entries)

    def _check(self, output: int, slot: int) -> None:
        if not 0 <= output < self.num_outputs:
            raise SlotTableError(f"output {output} out of range")
        if not 0 <= slot < self.num_slots:
            raise SlotTableError(f"slot {slot} out of range")
