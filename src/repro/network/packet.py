"""Packets, flits and packet headers.

Sizing follows the paper's prototype:

* links are 32 bits wide and run at 500 MHz (16 Gbit/s raw per direction);
* a flit is 3 words, so one flit occupies one TDM slot (3 link cycles);
* a packet starts with a one-word header carrying the source route, the
  remote destination-queue id, and piggybacked credits (Section 4.1);
* packets have a bounded maximum length so a single channel cannot occupy a
  link indefinitely.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

#: Link width in bits (the prototype uses 32-bit links).
WORD_BITS = 32
#: Words per flit ("data needs to be aligned to a 3 word flit boundary").
FLIT_WORDS = 3
#: Link cycles consumed by one flit (one word per cycle on a 32-bit link).
CYCLES_PER_FLIT = FLIT_WORDS
#: Router-side clock of the prototype.
NETWORK_FREQUENCY_MHZ = 500.0
#: Piggybacked credits are bounded by the width of the header credit field.
MAX_HEADER_CREDITS = 31
#: Default maximum packet payload (words); keeps links from being monopolised.
DEFAULT_MAX_PACKET_WORDS = 8 * FLIT_WORDS - 1


class PacketError(ValueError):
    """Raised for malformed packets (empty route, oversized credit field...)."""


@dataclass(slots=True)
class PacketHeader:
    """The one-word packet header.  Slotted: one header exists per packet on
    the hot path, and the engine creates millions of them.

    Attributes
    ----------
    path:
        Source route: the output port to take at each router along the path,
        including the final local port toward the destination NI.
    remote_qid:
        Index of the destination queue (channel) at the remote NI.
    credits:
        Piggybacked credits for the reverse direction of the same connection.
    is_gt:
        True when the packet travels on reserved slots (guaranteed
        throughput); False for best effort.
    flush:
        Set when the packet was emitted due to a flush request (threshold
        override); carried in the header per Section 4.1.
    channel_key:
        ``(source NI name, source channel index)`` — used by routers with slot
        tables (distributed configuration) and by traces; not counted as
        header payload bits.
    """

    path: Tuple[int, ...]
    remote_qid: int
    credits: int = 0
    is_gt: bool = False
    flush: bool = False
    channel_key: Optional[Tuple[str, int]] = None

    def __post_init__(self) -> None:
        if self.remote_qid < 0:
            raise PacketError(f"negative remote queue id {self.remote_qid}")
        if not 0 <= self.credits <= MAX_HEADER_CREDITS:
            raise PacketError(
                f"credits {self.credits} outside header field range "
                f"[0, {MAX_HEADER_CREDITS}]")
        self.path = tuple(self.path)


class Packet:
    """A packet: one header word plus ``payload`` data words."""

    __slots__ = ("header", "payload", "injected_cycle", "delivered_cycle",
                 "_route_pos", "packet_id", "poisoned")

    _next_id = 0

    def __init__(self, header: PacketHeader, payload: Optional[List[int]] = None,
                 injected_cycle: Optional[int] = None) -> None:
        self.header = header
        self.payload: List[int] = list(payload) if payload else []
        self.injected_cycle = injected_cycle
        self.delivered_cycle: Optional[int] = None
        self._route_pos = 0
        self.packet_id = Packet._next_id
        Packet._next_id += 1
        #: Set by a faulty link (repro.faults): the packet's bits are
        #: corrupt; the receiving NI delivers the words (framing is
        #: preserved) but the message layer CRC-discards anything they
        #: touch.
        self.poisoned = False

    # ------------------------------------------------------------------ size
    @property
    def total_words(self) -> int:
        """Header word plus payload words."""
        return 1 + len(self.payload)

    @property
    def num_flits(self) -> int:
        return math.ceil(self.total_words / FLIT_WORDS)

    @property
    def header_overhead(self) -> float:
        """Fraction of transported words that are header (efficiency metric)."""
        return 1.0 / self.total_words

    # ----------------------------------------------------------------- route
    @property
    def hops_remaining(self) -> int:
        return len(self.header.path) - self._route_pos

    def peek_route(self) -> int:
        """Output port the packet wants at the router currently holding it."""
        if self._route_pos >= len(self.header.path):
            raise PacketError(
                f"packet {self.packet_id} has exhausted its route "
                f"{self.header.path}")
        return self.header.path[self._route_pos]

    def advance_route(self) -> int:
        """Consume and return the next output port of the source route."""
        port = self.peek_route()
        self._route_pos += 1
        return port

    def reset_route(self) -> None:
        """Rewind the route pointer (used when replaying packets in tests)."""
        self._route_pos = 0

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        kind = "GT" if self.header.is_gt else "BE"
        return (f"Packet(id={self.packet_id}, {kind}, qid={self.header.remote_qid}, "
                f"words={self.total_words}, credits={self.header.credits})")


@dataclass(slots=True)
class Flit:
    """A fragment of a packet occupying one TDM slot on a link.

    Slotted: flits are the most frequently allocated objects in a saturated
    simulation (one per three payload words per hop), so they carry no
    per-instance ``__dict__``.
    """

    packet: Packet
    index: int
    is_head: bool
    is_tail: bool
    num_words: int = FLIT_WORDS
    sent_cycle: Optional[int] = field(default=None, compare=False)

    @property
    def is_gt(self) -> bool:
        return self.packet.header.is_gt

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        marks = ("H" if self.is_head else "") + ("T" if self.is_tail else "")
        return (f"Flit(pkt={self.packet.packet_id}, idx={self.index}{marks}, "
                f"words={self.num_words})")


def packet_to_flits(packet: Packet) -> List[Flit]:
    """Split a packet into flits.

    The head flit carries the header word plus up to ``FLIT_WORDS - 1`` payload
    words; body flits carry up to ``FLIT_WORDS`` payload words.
    """
    flits: List[Flit] = []
    words_remaining = packet.total_words
    index = 0
    while words_remaining > 0:
        words = min(FLIT_WORDS, words_remaining)
        words_remaining -= words
        flits.append(Flit(packet=packet, index=index,
                          is_head=(index == 0), is_tail=False,
                          num_words=words))
        index += 1
    if not flits:
        raise PacketError("packet produced no flits")
    flits[-1].is_tail = True
    return flits
