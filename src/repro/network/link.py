"""Point-to-point links between routers and between NIs and routers.

A link carries at most one flit per flit cycle in one direction (a flit is
three words; the underlying 32-bit wires move one word per 500 MHz cycle).
Links are modeled as a single register stage: a flit sent during cycle *t*
becomes visible to the sink at cycle *t+1*, giving one cycle of link latency
per hop.

Best-effort traffic uses link-level backpressure: the sender calls
:meth:`Link.can_send_be` which queries the sink's free best-effort buffer
space (modeling the flow-control wires of the router of [21]).  Guaranteed
traffic is never blocked — the slot allocation makes it contention-free.

Fault model (``repro.faults``)
------------------------------

A link can be taken down at runtime (:meth:`Link.fail`) or made lossy for a
window (:meth:`Link.set_lossy`).  Faults *poison* packets rather than
deleting flits from the wire: the decision is taken per packet at its head
flit, the flits still traverse with normal timing (garbage propagates just
as fast as data), and the receiving NI kernel — which would CRC-check in
hardware — delivers the words but marks them corrupt, so the message layer
discards every message they touch (see
:meth:`~repro.core.channel.Channel.note_poisoned_words`).  This keeps the
destination word framing and the end-to-end flow-control accounting exactly
consistent: loss is observable only as missing responses, which the master
shell's retry/timeout layer absorbs.  A healthy link pays one boolean test
per flit for all of this; no-fault runs stay byte-identical.
"""

from __future__ import annotations

from typing import List, Optional

from repro.network.packet import Flit
from repro.sim.batching import FAR_FUTURE
from repro.sim.clock import ClockedComponent
from repro.sim.stats import StatsRegistry, WindowedRate
from repro.sim.trace import NULL_TRACER, Tracer


class LinkContentionError(RuntimeError):
    """Two flits were offered to the same link in the same cycle."""


class Link(ClockedComponent):
    """A unidirectional link with one register stage."""

    def __init__(self, name: str, tracer: Tracer = NULL_TRACER,
                 stats: Optional[StatsRegistry] = None) -> None:
        self.name = name
        self.tracer = tracer
        self.stats = stats if stats is not None else StatsRegistry()
        self._sink: Optional[object] = None
        #: Sink's bound ``be_space`` method, cached at wiring time so the
        #: per-flit backpressure check skips the hasattr probe (hot path).
        self._sink_be_space = None
        #: True when the sink participates in tick gating (cached isinstance
        #: so send() pays one bool test, not a type check per flit).
        self._sink_clocked = False
        self.sink_port: int = 0
        self.source: Optional[object] = None
        self.source_port: int = 0
        self._stage: Optional[Flit] = None
        self._incoming: Optional[Flit] = None
        # Burst pipeline state (see send_burst).  A GT burst is staged whole
        # (``_incoming_burst`` -> ``_staged_burst``) and consumed in one
        # event; a BE burst trickles through ``_stage`` one flit per cycle
        # so the sink's per-flit arbitration path is unchanged.  While a
        # burst occupies the wire, ``_busy_until`` is the first cycle a new
        # send is legal — exactly the cycle the per-flit pipeline would
        # have freed the link.
        self._incoming_burst: Optional[List[Flit]] = None
        self._staged_burst: Optional[List[Flit]] = None
        self._trickle: Optional[List[Flit]] = None
        self._trickle_next = 0
        self._busy_until = 0
        #: Optional flits/cycle sliding-window meter (health_report).
        self.meter: Optional[WindowedRate] = None
        self.flits_carried = 0
        self.words_carried = 0
        self.gt_flits_carried = 0
        self.be_flits_carried = 0
        # Fault state.  ``_unreliable`` is the single flag the hot send()
        # path tests; it is True iff the link is failed or inside a lossy
        # window, so healthy links never enter the fault path.
        self._unreliable = False
        self._faulty = False
        self._drop_probability = 0.0
        self._drop_rng = None
        self.packets_poisoned = 0
        self.words_poisoned = 0

    @property
    def sink(self) -> Optional[object]:
        """Component consuming flits from this link; may expose
        ``be_space(port_index) -> int`` for best-effort backpressure."""
        return self._sink

    @sink.setter
    def sink(self, component: Optional[object]) -> None:
        self._sink = component
        self._sink_be_space = getattr(component, "be_space", None)
        self._sink_clocked = isinstance(component, ClockedComponent)

    # ---------------------------------------------------------------- wiring
    def connect(self, source: object, source_port: int,
                sink: object, sink_port: int) -> None:
        self.source = source
        self.source_port = source_port
        self.sink = sink
        self.sink_port = sink_port

    # --------------------------------------------------------------- sending
    def _busy(self) -> bool:
        """True while a previously sent burst still occupies the wire."""
        return (self._busy_until > 0 and self._clock is not None
                and self._clock._cycle < self._busy_until)

    def can_send(self) -> bool:
        """True when no flit has been offered this cycle."""
        if self._incoming is not None or self._trickle is not None:
            return False
        if self._incoming_burst is not None or self._staged_burst is not None:
            return False
        return not self._busy()

    def can_send_be(self) -> bool:
        """True when a best-effort flit may be sent without overflowing the sink."""
        if self._incoming is not None or self._trickle is not None:
            return False
        if self._incoming_burst is not None or self._busy():
            return False
        be_space = self._sink_be_space
        if be_space is None:
            return True
        in_flight = (1 if self._stage is not None else 0)
        return be_space(self.sink_port) - in_flight > 0

    def be_send_capacity(self) -> int:
        """Flits of best-effort sink space available to a burst right now.

        The burst length bound for the BE fast path: space can only grow
        while a single source streams (the sink input port is dedicated),
        so reserving the whole burst up front is exact.
        """
        if not self.can_send_be():
            return 0
        be_space = self._sink_be_space
        if be_space is None:
            return 1
        return be_space(self.sink_port) - (1 if self._stage is not None else 0)

    def send(self, flit: Flit) -> None:
        if self._unreliable and flit.is_head:
            self._fault_mark(flit)
        if self._incoming is not None:
            raise LinkContentionError(
                f"link {self.name}: two flits offered in the same cycle "
                f"({self._incoming!r} and {flit!r})")
        self._incoming = flit
        self.flits_carried += 1
        self.words_carried += flit.num_words
        if flit.packet.header.is_gt:
            self.gt_flits_carried += 1
        else:
            self.be_flits_carried += 1
        meter = self.meter
        if meter is not None and self._clock is not None:
            # Inlined WindowedRate.add — this runs once per flit on every
            # link, and the method-call pair was measurable.
            cycle = self._clock._cycle
            if cycle > meter._last_cycle:
                meter._advance(cycle)
            meter._buckets[cycle % meter.window] += 1
            meter.total += 1
        # A link is registered on the same clock as its sink (wake-up
        # protocol contract): keeping this clock awake until the flit is
        # staged and consumed is what delivers it to an otherwise-idle sink.
        self.notify_active()
        # Tick gating: the sink may hold a standing next-action gate
        # computed while this wire was empty; a flit in flight invalidates
        # it, and only the link knows the sink to tell.
        if self._sink_clocked and self._sink._gate_until:
            self._sink.notify_active()

    def send_burst(self, flits: List[Flit], cycle: int) -> None:
        """Offer a contiguous run of one packet's flits starting at ``cycle``.

        The wire is occupied through ``cycle + len(flits) - 1`` — exactly
        the cycles the per-flit pipeline would have used — and refuses new
        sends until then (:meth:`can_send` / :meth:`can_send_be`).

        GT bursts are staged whole at this cycle's commit and consumed by
        the sink in a single event at ``cycle + 1`` (contention-free by
        slot allocation).  BE bursts *trickle*: each flit enters the
        register pipeline on its own cycle, so the sink's per-flit BE
        arbitration and backpressure behave identically to unbatched
        operation; only the sender-side events are batched.

        Fault semantics match :meth:`send`: the head flit takes the
        poison decision at this cycle, on this link.
        """
        if (self._incoming is not None or self._trickle is not None
                or self._incoming_burst is not None):
            raise LinkContentionError(
                f"link {self.name}: burst offered while the wire is occupied")
        head = flits[0]
        if self._unreliable:
            self._fault_mark(head)
        count = len(flits)
        self.flits_carried += count
        words = 0
        for flit in flits:
            words += flit.num_words
        self.words_carried += words
        if head.is_gt:
            self.gt_flits_carried += count
            self._incoming_burst = flits
        else:
            self.be_flits_carried += count
            # First flit enters the register now; the rest follow one per
            # cycle from post_tick.
            self._incoming = head
            self._trickle = flits
            self._trickle_next = 1
        self._busy_until = cycle + count
        if self.meter is not None:
            self.meter.add_run(cycle, count)
        self.notify_active()
        if self._sink_clocked and self._sink._gate_until:
            self._sink.notify_active()

    # ---------------------------------------------------------------- faults
    @property
    def failed(self) -> bool:
        """True while the link is permanently down (until :meth:`repair`)."""
        return self._faulty

    @property
    def lossy(self) -> bool:
        """True while a transient drop window is active."""
        return self._drop_rng is not None

    def fail(self) -> None:
        """Take the link down.

        Packets already mid-wormhole on this link are poisoned (the wire
        goes bad under them); everything offered from now on is poisoned at
        its head flit.  Flits keep traversing with normal timing so the
        downstream framing and flow-control accounting stay consistent —
        the loss becomes visible as CRC-discarded messages at the
        destination shell.
        """
        if self._faulty:
            return
        self._faulty = True
        self._unreliable = True
        for flit in (self._incoming, self._stage):
            if flit is not None and not flit.packet.poisoned:
                self._poison(flit.packet)
        for burst in (self._incoming_burst, self._staged_burst,
                      self._trickle):
            if burst and not burst[0].packet.poisoned:
                self._poison(burst[0].packet)

    def repair(self) -> None:
        """Bring a failed link back up (poisoned packets stay poisoned)."""
        self._faulty = False
        self._unreliable = self._drop_rng is not None

    def set_lossy(self, probability: float, rng) -> None:
        """Start a transient drop window: each packet offered while the
        window is open is poisoned with ``probability`` (decided at the
        head flit by the seeded ``rng``)."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"drop probability {probability} outside [0, 1]")
        self._drop_probability = float(probability)
        self._drop_rng = rng
        self._unreliable = True

    def clear_lossy(self) -> None:
        """End the transient drop window."""
        self._drop_probability = 0.0
        self._drop_rng = None
        self._unreliable = self._faulty

    def _fault_mark(self, flit: Flit) -> None:
        packet = flit.packet
        if packet.poisoned:
            return
        if self._faulty or (self._drop_rng is not None
                            and self._drop_rng.random()
                            < self._drop_probability):
            self._poison(packet)

    def _poison(self, packet) -> None:
        packet.poisoned = True
        self.packets_poisoned += 1
        self.words_poisoned += len(packet.payload)
        now_ps = self._clock.sim.now if self._clock is not None else 0
        self.tracer.record(now_ps, self.name, "packet_poisoned",
                           packet=packet.packet_id,
                           channel=packet.header.channel_key)

    # ------------------------------------------------------------- receiving
    def peek(self) -> Optional[Flit]:
        """The flit available to the sink this cycle (without consuming it)."""
        return self._stage

    def take(self) -> Optional[Flit]:
        """Consume the flit available this cycle (None if the link is idle)."""
        flit = self._stage
        self._stage = None
        return flit

    def take_staged_burst(self) -> Optional[List[Flit]]:
        """Consume the GT burst staged this cycle (None if no burst)."""
        burst = self._staged_burst
        if burst is not None:
            self._staged_burst = None
        return burst

    def attach_meter(self, window_cycles: int = 64) -> WindowedRate:
        """Install (or return) the flits/cycle sliding-window meter."""
        if self.meter is None:
            self.meter = WindowedRate(window_cycles)
        return self.meter

    @property
    def busy(self) -> bool:
        """True while a previously sent burst still occupies the wire
        (probe hook; see :meth:`can_send`)."""
        return self._busy()

    @property
    def occupancy(self) -> int:
        """Flits currently inside the link register stages."""
        count = (1 if self._stage is not None else 0) + \
                (1 if self._incoming is not None else 0)
        if self._incoming_burst is not None:
            count += len(self._incoming_burst)
        if self._staged_burst is not None:
            count += len(self._staged_burst)
        if self._trickle is not None:
            # Flits not yet moved into the register pipeline (the one in
            # ``_incoming``/``_stage`` is already counted above).
            count += len(self._trickle) - self._trickle_next
        return count

    # ----------------------------------------------------------------- clock
    def is_idle(self) -> bool:
        """Idle when the register stages and burst pipeline are empty.

        Wake-protocol contract for batch delivery: a link holding any part
        of a burst reports busy, which keeps the sink's clock ticking until
        the last flit is consumed — a burst can never strand a sleeping
        consumer mid-delivery.
        """
        return (self._stage is None and self._incoming is None
                and self._staged_burst is None
                and self._incoming_burst is None
                and self._trickle is None)

    def next_action_cycle(self, cycle: int) -> int:
        """Dense while any flit occupies the wire, never otherwise.

        A link's only tick work is the register move in :meth:`post_tick`,
        so its horizon is exactly its idleness — but reporting it lets a
        gating clock trust the standing FAR gate instead of re-polling
        ``is_idle`` on every edge, and new sends cancel the gate through
        :meth:`send`'s ``notify_active``.  (``_busy_until`` is deliberately
        not consulted: a spent burst window gates *senders*, and senders
        are dense while they hold flits.)
        """
        if (self._stage is None and self._incoming is None
                and self._staged_burst is None
                and self._incoming_burst is None
                and self._trickle is None):
            return FAR_FUTURE
        return cycle + 1

    def post_tick(self, cycle: int) -> None:
        if self._incoming is not None:
            if self._stage is not None:
                # The sink failed to drain the previous flit.  GT flits are
                # always drained; BE senders check space first, so this is a
                # model bug rather than a legal network condition.
                raise LinkContentionError(
                    f"link {self.name}: sink did not drain flit {self._stage!r}")
            self._stage = self._incoming
            self._incoming = None
            trickle = self._trickle
            if trickle is not None:
                # Feed the next BE burst flit into the register, exactly as
                # the per-flit sender would have on this cycle.
                nxt = self._trickle_next
                if nxt < len(trickle):
                    self._incoming = trickle[nxt]
                    self._trickle_next = nxt + 1
                if self._trickle_next >= len(trickle):
                    self._trickle = None
        elif self._incoming_burst is not None:
            if self._staged_burst is not None or self._stage is not None:
                raise LinkContentionError(
                    f"link {self.name}: sink did not drain the previous burst")
            self._staged_burst = self._incoming_burst
            self._incoming_burst = None

    def utilization(self, window_cycles: int) -> float:
        """Fraction of flit cycles the link carried a flit over ``window_cycles``."""
        if window_cycles <= 0:
            raise ValueError("window must be positive")
        return self.flits_carried / window_cycles

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Link({self.name})"
