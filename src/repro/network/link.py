"""Point-to-point links between routers and between NIs and routers.

A link carries at most one flit per flit cycle in one direction (a flit is
three words; the underlying 32-bit wires move one word per 500 MHz cycle).
Links are modeled as a single register stage: a flit sent during cycle *t*
becomes visible to the sink at cycle *t+1*, giving one cycle of link latency
per hop.

Best-effort traffic uses link-level backpressure: the sender calls
:meth:`Link.can_send_be` which queries the sink's free best-effort buffer
space (modeling the flow-control wires of the router of [21]).  Guaranteed
traffic is never blocked — the slot allocation makes it contention-free.
"""

from __future__ import annotations

from typing import Optional

from repro.network.packet import Flit
from repro.sim.clock import ClockedComponent
from repro.sim.stats import StatsRegistry
from repro.sim.trace import NULL_TRACER, Tracer


class LinkContentionError(RuntimeError):
    """Two flits were offered to the same link in the same cycle."""


class Link(ClockedComponent):
    """A unidirectional link with one register stage."""

    def __init__(self, name: str, tracer: Tracer = NULL_TRACER,
                 stats: Optional[StatsRegistry] = None) -> None:
        self.name = name
        self.tracer = tracer
        self.stats = stats if stats is not None else StatsRegistry()
        self._sink: Optional[object] = None
        #: Sink's bound ``be_space`` method, cached at wiring time so the
        #: per-flit backpressure check skips the hasattr probe (hot path).
        self._sink_be_space = None
        self.sink_port: int = 0
        self.source: Optional[object] = None
        self.source_port: int = 0
        self._stage: Optional[Flit] = None
        self._incoming: Optional[Flit] = None
        self.flits_carried = 0
        self.words_carried = 0
        self.gt_flits_carried = 0
        self.be_flits_carried = 0

    @property
    def sink(self) -> Optional[object]:
        """Component consuming flits from this link; may expose
        ``be_space(port_index) -> int`` for best-effort backpressure."""
        return self._sink

    @sink.setter
    def sink(self, component: Optional[object]) -> None:
        self._sink = component
        self._sink_be_space = getattr(component, "be_space", None)

    # ---------------------------------------------------------------- wiring
    def connect(self, source: object, source_port: int,
                sink: object, sink_port: int) -> None:
        self.source = source
        self.source_port = source_port
        self.sink = sink
        self.sink_port = sink_port

    # --------------------------------------------------------------- sending
    def can_send(self) -> bool:
        """True when no flit has been offered this cycle."""
        return self._incoming is None

    def can_send_be(self) -> bool:
        """True when a best-effort flit may be sent without overflowing the sink."""
        if self._incoming is not None:
            return False
        be_space = self._sink_be_space
        if be_space is None:
            return True
        in_flight = (1 if self._stage is not None else 0)
        return be_space(self.sink_port) - in_flight > 0

    def send(self, flit: Flit) -> None:
        if self._incoming is not None:
            raise LinkContentionError(
                f"link {self.name}: two flits offered in the same cycle "
                f"({self._incoming!r} and {flit!r})")
        self._incoming = flit
        self.flits_carried += 1
        self.words_carried += flit.num_words
        if flit.is_gt:
            self.gt_flits_carried += 1
        else:
            self.be_flits_carried += 1
        # A link is registered on the same clock as its sink (wake-up
        # protocol contract): keeping this clock awake until the flit is
        # staged and consumed is what delivers it to an otherwise-idle sink.
        self.notify_active()

    # ------------------------------------------------------------- receiving
    def peek(self) -> Optional[Flit]:
        """The flit available to the sink this cycle (without consuming it)."""
        return self._stage

    def take(self) -> Optional[Flit]:
        """Consume the flit available this cycle (None if the link is idle)."""
        flit = self._stage
        self._stage = None
        return flit

    @property
    def occupancy(self) -> int:
        """Flits currently inside the link register stages."""
        return (1 if self._stage is not None else 0) + \
               (1 if self._incoming is not None else 0)

    # ----------------------------------------------------------------- clock
    def is_idle(self) -> bool:
        """Idle when both register stages are empty."""
        return self._stage is None and self._incoming is None

    def post_tick(self, cycle: int) -> None:
        if self._incoming is not None:
            if self._stage is not None:
                # The sink failed to drain the previous flit.  GT flits are
                # always drained; BE senders check space first, so this is a
                # model bug rather than a legal network condition.
                raise LinkContentionError(
                    f"link {self.name}: sink did not drain flit {self._stage!r}")
            self._stage = self._incoming
            self._incoming = None

    def utilization(self, window_cycles: int) -> float:
        """Fraction of flit cycles the link carried a flit over ``window_cycles``."""
        if window_cycles <= 0:
            raise ValueError("window must be positive")
        return self.flits_carried / window_cycles

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Link({self.name})"
