"""The combined guaranteed-throughput / best-effort router.

This reproduces, at flit granularity, the router of Rijpkema et al. (DATE
2003) that the paper's NI attaches to:

* **GT traffic** travels on reserved TDM slots.  Because the slot allocation
  guarantees that at most one GT channel owns a given output in a given slot,
  GT forwarding is contention-free; the router simply forwards any GT flit at
  its input in the cycle it arrives.  Two GT flits competing for the same
  output indicates a broken slot allocation and raises
  :class:`SlotConflictError` (unless ``strict_gt=False``, used to study the
  conflicts that a distributed configuration must detect).
* **BE traffic** is wormhole-routed from small per-input buffers with
  round-robin arbitration per output and link-level backpressure.  GT flits
  always win a slot over BE flits.

Routers are source-routed: the packet header carries one output port per
router along the path, consumed hop by hop.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.network.link import Link
from repro.network.packet import Flit
from repro.network.slot_table import RouterSlotTable
from repro.sim.clock import ClockedComponent
from repro.sim.stats import StatsRegistry
from repro.sim.trace import NULL_TRACER, Tracer


class SlotConflictError(RuntimeError):
    """Two guaranteed-throughput flits requested the same output in one slot."""


class BufferOverflowError(RuntimeError):
    """A best-effort flit arrived at a full input buffer (backpressure bug)."""


@dataclass
class _InputState:
    """Per-input-port buffering and wormhole state."""

    gt_queue: Deque[Flit] = field(default_factory=deque)
    be_queue: Deque[Flit] = field(default_factory=deque)
    gt_active_output: Optional[int] = None
    be_active_output: Optional[int] = None


class Router(ClockedComponent):
    """A single GT/BE router."""

    def __init__(self, name: str, num_ports: int, be_buffer_flits: int = 8,
                 slot_table: Optional[RouterSlotTable] = None,
                 strict_gt: bool = True,
                 tracer: Tracer = NULL_TRACER,
                 stats: Optional[StatsRegistry] = None) -> None:
        if num_ports <= 0:
            raise ValueError("router needs at least one port")
        if be_buffer_flits <= 0:
            raise ValueError("best-effort buffers need at least one flit")
        self.name = name
        self.num_ports = num_ports
        self.be_buffer_flits = be_buffer_flits
        self.slot_table = slot_table
        self.strict_gt = strict_gt
        self.tracer = tracer
        self.stats = stats if stats is not None else StatsRegistry()
        self.in_links: List[Optional[Link]] = [None] * num_ports
        self.out_links: List[Optional[Link]] = [None] * num_ports
        self._inputs = [_InputState() for _ in range(num_ports)]
        self._be_rr_pointer = [0] * num_ports
        self._be_output_locked_input: List[Optional[int]] = [None] * num_ports
        self._cycle = 0

    # ---------------------------------------------------------------- wiring
    def connect_input(self, port: int, link: Link) -> None:
        self._check_port(port)
        link.sink = self
        link.sink_port = port
        self.in_links[port] = link

    def connect_output(self, port: int, link: Link) -> None:
        self._check_port(port)
        link.source = self
        link.source_port = port
        self.out_links[port] = link

    def _check_port(self, port: int) -> None:
        if not 0 <= port < self.num_ports:
            raise ValueError(f"router {self.name}: port {port} out of range")

    # ---------------------------------------------------------- backpressure
    def be_space(self, port: int) -> int:
        """Free best-effort buffer slots at input ``port`` (link flow control)."""
        self._check_port(port)
        return self.be_buffer_flits - len(self._inputs[port].be_queue)

    # ----------------------------------------------------------------- clock
    def tick(self, cycle: int) -> None:
        self._cycle = cycle
        self._accept_incoming(cycle)
        self._forward(cycle)

    def is_idle(self) -> bool:
        """Idle when no flit is buffered at any input.

        Flits still inside an attached link keep that link's clock awake (a
        link shares its sink's clock), so the router will be ticked to accept
        them; it does not need to inspect the links here.
        """
        for state in self._inputs:
            if state.gt_queue or state.be_queue:
                return False
        return True

    # -------------------------------------------------------------- incoming
    def _accept_incoming(self, cycle: int) -> None:
        for port, link in enumerate(self.in_links):
            if link is None:
                continue
            flit = link.take()
            if flit is None:
                continue
            state = self._inputs[port]
            if flit.is_gt:
                state.gt_queue.append(flit)
                self.stats.counter("gt_flits_in").increment()
                self._check_slot_reservation(port, flit, cycle)
            else:
                if len(state.be_queue) >= self.be_buffer_flits:
                    raise BufferOverflowError(
                        f"router {self.name}: BE buffer overflow at input {port}")
                state.be_queue.append(flit)
                self.stats.counter("be_flits_in").increment()

    def _check_slot_reservation(self, port: int, flit: Flit, cycle: int) -> None:
        """In the distributed model, verify the arriving GT flit owns its slot."""
        if self.slot_table is None or not flit.is_head:
            return
        slot = cycle % self.slot_table.num_slots
        output = flit.packet.peek_route()
        owner = self.slot_table.owner(output, slot)
        if owner is not None and owner != flit.packet.header.channel_key:
            self.stats.counter("slot_reservation_mismatches").increment()
            self.tracer.record(0, self.name, "slot_mismatch",
                               slot=slot, output=output,
                               owner=owner,
                               channel=flit.packet.header.channel_key)

    # ------------------------------------------------------------ forwarding
    def _forward(self, cycle: int) -> None:
        used_outputs = self._forward_gt(cycle)
        self._forward_be(cycle, used_outputs)

    def _forward_gt(self, cycle: int) -> set:
        requests: Dict[int, List[int]] = {}
        for port, state in enumerate(self._inputs):
            if not state.gt_queue:
                continue
            flit = state.gt_queue[0]
            if flit.is_head:
                output = flit.packet.peek_route()
            else:
                if state.gt_active_output is None:
                    raise SlotConflictError(
                        f"router {self.name}: GT body flit with no active output")
                output = state.gt_active_output
            requests.setdefault(output, []).append(port)
        used = set()
        for output, ports in sorted(requests.items()):
            if len(ports) > 1:
                self.stats.counter("gt_conflicts").increment()
                if self.strict_gt:
                    keys = [self._inputs[p].gt_queue[0].packet.header.channel_key
                            for p in ports]
                    raise SlotConflictError(
                        f"router {self.name}: GT slot conflict on output {output} "
                        f"in cycle {cycle} between channels {keys}")
            port = ports[0]
            self._send_flit(port, output, gt=True, cycle=cycle)
            used.add(output)
        return used

    def _forward_be(self, cycle: int, used_outputs: set) -> None:
        for output in range(self.num_ports):
            if output in used_outputs:
                continue
            link = self.out_links[output]
            if link is None:
                continue
            locked = self._be_output_locked_input[output]
            if locked is not None:
                candidates = [locked]
            else:
                start = self._be_rr_pointer[output]
                candidates = [(start + k) % self.num_ports
                              for k in range(self.num_ports)]
            for port in candidates:
                state = self._inputs[port]
                if not state.be_queue:
                    continue
                flit = state.be_queue[0]
                if flit.is_head:
                    if state.be_active_output is not None:
                        continue
                    desired = flit.packet.peek_route()
                else:
                    desired = state.be_active_output
                if desired != output:
                    continue
                if not link.can_send_be():
                    self.stats.counter("be_backpressure_stalls").increment()
                    break
                self._send_flit(port, output, gt=False, cycle=cycle)
                if locked is None:
                    self._be_rr_pointer[output] = (port + 1) % self.num_ports
                break

    def _send_flit(self, port: int, output: int, gt: bool, cycle: int) -> None:
        state = self._inputs[port]
        queue = state.gt_queue if gt else state.be_queue
        flit = queue.popleft()
        link = self.out_links[output]
        if link is None:
            raise SlotConflictError(
                f"router {self.name}: no link on output {output}")
        if flit.is_head:
            taken = flit.packet.advance_route()
            if taken != output:
                raise SlotConflictError(
                    f"router {self.name}: route mismatch "
                    f"(expected {taken}, forwarding to {output})")
            if gt:
                state.gt_active_output = output
            else:
                state.be_active_output = output
                self._be_output_locked_input[output] = port
        if flit.is_tail:
            if gt:
                state.gt_active_output = None
            else:
                state.be_active_output = None
                self._be_output_locked_input[output] = None
        link.send(flit)
        kind = "gt" if gt else "be"
        self.stats.counter(f"{kind}_flits_out").increment()
        self.stats.rate("flits_out").add(cycle)
        self.tracer.record(0, self.name, "forward",
                           input=port, output=output, traffic=kind,
                           packet=flit.packet.packet_id, flit=flit.index)

    # ------------------------------------------------------------- inspection
    def buffered_flits(self) -> int:
        """Total flits buffered in this router (cost metric of [21])."""
        return sum(len(s.gt_queue) + len(s.be_queue) for s in self._inputs)

    def be_queue_depth(self, port: int) -> int:
        self._check_port(port)
        return len(self._inputs[port].be_queue)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Router({self.name}, ports={self.num_ports})"
