"""The combined guaranteed-throughput / best-effort router.

This reproduces, at flit granularity, the router of Rijpkema et al. (DATE
2003) that the paper's NI attaches to:

* **GT traffic** travels on reserved TDM slots.  Because the slot allocation
  guarantees that at most one GT channel owns a given output in a given slot,
  GT forwarding is contention-free; the router simply forwards any GT flit at
  its input in the cycle it arrives.  Two GT flits competing for the same
  output indicates a broken slot allocation and raises
  :class:`SlotConflictError` (unless ``strict_gt=False``, used to study the
  conflicts that a distributed configuration must detect).
* **BE traffic** is wormhole-routed from small per-input buffers with
  round-robin arbitration per output and link-level backpressure.  GT flits
  always win a slot over BE flits.

Routers are source-routed: the packet header carries one output port per
router along the path, consumed hop by hop.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

from repro.network.link import Link
from repro.network.packet import Flit
from repro.network.slot_table import RouterSlotTable
from repro.sim.batching import FAR_FUTURE
from repro.sim.clock import ClockedComponent
from repro.sim.engine import Simulator
from repro.sim.stats import CounterColumn, StatsRegistry
from repro.sim.trace import NULL_TRACER, Tracer


class SlotConflictError(RuntimeError):
    """Two guaranteed-throughput flits requested the same output in one slot."""


class BufferOverflowError(RuntimeError):
    """A best-effort flit arrived at a full input buffer (backpressure bug)."""


@dataclass
class _InputState:
    """Per-input-port buffering and wormhole state.

    ``gt_queue`` entries are either single :class:`Flit` objects or whole
    bursts (plain ``list`` of flits from one packet, head first) delivered
    by a batched link; bursts are forwarded in one decision since the slot
    allocation already guarantees the window.
    """

    gt_queue: Deque[object] = field(default_factory=deque)
    be_queue: Deque[Flit] = field(default_factory=deque)
    gt_active_output: Optional[int] = None
    be_active_output: Optional[int] = None


class Router(ClockedComponent):
    """A single GT/BE router."""

    def __init__(self, name: str, num_ports: int, be_buffer_flits: int = 8,
                 slot_table: Optional[RouterSlotTable] = None,
                 strict_gt: bool = True,
                 tracer: Tracer = NULL_TRACER,
                 stats: Optional[StatsRegistry] = None,
                 sim: Optional[Simulator] = None) -> None:
        if num_ports <= 0:
            raise ValueError("router needs at least one port")
        if be_buffer_flits <= 0:
            raise ValueError("best-effort buffers need at least one flit")
        self.name = name
        self.num_ports = num_ports
        self.be_buffer_flits = be_buffer_flits
        self.slot_table = slot_table
        self.strict_gt = strict_gt
        self.tracer = tracer
        #: Simulator reference so trace events carry real timestamps; when
        #: None (stand-alone unit-test harnesses), traces record time 0.
        self.sim = sim
        self.stats = stats if stats is not None else StatsRegistry()
        self.in_links: List[Optional[Link]] = [None] * num_ports
        self.out_links: List[Optional[Link]] = [None] * num_ports
        self._inputs = [_InputState() for _ in range(num_ports)]
        self._be_rr_pointer = [0] * num_ports
        self._be_output_locked_input: List[Optional[int]] = [None] * num_ports
        self._cycle = 0
        # ------------------------------------------------------- hot path
        #: (port, link) pairs for the connected inputs only, so the per-cycle
        #: accept loop skips unwired ports without a None test each.
        self._wired_in_links: List[tuple] = []
        # Flat per-output arrays for GT arbitration: stamped with a private
        # monotonic tick stamp instead of being cleared every cycle.
        self._gt_claim_stamp = [-1] * num_ports
        self._gt_first_port = [0] * num_ports
        self._gt_conflict_stamp = [-1] * num_ports
        self._tick_stamp = 0
        # Per-output burst claim windows: a forwarded GT burst owns its
        # output (and out-link) through cycle ``_gt_out_busy_until[o] - 1``;
        # BE arbitration skips the output for the window exactly as it
        # would have skipped the per-cycle GT claims.
        self._gt_out_busy_until = [0] * num_ports
        #: Scratch: desired output of each input's BE queue head this cycle.
        self._be_desired: List[Optional[int]] = [-1] * num_ports
        # Hot counters cached as attributes (one registry lookup at
        # construction, not one per flit); shared with ``self.stats``.
        stats_reg = self.stats
        self._ctr_gt_flits_in = stats_reg.counter("gt_flits_in")
        self._ctr_be_flits_in = stats_reg.counter("be_flits_in")
        self._ctr_gt_flits_out = stats_reg.counter("gt_flits_out")
        self._ctr_be_flits_out = stats_reg.counter("be_flits_out")
        #: Columnar accumulator for the BE arbitration pass: each pass
        #: records its batch of sends as one column entry, folded into
        #: ``be_flits_out`` at the pass boundary so observers between
        #: events always see exact totals while the per-flit inner loop
        #: stays free of counter-object traffic.
        self._col_be_flits_out = CounterColumn(self._ctr_be_flits_out)
        self._ctr_gt_conflicts = stats_reg.counter("gt_conflicts")
        self._ctr_be_backpressure = stats_reg.counter("be_backpressure_stalls")
        self._ctr_slot_mismatches = stats_reg.counter(
            "slot_reservation_mismatches")
        self._rate_flits_out = stats_reg.rate("flits_out")

    # ---------------------------------------------------------------- wiring
    def connect_input(self, port: int, link: Link) -> None:
        self._check_port(port)
        link.sink = self
        link.sink_port = port
        self.in_links[port] = link
        self._wired_in_links = [(p, l) for p, l in enumerate(self.in_links)
                                if l is not None]

    def connect_output(self, port: int, link: Link) -> None:
        self._check_port(port)
        link.source = self
        link.source_port = port
        self.out_links[port] = link

    def _check_port(self, port: int) -> None:
        if not 0 <= port < self.num_ports:
            raise ValueError(f"router {self.name}: port {port} out of range")

    # ---------------------------------------------------------- backpressure
    def be_space(self, port: int) -> int:
        """Free best-effort buffer slots at input ``port`` (link flow control)."""
        self._check_port(port)
        return self.be_buffer_flits - len(self._inputs[port].be_queue)

    # ----------------------------------------------------------------- clock
    def tick(self, cycle: int) -> None:
        self._cycle = cycle
        self._accept_incoming(cycle)
        # One stamp per cycle: claims from earlier cycles never leak into
        # this cycle's BE availability checks, even when the GT pass is
        # skipped outright.
        self._tick_stamp += 1
        any_gt = any_be = False
        for state in self._inputs:
            if state.gt_queue:
                any_gt = True
            if state.be_queue:
                any_be = True
        if any_gt:
            self._forward_gt(cycle)
        if any_be:
            self._forward_be(cycle)

    def is_idle(self) -> bool:
        """Idle when no flit is buffered at any input.

        Flits still inside an attached link keep that link's clock awake (a
        link shares its sink's clock), so the router will be ticked to accept
        them; it does not need to inspect the links here.
        """
        for state in self._inputs:
            if state.gt_queue or state.be_queue:
                return False
        return True

    def next_action_cycle(self, cycle: int) -> int:
        """Dense while anything is buffered or in flight on an input link.

        Buffered flits need arbitration every cycle (round-robin state and
        backpressure can change each edge), so no horizon tighter than
        ``cycle + 1`` is attempted — the win is the FAR claim for the empty
        router, which lets a saturated run gate the routers a flow does not
        cross.  In-flight flits are covered by the in-link scan plus the
        sender-side un-gate in :meth:`Link.send`; ``_gt_out_busy_until``
        windows are deliberately ignored (a spent window changes nothing
        until new flits arrive, and those arrive through a link).
        """
        for state in self._inputs:
            if state.gt_queue or state.be_queue:
                return cycle + 1
        for _port, link in self._wired_in_links:
            if (link._stage is not None or link._incoming is not None
                    or link._staged_burst is not None
                    or link._incoming_burst is not None
                    or link._trickle is not None):
                return cycle + 1
        return FAR_FUTURE

    # -------------------------------------------------------------- incoming
    def _accept_incoming(self, cycle: int) -> None:
        for port, link in self._wired_in_links:
            burst = link._staged_burst
            if burst is not None:
                link._staged_burst = None
                state = self._inputs[port]
                state.gt_queue.append(burst)
                self._ctr_gt_flits_in.value += len(burst)
                if self.slot_table is not None:
                    self._check_slot_reservation(port, burst[0], cycle)
                continue
            # Inlined link.take(): one attribute read on the (very common)
            # idle-link path instead of a method call per link per cycle.
            flit = link._stage
            if flit is None:
                continue
            link._stage = None
            state = self._inputs[port]
            if flit.packet.header.is_gt:
                state.gt_queue.append(flit)
                self._ctr_gt_flits_in.value += 1
                if self.slot_table is not None:
                    self._check_slot_reservation(port, flit, cycle)
            else:
                if len(state.be_queue) >= self.be_buffer_flits:
                    raise BufferOverflowError(
                        f"router {self.name}: BE buffer overflow at input {port}")
                state.be_queue.append(flit)
                self._ctr_be_flits_in.value += 1

    def _check_slot_reservation(self, port: int, flit: Flit, cycle: int) -> None:
        """In the distributed model, verify the arriving GT flit owns its slot."""
        if self.slot_table is None or not flit.is_head:
            return
        slot = cycle % self.slot_table.num_slots
        output = flit.packet.peek_route()
        owner = self.slot_table.owner(output, slot)
        if owner is not None and owner != flit.packet.header.channel_key:
            self._ctr_slot_mismatches.value += 1
            self.tracer.record(self._now_ps(), self.name, "slot_mismatch",
                               slot=slot, output=output,
                               owner=owner,
                               channel=flit.packet.header.channel_key)

    def _now_ps(self) -> int:
        """Current simulation time for trace events (0 when unclocked)."""
        return self.sim.now if self.sim is not None else 0

    # ------------------------------------------------------------ forwarding
    def _forward(self, cycle: int) -> None:
        self._tick_stamp += 1
        self._forward_gt(cycle)
        self._forward_be(cycle)

    def _forward_gt(self, cycle: int) -> None:
        """Forward one GT flit per requested output.

        The per-cycle request dict of the original implementation is
        replaced by flat per-output arrays stamped with a private monotonic
        tick stamp, so the common cycles (zero or one GT request) allocate
        nothing.  Conflicting requests (two inputs wanting one output) keep
        the original semantics: counted once per output per cycle, fatal
        under ``strict_gt``, first-requesting (lowest) input wins otherwise.
        """
        stamp = self._tick_stamp
        claim = self._gt_claim_stamp
        first = self._gt_first_port
        conflicted = self._gt_conflict_stamp
        busy = self._gt_out_busy_until
        any_request = False
        for port, state in enumerate(self._inputs):
            if not state.gt_queue:
                continue
            entry = state.gt_queue[0]
            if type(entry) is list:
                # A burst always starts at its packet's head flit.
                output = entry[0].packet.peek_route()
            elif entry.is_head:
                output = entry.packet.peek_route()
            else:
                if state.gt_active_output is None:
                    raise SlotConflictError(
                        f"router {self.name}: GT body flit with no active output")
                output = state.gt_active_output
            if busy[output] > cycle:
                # An earlier burst owns this output's window: with a sound
                # slot allocation this cannot happen (the window is exactly
                # the slots the packet owns), so it is the windowed
                # equivalent of a per-cycle slot conflict.
                if conflicted[output] != stamp:
                    conflicted[output] = stamp
                    self._ctr_gt_conflicts.value += 1
                    if self.strict_gt:
                        raise SlotConflictError(
                            f"router {self.name}: GT burst window conflict on "
                            f"output {output} in cycle {cycle}")
                continue
            if claim[output] != stamp:
                claim[output] = stamp
                first[output] = port
                any_request = True
            elif conflicted[output] != stamp:
                conflicted[output] = stamp
                self._ctr_gt_conflicts.value += 1
                if self.strict_gt:
                    keys = []
                    for p in (first[output], port):
                        head = self._inputs[p].gt_queue[0]
                        if type(head) is list:
                            head = head[0]
                        keys.append(head.packet.header.channel_key)
                    raise SlotConflictError(
                        f"router {self.name}: GT slot conflict on output "
                        f"{output} in cycle {cycle} between channels {keys}")
        if not any_request:
            return
        for output in range(self.num_ports):
            if claim[output] == stamp:
                self._send_flit(first[output], output, gt=True, cycle=cycle)

    def _forward_be(self, cycle: int) -> None:
        """Wormhole-forward BE flits to every output GT left unused.

        Rotating-index scan: instead of materializing a candidates list per
        output per cycle, walk the input ports from the round-robin pointer
        (or pin the scan to the locked input while a packet is in flight).
        The desired output of each input's queue head is computed once per
        cycle (``_be_desired``, refreshed after each send) rather than once
        per (output, input) scan pair — the route peeks were measurable.
        """
        inputs = self._inputs
        num_ports = self.num_ports
        claim = self._gt_claim_stamp
        stamp = self._tick_stamp
        busy = self._gt_out_busy_until
        locked_by_output = self._be_output_locked_input
        desired_by_port = self._be_desired
        any_be = False
        for port in range(num_ports):
            state = inputs[port]
            queue = state.be_queue
            if not queue:
                desired_by_port[port] = -1
                continue
            flit = queue[0]
            if flit.is_head:
                if state.be_active_output is not None:
                    desired_by_port[port] = -1
                    continue
                desired_by_port[port] = flit.packet.peek_route()
            else:
                desired_by_port[port] = state.be_active_output
            any_be = True
        if not any_be:
            return
        sent = 0
        for output in range(num_ports):
            if claim[output] == stamp:       # GT used this output this cycle
                continue
            if busy[output] > cycle:         # inside a GT burst's window
                continue
            link = self.out_links[output]
            if link is None:
                continue
            locked = locked_by_output[output]
            if locked is not None:
                start, count, rotate = locked, 1, False
            else:
                start, count, rotate = self._be_rr_pointer[output], num_ports, True
            for offset in range(count):
                port = start + offset
                if port >= num_ports:
                    port -= num_ports
                if desired_by_port[port] != output:
                    continue
                if not link.can_send_be():
                    self._ctr_be_backpressure.value += 1
                    break
                self._send_flit(port, output, gt=False, cycle=cycle)
                sent += 1
                # The pop may expose a flit for an output scanned later
                # this cycle (e.g. a fresh head after a tail): refresh.
                state = inputs[port]
                queue = state.be_queue
                if not queue:
                    desired_by_port[port] = -1
                else:
                    head = queue[0]
                    if head.is_head:
                        desired_by_port[port] = (
                            -1 if state.be_active_output is not None
                            else head.packet.peek_route())
                    else:
                        desired_by_port[port] = state.be_active_output
                if rotate:
                    pointer = port + 1
                    self._be_rr_pointer[output] = (
                        0 if pointer >= num_ports else pointer)
                break
        if sent:
            # Pass boundary (the BE burst boundary): record this pass's
            # batch in the column and fold it, so between-event observers
            # see exact ``be_flits_out`` totals.
            self._col_be_flits_out.append(sent)
            self._col_be_flits_out.flush()

    def _send_flit(self, port: int, output: int, gt: bool, cycle: int) -> None:
        state = self._inputs[port]
        queue = state.gt_queue if gt else state.be_queue
        flit = queue.popleft()
        link = self.out_links[output]
        if link is None:
            raise SlotConflictError(
                f"router {self.name}: no link on output {output}")
        if gt and type(flit) is list:
            self._send_gt_burst(state, flit, output, link, cycle)
            return
        if flit.is_head:
            taken = flit.packet.advance_route()
            if taken != output:
                raise SlotConflictError(
                    f"router {self.name}: route mismatch "
                    f"(expected {taken}, forwarding to {output})")
            if gt:
                state.gt_active_output = output
            else:
                state.be_active_output = output
                self._be_output_locked_input[output] = port
        if flit.is_tail:
            if gt:
                state.gt_active_output = None
            else:
                state.be_active_output = None
                self._be_output_locked_input[output] = None
        link.send(flit)
        if gt:
            self._ctr_gt_flits_out.value += 1
        # BE sends are tallied by the caller's pass-level column entry
        # (``_forward_be``) rather than per flit here.
        self._rate_flits_out.add(cycle)
        if self.tracer.enabled:
            self.tracer.record(self._now_ps(), self.name, "forward",
                               input=port, output=output,
                               traffic="gt" if gt else "be",
                               packet=flit.packet.packet_id, flit=flit.index)

    def _send_gt_burst(self, state: _InputState, burst: List[Flit],
                       output: int, link: Link, cycle: int) -> None:
        """Forward a whole GT burst: one slot-table consultation, one
        route advance, one link event, counters bumped per burst."""
        head = burst[0]
        taken = head.packet.advance_route()
        if taken != output:
            raise SlotConflictError(
                f"router {self.name}: route mismatch "
                f"(expected {taken}, forwarding to {output})")
        count = len(burst)
        # A burst that does not carry the tail (a capped split) leaves the
        # wormhole open for the per-flit remainder arriving right behind it.
        state.gt_active_output = None if burst[count - 1].is_tail else output
        self._gt_out_busy_until[output] = cycle + count
        link.send_burst(burst, cycle)
        self._ctr_gt_flits_out.value += count
        self._rate_flits_out.add_run(cycle, count)
        if self.tracer.enabled:
            # Bursts already in flight when a tracer arms are recorded per
            # flit at the forwarding decision's timestamp.
            now_ps = self._now_ps()
            for flit in burst:
                self.tracer.record(now_ps, self.name, "forward",
                                   input=self._inputs.index(state),
                                   output=output, traffic="gt",
                                   packet=flit.packet.packet_id,
                                   flit=flit.index)

    # ------------------------------------------------------------- inspection
    def buffered_flits(self) -> int:
        """Total flits buffered in this router (cost metric of [21])."""
        total = 0
        for state in self._inputs:
            for entry in state.gt_queue:
                total += len(entry) if type(entry) is list else 1
            total += len(state.be_queue)
        return total

    def be_queue_depth(self, port: int) -> int:
        self._check_port(port)
        return len(self._inputs[port].be_queue)

    def input_fill(self, port: int, gt: bool = True) -> int:
        """Flits buffered at one input port (probe hook; burst entries in
        the GT queue count per flit, like :meth:`buffered_flits`)."""
        self._check_port(port)
        state = self._inputs[port]
        if not gt:
            return len(state.be_queue)
        total = 0
        for entry in state.gt_queue:
            total += len(entry) if type(entry) is list else 1
        return total

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Router({self.name}, ports={self.num_ports})"
