"""The combined guaranteed-throughput / best-effort router.

This reproduces, at flit granularity, the router of Rijpkema et al. (DATE
2003) that the paper's NI attaches to:

* **GT traffic** travels on reserved TDM slots.  Because the slot allocation
  guarantees that at most one GT channel owns a given output in a given slot,
  GT forwarding is contention-free; the router simply forwards any GT flit at
  its input in the cycle it arrives.  Two GT flits competing for the same
  output indicates a broken slot allocation and raises
  :class:`SlotConflictError` (unless ``strict_gt=False``, used to study the
  conflicts that a distributed configuration must detect).
* **BE traffic** is wormhole-routed from small per-input buffers with
  round-robin arbitration per output and link-level backpressure.  GT flits
  always win a slot over BE flits.

Routers are source-routed: the packet header carries one output port per
router along the path, consumed hop by hop.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

from repro.network.link import Link
from repro.network.packet import Flit
from repro.network.slot_table import RouterSlotTable
from repro.sim.clock import ClockedComponent
from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry
from repro.sim.trace import NULL_TRACER, Tracer


class SlotConflictError(RuntimeError):
    """Two guaranteed-throughput flits requested the same output in one slot."""


class BufferOverflowError(RuntimeError):
    """A best-effort flit arrived at a full input buffer (backpressure bug)."""


@dataclass
class _InputState:
    """Per-input-port buffering and wormhole state."""

    gt_queue: Deque[Flit] = field(default_factory=deque)
    be_queue: Deque[Flit] = field(default_factory=deque)
    gt_active_output: Optional[int] = None
    be_active_output: Optional[int] = None


class Router(ClockedComponent):
    """A single GT/BE router."""

    def __init__(self, name: str, num_ports: int, be_buffer_flits: int = 8,
                 slot_table: Optional[RouterSlotTable] = None,
                 strict_gt: bool = True,
                 tracer: Tracer = NULL_TRACER,
                 stats: Optional[StatsRegistry] = None,
                 sim: Optional[Simulator] = None) -> None:
        if num_ports <= 0:
            raise ValueError("router needs at least one port")
        if be_buffer_flits <= 0:
            raise ValueError("best-effort buffers need at least one flit")
        self.name = name
        self.num_ports = num_ports
        self.be_buffer_flits = be_buffer_flits
        self.slot_table = slot_table
        self.strict_gt = strict_gt
        self.tracer = tracer
        #: Simulator reference so trace events carry real timestamps; when
        #: None (stand-alone unit-test harnesses), traces record time 0.
        self.sim = sim
        self.stats = stats if stats is not None else StatsRegistry()
        self.in_links: List[Optional[Link]] = [None] * num_ports
        self.out_links: List[Optional[Link]] = [None] * num_ports
        self._inputs = [_InputState() for _ in range(num_ports)]
        self._be_rr_pointer = [0] * num_ports
        self._be_output_locked_input: List[Optional[int]] = [None] * num_ports
        self._cycle = 0
        # ------------------------------------------------------- hot path
        #: (port, link) pairs for the connected inputs only, so the per-cycle
        #: accept loop skips unwired ports without a None test each.
        self._wired_in_links: List[tuple] = []
        # Flat per-output arrays for GT arbitration: stamped with a private
        # monotonic tick stamp instead of being cleared every cycle.
        self._gt_claim_stamp = [-1] * num_ports
        self._gt_first_port = [0] * num_ports
        self._gt_conflict_stamp = [-1] * num_ports
        self._tick_stamp = 0
        # Hot counters cached as attributes (one registry lookup at
        # construction, not one per flit); shared with ``self.stats``.
        stats_reg = self.stats
        self._ctr_gt_flits_in = stats_reg.counter("gt_flits_in")
        self._ctr_be_flits_in = stats_reg.counter("be_flits_in")
        self._ctr_gt_flits_out = stats_reg.counter("gt_flits_out")
        self._ctr_be_flits_out = stats_reg.counter("be_flits_out")
        self._ctr_gt_conflicts = stats_reg.counter("gt_conflicts")
        self._ctr_be_backpressure = stats_reg.counter("be_backpressure_stalls")
        self._ctr_slot_mismatches = stats_reg.counter(
            "slot_reservation_mismatches")
        self._rate_flits_out = stats_reg.rate("flits_out")

    # ---------------------------------------------------------------- wiring
    def connect_input(self, port: int, link: Link) -> None:
        self._check_port(port)
        link.sink = self
        link.sink_port = port
        self.in_links[port] = link
        self._wired_in_links = [(p, l) for p, l in enumerate(self.in_links)
                                if l is not None]

    def connect_output(self, port: int, link: Link) -> None:
        self._check_port(port)
        link.source = self
        link.source_port = port
        self.out_links[port] = link

    def _check_port(self, port: int) -> None:
        if not 0 <= port < self.num_ports:
            raise ValueError(f"router {self.name}: port {port} out of range")

    # ---------------------------------------------------------- backpressure
    def be_space(self, port: int) -> int:
        """Free best-effort buffer slots at input ``port`` (link flow control)."""
        self._check_port(port)
        return self.be_buffer_flits - len(self._inputs[port].be_queue)

    # ----------------------------------------------------------------- clock
    def tick(self, cycle: int) -> None:
        self._cycle = cycle
        self._accept_incoming(cycle)
        self._forward(cycle)

    def is_idle(self) -> bool:
        """Idle when no flit is buffered at any input.

        Flits still inside an attached link keep that link's clock awake (a
        link shares its sink's clock), so the router will be ticked to accept
        them; it does not need to inspect the links here.
        """
        for state in self._inputs:
            if state.gt_queue or state.be_queue:
                return False
        return True

    # -------------------------------------------------------------- incoming
    def _accept_incoming(self, cycle: int) -> None:
        for port, link in self._wired_in_links:
            flit = link.take()
            if flit is None:
                continue
            state = self._inputs[port]
            if flit.is_gt:
                state.gt_queue.append(flit)
                self._ctr_gt_flits_in.increment()
                if self.slot_table is not None:
                    self._check_slot_reservation(port, flit, cycle)
            else:
                if len(state.be_queue) >= self.be_buffer_flits:
                    raise BufferOverflowError(
                        f"router {self.name}: BE buffer overflow at input {port}")
                state.be_queue.append(flit)
                self._ctr_be_flits_in.increment()

    def _check_slot_reservation(self, port: int, flit: Flit, cycle: int) -> None:
        """In the distributed model, verify the arriving GT flit owns its slot."""
        if self.slot_table is None or not flit.is_head:
            return
        slot = cycle % self.slot_table.num_slots
        output = flit.packet.peek_route()
        owner = self.slot_table.owner(output, slot)
        if owner is not None and owner != flit.packet.header.channel_key:
            self._ctr_slot_mismatches.increment()
            self.tracer.record(self._now_ps(), self.name, "slot_mismatch",
                               slot=slot, output=output,
                               owner=owner,
                               channel=flit.packet.header.channel_key)

    def _now_ps(self) -> int:
        """Current simulation time for trace events (0 when unclocked)."""
        return self.sim.now if self.sim is not None else 0

    # ------------------------------------------------------------ forwarding
    def _forward(self, cycle: int) -> None:
        self._forward_gt(cycle)
        self._forward_be(cycle)

    def _forward_gt(self, cycle: int) -> None:
        """Forward one GT flit per requested output.

        The per-cycle request dict of the original implementation is
        replaced by flat per-output arrays stamped with a private monotonic
        tick stamp, so the common cycles (zero or one GT request) allocate
        nothing.  Conflicting requests (two inputs wanting one output) keep
        the original semantics: counted once per output per cycle, fatal
        under ``strict_gt``, first-requesting (lowest) input wins otherwise.
        """
        self._tick_stamp += 1
        stamp = self._tick_stamp
        claim = self._gt_claim_stamp
        first = self._gt_first_port
        conflicted = self._gt_conflict_stamp
        any_request = False
        for port, state in enumerate(self._inputs):
            if not state.gt_queue:
                continue
            flit = state.gt_queue[0]
            if flit.is_head:
                output = flit.packet.peek_route()
            else:
                if state.gt_active_output is None:
                    raise SlotConflictError(
                        f"router {self.name}: GT body flit with no active output")
                output = state.gt_active_output
            if claim[output] != stamp:
                claim[output] = stamp
                first[output] = port
                any_request = True
            elif conflicted[output] != stamp:
                conflicted[output] = stamp
                self._ctr_gt_conflicts.increment()
                if self.strict_gt:
                    keys = [self._inputs[p].gt_queue[0].packet.header.channel_key
                            for p in (first[output], port)]
                    raise SlotConflictError(
                        f"router {self.name}: GT slot conflict on output "
                        f"{output} in cycle {cycle} between channels {keys}")
        if not any_request:
            return
        for output in range(self.num_ports):
            if claim[output] == stamp:
                self._send_flit(first[output], output, gt=True, cycle=cycle)

    def _forward_be(self, cycle: int) -> None:
        """Wormhole-forward BE flits to every output GT left unused.

        Rotating-index scan: instead of materializing a candidates list per
        output per cycle, walk the input ports from the round-robin pointer
        (or pin the scan to the locked input while a packet is in flight).
        """
        inputs = self._inputs
        num_ports = self.num_ports
        claim = self._gt_claim_stamp
        stamp = self._tick_stamp
        locked_by_output = self._be_output_locked_input
        for output in range(num_ports):
            if claim[output] == stamp:       # GT used this output this cycle
                continue
            link = self.out_links[output]
            if link is None:
                continue
            locked = locked_by_output[output]
            if locked is not None:
                start, count, rotate = locked, 1, False
            else:
                start, count, rotate = self._be_rr_pointer[output], num_ports, True
            for offset in range(count):
                port = start + offset
                if port >= num_ports:
                    port -= num_ports
                state = inputs[port]
                if not state.be_queue:
                    continue
                flit = state.be_queue[0]
                if flit.is_head:
                    if state.be_active_output is not None:
                        continue
                    desired = flit.packet.peek_route()
                else:
                    desired = state.be_active_output
                if desired != output:
                    continue
                if not link.can_send_be():
                    self._ctr_be_backpressure.increment()
                    break
                self._send_flit(port, output, gt=False, cycle=cycle)
                if rotate:
                    pointer = port + 1
                    self._be_rr_pointer[output] = (
                        0 if pointer >= num_ports else pointer)
                break

    def _send_flit(self, port: int, output: int, gt: bool, cycle: int) -> None:
        state = self._inputs[port]
        queue = state.gt_queue if gt else state.be_queue
        flit = queue.popleft()
        link = self.out_links[output]
        if link is None:
            raise SlotConflictError(
                f"router {self.name}: no link on output {output}")
        if flit.is_head:
            taken = flit.packet.advance_route()
            if taken != output:
                raise SlotConflictError(
                    f"router {self.name}: route mismatch "
                    f"(expected {taken}, forwarding to {output})")
            if gt:
                state.gt_active_output = output
            else:
                state.be_active_output = output
                self._be_output_locked_input[output] = port
        if flit.is_tail:
            if gt:
                state.gt_active_output = None
            else:
                state.be_active_output = None
                self._be_output_locked_input[output] = None
        link.send(flit)
        if gt:
            self._ctr_gt_flits_out.increment()
        else:
            self._ctr_be_flits_out.increment()
        self._rate_flits_out.add(cycle)
        if self.tracer.enabled:
            self.tracer.record(self._now_ps(), self.name, "forward",
                               input=port, output=output,
                               traffic="gt" if gt else "be",
                               packet=flit.packet.packet_id, flit=flit.index)

    # ------------------------------------------------------------- inspection
    def buffered_flits(self) -> int:
        """Total flits buffered in this router (cost metric of [21])."""
        return sum(len(s.gt_queue) + len(s.be_queue) for s in self._inputs)

    def be_queue_depth(self, port: int) -> int:
        self._check_port(port)
        return len(self._inputs[port].be_queue)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Router({self.name}, ports={self.num_ports})"
