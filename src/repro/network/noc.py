"""NoC assembly: routers, links and NI attachment points.

:class:`NoCBuilder` collects the topology and the NI attachment declarations,
then :meth:`NoCBuilder.build` instantiates routers (with the right number of
ports), the links between them, and one link pair per attached NI.  The
resulting :class:`NoC` computes source routes between attachments and exposes
the per-link identifiers that the slot allocator reserves slots on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple, Union

import networkx as nx

from repro.network.link import Link
from repro.network.packet import FLIT_WORDS, NETWORK_FREQUENCY_MHZ
from repro.network.router import Router
from repro.network.routing import (
    RouteError,
    RoutingStrategy,
    make_routing,
    ports_from_router_sequence,
)
from repro.network.slot_table import RouterSlotTable
from repro.network.topology import PortMap, Topology, TopologyError, build_port_map
from repro.sim.clock import Clock
from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry
from repro.sim.trace import NULL_TRACER, Tracer

#: Identifier of a link for slot-allocation purposes.
LinkId = Tuple[str, str]


@dataclass
class Attachment:
    """One NI attachment point on the NoC."""

    name: str
    router_node: Hashable
    local_index: int
    local_port: int
    to_network: Link
    from_network: Link


class NoC:
    """A built network: routers, links and attachment points."""

    def __init__(self, sim: Simulator, topology: Topology, port_map: PortMap,
                 flit_clock: Clock, routers: Dict[Hashable, Router],
                 links: Dict[LinkId, Link],
                 attachments: Dict[str, Attachment],
                 routing_algorithm: Union[str, RoutingStrategy] = "auto",
                 tracer: Tracer = NULL_TRACER,
                 router_link_endpoints: Optional[
                     Dict[LinkId, Tuple[Hashable, Hashable]]] = None) -> None:
        self.sim = sim
        self.topology = topology
        self.port_map = port_map
        self.flit_clock = flit_clock
        self.routers = routers
        self.links = links
        self.attachments = attachments
        #: The default strategy; per-route overrides go through the
        #: ``routing=`` parameter of :meth:`route` and friends.
        self.routing = make_routing(routing_algorithm)
        self.routing_algorithm = self.routing.name
        self.tracer = tracer
        self.stats = StatsRegistry()
        #: Link ids currently failed (see :meth:`fail_link`).  While this set
        #: is non-empty every computed route is validated against it; when it
        #: is empty (the no-fault case) routing pays nothing.
        self.failed_links: set = set()
        #: Bumped on every fail/repair so route caches can invalidate.
        self.fault_version = 0
        #: Router-to-router link id -> ``(node_a, node_b)`` endpoints, used
        #: to translate failed links into topology edges for rerouting.
        self.router_link_endpoints = (router_link_endpoints
                                      if router_link_endpoints is not None
                                      else {})

    # -------------------------------------------------------------- lookups
    def attachment(self, name: str) -> Attachment:
        try:
            return self.attachments[name]
        except KeyError as exc:
            raise TopologyError(f"unknown NI attachment {name!r}") from exc

    def router(self, node: Hashable) -> Router:
        return self.routers[node]

    @property
    def num_routers(self) -> int:
        return len(self.routers)

    @property
    def num_links(self) -> int:
        return len(self.links)

    # --------------------------------------------------------------- routing
    def _strategy(self, routing: Optional[Union[str, RoutingStrategy]]
                  ) -> RoutingStrategy:
        return self.routing if routing is None else make_routing(routing)

    def router_sequence(self, src_name: str, dst_name: str,
                        routing: Optional[Union[str, RoutingStrategy]] = None
                        ) -> List[Hashable]:
        src = self.attachment(src_name)
        dst = self.attachment(dst_name)
        return self._strategy(routing).router_sequence(
            self.topology, src.router_node, dst.router_node)

    def route(self, src_name: str, dst_name: str,
              routing: Optional[Union[str, RoutingStrategy]] = None
              ) -> Tuple[int, ...]:
        """Source route (output port per router) from one NI to another.

        ``routing`` overrides the NoC default strategy for this route (the
        per-connection ``connect(..., routing=...)`` knob resolves here).
        Raises :class:`RouteError` when the computed route crosses a failed
        link (see :meth:`fail_link`).
        """
        dst = self.attachment(dst_name)
        sequence = self.router_sequence(src_name, dst_name, routing=routing)
        if self.failed_links:
            self._check_route_health(
                self._sequence_link_ids(sequence, src_name, dst_name),
                src_name, dst_name)
        return ports_from_router_sequence(self.port_map, sequence,
                                          dst.local_port)

    def route_link_ids(self, src_name: str, dst_name: str,
                       routing: Optional[Union[str, RoutingStrategy]] = None
                       ) -> List[LinkId]:
        """Every link (including NI-router links) a route traverses, in order."""
        sequence = self.router_sequence(src_name, dst_name, routing=routing)
        ids = self._sequence_link_ids(sequence, src_name, dst_name)
        if self.failed_links:
            self._check_route_health(ids, src_name, dst_name)
        return ids

    @staticmethod
    def _sequence_link_ids(sequence: List[Hashable], src_name: str,
                           dst_name: str) -> List[LinkId]:
        ids: List[LinkId] = [(f"ni:{src_name}", f"router:{sequence[0]!r}")]
        for a, b in zip(sequence, sequence[1:]):
            ids.append((f"router:{a!r}", f"router:{b!r}"))
        ids.append((f"router:{sequence[-1]!r}", f"ni:{dst_name}"))
        return ids

    def hop_count(self, src_name: str, dst_name: str,
                  routing: Optional[Union[str, RoutingStrategy]] = None) -> int:
        """Number of routers traversed between two NIs."""
        return len(self.router_sequence(src_name, dst_name, routing=routing))

    # ---------------------------------------------------------------- faults
    def fail_link(self, link_id: LinkId) -> None:
        """Take one directed link down (see :meth:`Link.fail`)."""
        try:
            link = self.links[link_id]
        except KeyError as exc:
            raise TopologyError(f"unknown link {link_id!r}") from exc
        link.fail()
        self.failed_links.add(link_id)
        self.fault_version += 1

    def repair_link(self, link_id: LinkId) -> None:
        """Bring one directed link back up."""
        try:
            link = self.links[link_id]
        except KeyError as exc:
            raise TopologyError(f"unknown link {link_id!r}") from exc
        link.repair()
        self.failed_links.discard(link_id)
        self.fault_version += 1

    def failed_router_edges(self) -> set:
        """Node pairs ``(a, b)`` of currently failed router-to-router links.

        Iterates a sorted view of ``failed_links``: callers remove graph
        edges / reroute from this, so the walk must not depend on set hash
        order (reprolint det-unordered-iter).
        """
        edges = set()
        for link_id in sorted(self.failed_links, key=repr):
            endpoints = self.router_link_endpoints.get(link_id)
            if endpoints is not None:
                edges.add(endpoints)
        return edges

    def _check_route_health(self, link_ids: List[LinkId], src_name: str,
                            dst_name: str) -> None:
        for link_id in link_ids:
            if link_id in self.failed_links:
                raise RouteError(
                    self._dead_link_message(link_id, src_name, dst_name))

    def _dead_link_message(self, link_id: LinkId, src_name: str,
                           dst_name: str) -> str:
        head = (f"route {src_name}->{dst_name} crosses failed link "
                f"{link_id[0]}->{link_id[1]}")
        if self._has_fault_free_path(src_name, dst_name):
            return (head + "; a fault-free path exists — route with "
                    "repro.faults.FaultAwareRouting to mask failed links")
        return head + " and no fault-free path exists"

    def _has_fault_free_path(self, src_name: str, dst_name: str) -> bool:
        src = self.attachment(src_name)
        dst = self.attachment(dst_name)
        if (f"ni:{src_name}", f"router:{src.router_node!r}") in self.failed_links:
            return False
        if (f"router:{dst.router_node!r}", f"ni:{dst_name}") in self.failed_links:
            return False
        graph = self.topology.graph.copy()
        for a, b in self.failed_router_edges():
            if graph.has_edge(a, b):
                graph.remove_edge(a, b)
        return nx.has_path(graph, src.router_node, dst.router_node)

    # ------------------------------------------------------------ statistics
    def total_flits_forwarded(self) -> int:
        return sum(r.stats.counter("gt_flits_out").value +
                   r.stats.counter("be_flits_out").value
                   for r in self.routers.values())

    def link_utilization(self, window_cycles: int) -> Dict[LinkId, float]:
        return {lid: link.utilization(window_cycles)
                for lid, link in self.links.items()}


class NoCBuilder:
    """Collects the topology and NI attachments, then builds the network."""

    def __init__(self, topology: Topology, num_slots: int = 8,
                 be_buffer_flits: int = 8,
                 router_slot_tables: bool = False,
                 strict_gt: bool = True,
                 routing_algorithm: Union[str, RoutingStrategy] = "auto",
                 flit_frequency_mhz: Optional[float] = None,
                 tracer: Tracer = NULL_TRACER) -> None:
        self.topology = topology
        self.num_slots = num_slots
        self.be_buffer_flits = be_buffer_flits
        self.router_slot_tables = router_slot_tables
        self.strict_gt = strict_gt
        self.routing_algorithm = routing_algorithm
        self.tracer = tracer
        #: The network moves one flit (3 words) per flit-clock cycle; the
        #: word-level clock of the prototype is 500 MHz, so the flit clock is
        #: 500/3 MHz unless overridden.
        self.flit_frequency_mhz = (flit_frequency_mhz if flit_frequency_mhz
                                   else NETWORK_FREQUENCY_MHZ / FLIT_WORDS)
        self._declared: List[Tuple[str, Hashable]] = []

    # ------------------------------------------------------------- declaring
    def add_ni(self, name: str, router_node: Hashable) -> None:
        if router_node not in self.topology.graph:
            raise TopologyError(f"unknown router {router_node!r}")
        if any(existing == name for existing, _ in self._declared):
            raise TopologyError(f"duplicate NI attachment name {name!r}")
        self._declared.append((name, router_node))

    @property
    def declared_nis(self) -> List[Tuple[str, Hashable]]:
        return list(self._declared)

    # -------------------------------------------------------------- building
    def build(self, sim: Simulator) -> NoC:
        local_counts: Dict[Hashable, int] = {}
        for _, node in self._declared:
            local_counts[node] = local_counts.get(node, 0) + 1
        for node in self.topology.routers:
            local_counts.setdefault(node, 0)
        port_map = build_port_map(self.topology, local_counts)

        flit_clock = Clock(sim, self.flit_frequency_mhz, name="flit_clk")

        routers: Dict[Hashable, Router] = {}
        for node in self.topology.routers:
            slot_table = None
            if self.router_slot_tables:
                slot_table = RouterSlotTable(port_map.num_ports[node],
                                             self.num_slots)
            router = Router(name=f"R{node!r}",
                            num_ports=port_map.num_ports[node],
                            be_buffer_flits=self.be_buffer_flits,
                            slot_table=slot_table,
                            strict_gt=self.strict_gt,
                            tracer=self.tracer,
                            sim=sim)
            routers[node] = router
            flit_clock.add_component(router)

        links: Dict[LinkId, Link] = {}

        def make_link(link_id: LinkId) -> Link:
            link = Link(name=f"{link_id[0]}->{link_id[1]}", tracer=self.tracer)
            links[link_id] = link
            flit_clock.add_component(link)
            return link

        # Router-to-router links (both directions per topology edge).
        router_link_endpoints: Dict[LinkId, Tuple[Hashable, Hashable]] = {}
        for a in self.topology.routers:
            for b in self.topology.neighbors(a):
                link_id = (f"router:{a!r}", f"router:{b!r}")
                if link_id in links:
                    continue
                link = make_link(link_id)
                router_link_endpoints[link_id] = (a, b)
                routers[a].connect_output(port_map.port_toward(a, b), link)
                routers[b].connect_input(port_map.port_toward(b, a), link)

        # NI attachment links.
        attachments: Dict[str, Attachment] = {}
        per_node_index: Dict[Hashable, int] = {}
        for name, node in self._declared:
            local_index = per_node_index.get(node, 0)
            per_node_index[node] = local_index + 1
            local_port = port_map.local_port(node, local_index)
            to_net = make_link((f"ni:{name}", f"router:{node!r}"))
            from_net = make_link((f"router:{node!r}", f"ni:{name}"))
            routers[node].connect_input(local_port, to_net)
            routers[node].connect_output(local_port, from_net)
            attachments[name] = Attachment(name=name, router_node=node,
                                           local_index=local_index,
                                           local_port=local_port,
                                           to_network=to_net,
                                           from_network=from_net)

        return NoC(sim=sim, topology=self.topology, port_map=port_map,
                   flit_clock=flit_clock, routers=routers, links=links,
                   attachments=attachments,
                   routing_algorithm=self.routing_algorithm,
                   tracer=self.tracer,
                   router_link_endpoints=router_link_endpoints)
