"""Source-route computation through first-class routing strategies.

Aethereal uses source routing: the packet header carries the sequence of
output ports to take at every router along the path (Section 4.1: "a packet
header consists of the routing information (... path for source routing)").

A :class:`RoutingStrategy` turns a (topology, source, destination) triple
into a router sequence; :func:`ports_from_router_sequence` then converts the
sequence into the concrete source route through the
:class:`~repro.network.topology.PortMap`.  Four strategies ship:

* :class:`XYRouting` — minimal dimension-ordered (X then Y) routing on
  meshes; deadlock-free for best-effort wormhole traffic.
* :class:`ShortestPath` — shortest-path routing on arbitrary graphs; no
  deadlock guarantee (see :mod:`repro.analysis.deadlock`).
* :class:`TorusDimensionOrdered` — dimension-ordered routing on tori with a
  wraparound-aware direction choice.  A wraparound link is used only when it
  covers a dimension's entire traversal in one hop, which keeps the
  best-effort channel-dependency graph acyclic without virtual channels (at
  the cost of one extra hop on far pairs of dimensions larger than 4).
* :class:`TableRouting` — an escape hatch: user-supplied router sequences
  per (source, destination) pair.

Strategies are resolved by name through :data:`ROUTING_STRATEGIES` /
:func:`make_routing`, and any object with the :class:`RoutingStrategy`
interface is accepted wherever a name is — the spec layer, the NoC and the
builder all take either.  ``"auto"`` preserves the historical dispatch: XY
when the endpoints carry mesh coordinates, shortest-path otherwise.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Sequence, Tuple, Union

from repro.network.topology import (
    PortMap,
    Topology,
    TopologyError,
    mesh_coordinates,
)


class RouteError(ValueError):
    """Raised when no route can be produced."""


# ---------------------------------------------------------------------------
# Router-sequence primitives (kept as functions: the strategies build on
# them and a lot of analysis/test code calls them directly)
# ---------------------------------------------------------------------------
def router_sequence_xy(topology: Topology, src: Hashable,
                       dst: Hashable) -> List[Hashable]:
    """Dimension-ordered (X then Y) router sequence on a mesh."""
    sr, sc = mesh_coordinates(src)
    dr, dc = mesh_coordinates(dst)
    sequence: List[Hashable] = [(sr, sc)]
    r, c = sr, sc
    while c != dc:
        c += 1 if dc > c else -1
        sequence.append((r, c))
    while r != dr:
        r += 1 if dr > r else -1
        sequence.append((r, c))
    for a, b in zip(sequence, sequence[1:]):
        if not topology.graph.has_edge(a, b):
            raise RouteError(f"XY route uses missing link {a!r} -> {b!r}")
    return sequence


def router_sequence_shortest(topology: Topology, src: Hashable,
                             dst: Hashable) -> List[Hashable]:
    try:
        return topology.shortest_path(src, dst)
    except TopologyError as exc:
        raise RouteError(str(exc)) from exc


def ports_from_router_sequence(port_map: PortMap,
                               sequence: List[Hashable],
                               final_local_port: int) -> Tuple[int, ...]:
    """Convert a router sequence into a source route of output ports.

    The route has one entry per router traversed: at every router except the
    last, the port toward the next router; at the last router, the local port
    of the destination NI.
    """
    if not sequence:
        raise RouteError("empty router sequence")
    ports: List[int] = []
    for here, nxt in zip(sequence, sequence[1:]):
        ports.append(port_map.port_toward(here, nxt))
    ports.append(final_local_port)
    return tuple(ports)


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
class RoutingStrategy:
    """Turns (topology, src, dst) into a router sequence.

    Subclasses implement :meth:`router_sequence`; :meth:`route` converts the
    sequence into the source route of output ports via the port map.  The
    class attribute :attr:`name` is the registry / spec name.
    """

    name = "strategy"

    def router_sequence(self, topology: Topology, src: Hashable,
                        dst: Hashable) -> List[Hashable]:
        raise NotImplementedError

    def spec_name(self) -> str:
        """The registry name that losslessly denotes this strategy in a
        serialized spec; raises :class:`RouteError` when the instance
        carries state a bare name cannot round-trip (e.g. a routing
        table)."""
        if self.name not in ROUTING_STRATEGIES:
            raise RouteError(
                f"routing strategy {self!r} is not name-registered and "
                "cannot be serialized; register it with register_routing() "
                "or use a registered name")
        return self.name

    def route(self, topology: Topology, port_map: PortMap, src: Hashable,
              dst: Hashable, final_local_port: int) -> Tuple[int, ...]:
        sequence = self.router_sequence(topology, src, dst)
        return ports_from_router_sequence(port_map, sequence,
                                          final_local_port)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class XYRouting(RoutingStrategy):
    """Minimal dimension-ordered routing on meshes (deadlock-free for BE)."""

    name = "xy"

    def router_sequence(self, topology: Topology, src: Hashable,
                        dst: Hashable) -> List[Hashable]:
        return router_sequence_xy(topology, src, dst)


class ShortestPath(RoutingStrategy):
    """Shortest-path routing on arbitrary graphs (no deadlock guarantee)."""

    name = "shortest"

    def router_sequence(self, topology: Topology, src: Hashable,
                        dst: Hashable) -> List[Hashable]:
        return router_sequence_shortest(topology, src, dst)


class AutoRouting(RoutingStrategy):
    """The historical default: XY when it applies, shortest-path otherwise.

    Mirrors the seed-era dispatch exactly — the XY attempt is made whenever
    possible and *any* failure (non-coordinate nodes, missing mesh links)
    falls back to shortest-path, so existing mesh/ring/single-router systems
    keep byte-identical routes.
    """

    name = "auto"

    def router_sequence(self, topology: Topology, src: Hashable,
                        dst: Hashable) -> List[Hashable]:
        try:
            return router_sequence_xy(topology, src, dst)
        except Exception:
            return router_sequence_shortest(topology, src, dst)


class TorusDimensionOrdered(RoutingStrategy):
    """Dimension-ordered (X then Y) routing on a torus.

    Within each dimension the direction is wraparound-aware: the wraparound
    link is taken when it covers the whole dimension traversal in a single
    hop (offset ``±1 mod size``); otherwise the route stays on the mesh-like
    line even when the wrapping direction would be shorter.  Multi-hop
    segments therefore never cross a wraparound link, which keeps the
    best-effort channel-dependency graph acyclic — the classic torus cycle
    needs a route that *continues past* the dateline — so this strategy
    passes :func:`repro.analysis.deadlock.assert_deadlock_free` without
    virtual channels.  For dimensions of size <= 4 every route is still
    minimal; larger dimensions pay at most ``size - 3`` extra hops on far
    wrap pairs.

    The dimensions come from the constructor or, by default, from the
    ``torus_rows`` / ``torus_cols`` graph attributes that
    :meth:`Topology.torus` records.
    """

    name = "torus"

    def __init__(self, rows: int = 0, cols: int = 0) -> None:
        self.rows = rows
        self.cols = cols

    def _dimensions(self, topology: Topology) -> Tuple[int, int]:
        rows = self.rows or topology.graph.graph.get("torus_rows", 0)
        cols = self.cols or topology.graph.graph.get("torus_cols", 0)
        if rows <= 0 or cols <= 0:
            raise RouteError(
                "torus routing needs the torus dimensions: build the "
                "topology with Topology.torus(rows, cols) or pass "
                "TorusDimensionOrdered(rows=..., cols=...) explicitly")
        return rows, cols

    @staticmethod
    def _axis_steps(position: int, target: int, size: int) -> List[int]:
        """The positions visited moving from ``position`` to ``target``."""
        if position == target:
            return []
        line_distance = abs(target - position)
        if size - line_distance == 1:
            # The wraparound link covers the traversal in one hop.
            return [target]
        step = 1 if target > position else -1
        return list(range(position + step, target + step, step))

    def router_sequence(self, topology: Topology, src: Hashable,
                        dst: Hashable) -> List[Hashable]:
        rows, cols = self._dimensions(topology)
        sr, sc = mesh_coordinates(src)
        dr, dc = mesh_coordinates(dst)
        sequence: List[Hashable] = [(sr, sc)]
        for c in self._axis_steps(sc, dc, cols):
            sequence.append((sr, c))
        for r in self._axis_steps(sr, dr, rows):
            sequence.append((r, dc))
        for a, b in zip(sequence, sequence[1:]):
            if not topology.graph.has_edge(a, b):
                raise RouteError(
                    f"torus route uses missing link {a!r} -> {b!r}")
        return sequence

    def spec_name(self) -> str:
        if self.rows or self.cols:
            raise RouteError(
                f"{self!r} carries explicit dimensions that the name "
                "'torus' cannot round-trip; build the topology with "
                "Topology.torus(rows, cols) (which records the dimensions "
                "as graph attributes) and use the bare 'torus' name")
        return self.name

    def __repr__(self) -> str:
        return f"TorusDimensionOrdered(rows={self.rows}, cols={self.cols})"


class TableRouting(RoutingStrategy):
    """User-supplied router sequences per (source, destination) pair.

    The escape hatch for irregular topologies where neither XY nor
    shortest-path produce the desired (e.g. deadlock-free) paths: supply
    the exact router sequence for every pair you route, and the port map
    machinery turns them into source routes like any other strategy::

        TableRouting({("cpu", "mem"): ["cpu", "bridge", "mem"]})

    Pairs not present in the table raise :class:`RouteError`; each sequence
    must start at the source and end at the destination, and is checked
    against the topology's links when used.
    """

    name = "table"

    def __init__(self, table: Dict[Tuple[Hashable, Hashable],
                                   Sequence[Hashable]]) -> None:
        self.table = {pair: list(sequence)
                      for pair, sequence in table.items()}
        for (src, dst), sequence in self.table.items():
            if not sequence or sequence[0] != src or sequence[-1] != dst:
                raise RouteError(
                    f"table route for {src!r} -> {dst!r} must start at the "
                    f"source and end at the destination, got {sequence!r}")

    def spec_name(self) -> str:
        raise RouteError(
            "TableRouting carries user-supplied paths that a name cannot "
            "round-trip; serialize systems using table routing with the "
            "table reconstructed at load time instead")

    def router_sequence(self, topology: Topology, src: Hashable,
                        dst: Hashable) -> List[Hashable]:
        try:
            sequence = self.table[(src, dst)]
        except KeyError:
            raise RouteError(
                f"routing table has no entry for {src!r} -> {dst!r} "
                f"({len(self.table)} entries)") from None
        for a, b in zip(sequence, sequence[1:]):
            if not topology.graph.has_edge(a, b):
                raise RouteError(
                    f"table route {src!r} -> {dst!r} uses missing link "
                    f"{a!r} -> {b!r}")
        return list(sequence)

    def __repr__(self) -> str:
        return f"TableRouting(<{len(self.table)} entries>)"


# ---------------------------------------------------------------------------
# Strategy registry
# ---------------------------------------------------------------------------
#: Registered routing strategies, keyed by spec name.  Values are callables
#: returning a ready strategy; :class:`TableRouting` is not name-registered
#: because it cannot exist without its table — pass an instance instead.
ROUTING_STRATEGIES: Dict[str, Callable[[], RoutingStrategy]] = {
    "auto": AutoRouting,
    "xy": XYRouting,
    "shortest": ShortestPath,
    "torus": TorusDimensionOrdered,
}


def _fault_aware_factory() -> "RoutingStrategy":
    # Imported lazily: repro.faults builds on this module.
    from repro.faults.routing import FaultAwareRouting
    return FaultAwareRouting()


#: "fault_aware" resolves to a FaultAwareRouting wrapping "auto" with no
#: failures — a transparent pass-through until edges are failed on it.
ROUTING_STRATEGIES["fault_aware"] = _fault_aware_factory


def register_routing(name: str,
                     factory: Callable[[], RoutingStrategy]) -> None:
    """Register a routing strategy factory under ``name``."""
    ROUTING_STRATEGIES[name] = factory


def routing_names() -> List[str]:
    return sorted(ROUTING_STRATEGIES)


def make_routing(spec: Union[str, RoutingStrategy]) -> RoutingStrategy:
    """Resolve a strategy name (or pass through a strategy instance)."""
    if isinstance(spec, RoutingStrategy):
        return spec
    try:
        factory = ROUTING_STRATEGIES[spec]
    except (KeyError, TypeError):
        raise RouteError(
            f"unknown routing algorithm {spec!r} "
            f"(registered: {', '.join(routing_names())}; or pass a "
            "RoutingStrategy instance, e.g. TableRouting)") from None
    return factory()


# ---------------------------------------------------------------------------
# Compatibility wrappers (the seed-era functional API)
# ---------------------------------------------------------------------------
def xy_route(topology: Topology, port_map: PortMap, src: Hashable,
             dst: Hashable, final_local_port: int) -> Tuple[int, ...]:
    """Minimal XY source route between two routers of a mesh."""
    return XYRouting().route(topology, port_map, src, dst, final_local_port)


def compute_route(topology: Topology, port_map: PortMap, src: Hashable,
                  dst: Hashable, final_local_port: int,
                  algorithm: Union[str, RoutingStrategy] = "auto"
                  ) -> Tuple[int, ...]:
    """Compute a source route.

    ``algorithm`` is a registered strategy name (``"xy"``, ``"shortest"``,
    ``"torus"``, ``"auto"``) or a :class:`RoutingStrategy` instance.  For
    ``"auto"`` this wrapper keeps the seed semantics: XY when both endpoints
    carry mesh coordinates (XY errors propagate), shortest-path otherwise.
    """
    strategy = make_routing(algorithm)
    if type(strategy) is AutoRouting:
        use_xy = True
        try:
            mesh_coordinates(src)
            mesh_coordinates(dst)
        except TopologyError:
            use_xy = False
        strategy = XYRouting() if use_xy else ShortestPath()
    return strategy.route(topology, port_map, src, dst, final_local_port)


def route_hop_count(route: Tuple[int, ...]) -> int:
    """Number of routers a packet with this source route traverses."""
    return len(route)


def links_on_route(sequence: List[Hashable]) -> List[Tuple[Hashable, Hashable]]:
    """Router-to-router links traversed by a router sequence."""
    return list(zip(sequence, sequence[1:]))
