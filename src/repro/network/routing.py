"""Source-route computation.

Aethereal uses source routing: the packet header carries the sequence of
output ports to take at every router along the path (Section 4.1: "a packet
header consists of the routing information (... path for source routing)").

Routes are computed either by minimal XY routing on meshes (deadlock-free for
best-effort wormhole traffic) or by shortest-path routing on arbitrary graphs.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Tuple

from repro.network.topology import PortMap, Topology, TopologyError, mesh_coordinates


class RouteError(ValueError):
    """Raised when no route can be produced."""


def router_sequence_xy(topology: Topology, src: Hashable,
                       dst: Hashable) -> List[Hashable]:
    """Dimension-ordered (X then Y) router sequence on a mesh."""
    sr, sc = mesh_coordinates(src)
    dr, dc = mesh_coordinates(dst)
    sequence: List[Hashable] = [(sr, sc)]
    r, c = sr, sc
    while c != dc:
        c += 1 if dc > c else -1
        sequence.append((r, c))
    while r != dr:
        r += 1 if dr > r else -1
        sequence.append((r, c))
    for a, b in zip(sequence, sequence[1:]):
        if not topology.graph.has_edge(a, b):
            raise RouteError(f"XY route uses missing link {a!r} -> {b!r}")
    return sequence


def router_sequence_shortest(topology: Topology, src: Hashable,
                             dst: Hashable) -> List[Hashable]:
    try:
        return topology.shortest_path(src, dst)
    except TopologyError as exc:
        raise RouteError(str(exc)) from exc


def ports_from_router_sequence(port_map: PortMap,
                               sequence: List[Hashable],
                               final_local_port: int) -> Tuple[int, ...]:
    """Convert a router sequence into a source route of output ports.

    The route has one entry per router traversed: at every router except the
    last, the port toward the next router; at the last router, the local port
    of the destination NI.
    """
    if not sequence:
        raise RouteError("empty router sequence")
    ports: List[int] = []
    for here, nxt in zip(sequence, sequence[1:]):
        ports.append(port_map.port_toward(here, nxt))
    ports.append(final_local_port)
    return tuple(ports)


def xy_route(topology: Topology, port_map: PortMap, src: Hashable,
             dst: Hashable, final_local_port: int) -> Tuple[int, ...]:
    """Minimal XY source route between two routers of a mesh."""
    sequence = router_sequence_xy(topology, src, dst)
    return ports_from_router_sequence(port_map, sequence, final_local_port)


def compute_route(topology: Topology, port_map: PortMap, src: Hashable,
                  dst: Hashable, final_local_port: int,
                  algorithm: str = "auto") -> Tuple[int, ...]:
    """Compute a source route.

    ``algorithm`` is ``"xy"``, ``"shortest"`` or ``"auto"`` (XY when both
    endpoints carry mesh coordinates, shortest-path otherwise).
    """
    if algorithm not in ("auto", "xy", "shortest"):
        raise RouteError(f"unknown routing algorithm {algorithm!r}")
    use_xy = algorithm == "xy"
    if algorithm == "auto":
        try:
            mesh_coordinates(src)
            mesh_coordinates(dst)
            use_xy = True
        except TopologyError:
            use_xy = False
    if use_xy:
        sequence = router_sequence_xy(topology, src, dst)
    else:
        sequence = router_sequence_shortest(topology, src, dst)
    return ports_from_router_sequence(port_map, sequence, final_local_port)


def route_hop_count(route: Tuple[int, ...]) -> int:
    """Number of routers a packet with this source route traverses."""
    return len(route)


def links_on_route(sequence: List[Hashable]) -> List[Tuple[Hashable, Hashable]]:
    """Router-to-router links traversed by a router sequence."""
    return list(zip(sequence, sequence[1:]))
