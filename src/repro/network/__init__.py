"""The Aethereal NoC substrate: packets, links, routers, topologies, routing.

The network interface (the paper's contribution, :mod:`repro.core`) sits on
top of this substrate.  The substrate reproduces the router of Rijpkema et
al. (DATE 2003, reference [21] of the paper): a combined guaranteed-throughput
(GT) / best-effort (BE) router where GT traffic is forwarded on reserved TDM
slots (contention-free by construction) and BE traffic is wormhole-routed with
round-robin arbitration and link-level backpressure.
"""

from repro.network.link import Link, LinkContentionError
from repro.network.noc import NoC, NoCBuilder
from repro.network.packet import (
    CYCLES_PER_FLIT,
    FLIT_WORDS,
    MAX_HEADER_CREDITS,
    NETWORK_FREQUENCY_MHZ,
    WORD_BITS,
    Flit,
    Packet,
    PacketHeader,
    packet_to_flits,
)
from repro.network.router import (
    BufferOverflowError,
    Router,
    SlotConflictError,
)
from repro.network.routing import (
    ROUTING_STRATEGIES,
    AutoRouting,
    RouteError,
    RoutingStrategy,
    ShortestPath,
    TableRouting,
    TorusDimensionOrdered,
    XYRouting,
    compute_route,
    make_routing,
    register_routing,
    routing_names,
    xy_route,
)
from repro.network.slot_table import RouterSlotTable, SlotTable, SlotTableError
from repro.network.topology import (
    TOPOLOGY_FACTORIES,
    PortMap,
    Topology,
    TopologyError,
    make_topology,
    register_topology,
    topology_names,
)

__all__ = [
    "AutoRouting",
    "BufferOverflowError",
    "CYCLES_PER_FLIT",
    "FLIT_WORDS",
    "Flit",
    "Link",
    "LinkContentionError",
    "MAX_HEADER_CREDITS",
    "NETWORK_FREQUENCY_MHZ",
    "NoC",
    "NoCBuilder",
    "Packet",
    "PacketHeader",
    "PortMap",
    "ROUTING_STRATEGIES",
    "RouteError",
    "Router",
    "RouterSlotTable",
    "RoutingStrategy",
    "ShortestPath",
    "SlotConflictError",
    "SlotTable",
    "SlotTableError",
    "TOPOLOGY_FACTORIES",
    "TableRouting",
    "Topology",
    "TopologyError",
    "TorusDimensionOrdered",
    "WORD_BITS",
    "XYRouting",
    "compute_route",
    "make_routing",
    "make_topology",
    "packet_to_flits",
    "register_routing",
    "register_topology",
    "routing_names",
    "topology_names",
    "xy_route",
]
