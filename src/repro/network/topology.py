"""NoC topologies and router port maps.

The paper targets small NoCs (around 10 routers).  We provide mesh, ring and
fully-custom topologies.  A :class:`Topology` is a graph of router nodes; a
:class:`PortMap` assigns concrete port indices to each router: neighbour ports
first (in a deterministic order), then local ports for the NIs attached to the
router.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

import networkx as nx


class TopologyError(ValueError):
    """Raised for malformed topologies (unknown nodes, disconnected graphs)."""


class Topology:
    """An undirected graph of router nodes.

    Node identifiers are arbitrary hashables; the mesh constructor uses
    ``(row, column)`` tuples so XY routing can inspect coordinates.
    """

    def __init__(self, name: str = "noc") -> None:
        self.name = name
        self.graph = nx.Graph()

    # -------------------------------------------------------------- building
    def add_router(self, node: Hashable) -> None:
        self.graph.add_node(node)

    def connect(self, a: Hashable, b: Hashable) -> None:
        if a == b:
            raise TopologyError("cannot connect a router to itself")
        self.graph.add_edge(a, b)

    @property
    def routers(self) -> List[Hashable]:
        return sorted(self.graph.nodes, key=repr)

    @property
    def num_routers(self) -> int:
        return self.graph.number_of_nodes()

    def neighbors(self, node: Hashable) -> List[Hashable]:
        if node not in self.graph:
            raise TopologyError(f"unknown router {node!r}")
        return sorted(self.graph.neighbors(node), key=repr)

    def degree(self, node: Hashable) -> int:
        return len(self.neighbors(node))

    def shortest_path(self, src: Hashable, dst: Hashable) -> List[Hashable]:
        if src not in self.graph or dst not in self.graph:
            raise TopologyError(f"unknown router in path {src!r} -> {dst!r}")
        try:
            return nx.shortest_path(self.graph, src, dst)
        except nx.NetworkXNoPath as exc:
            raise TopologyError(f"no path from {src!r} to {dst!r}") from exc

    def is_connected(self) -> bool:
        if self.graph.number_of_nodes() == 0:
            return True
        return nx.is_connected(self.graph)

    def diameter(self) -> int:
        if self.graph.number_of_nodes() <= 1:
            return 0
        return nx.diameter(self.graph)

    # ------------------------------------------------------------- factories
    @classmethod
    def mesh(cls, rows: int, cols: int, name: str = "mesh") -> "Topology":
        """A ``rows x cols`` 2D mesh with ``(row, col)`` node identifiers."""
        if rows <= 0 or cols <= 0:
            raise TopologyError("mesh dimensions must be positive")
        topo = cls(name=f"{name}_{rows}x{cols}")
        for r in range(rows):
            for c in range(cols):
                topo.add_router((r, c))
        for r in range(rows):
            for c in range(cols):
                if r + 1 < rows:
                    topo.connect((r, c), (r + 1, c))
                if c + 1 < cols:
                    topo.connect((r, c), (r, c + 1))
        return topo

    @classmethod
    def ring(cls, num_routers: int, name: str = "ring") -> "Topology":
        if num_routers <= 0:
            raise TopologyError("ring size must be positive")
        topo = cls(name=f"{name}_{num_routers}")
        for i in range(num_routers):
            topo.add_router(i)
        if num_routers == 1:
            return topo
        for i in range(num_routers):
            topo.connect(i, (i + 1) % num_routers)
        return topo

    @classmethod
    def single_router(cls, name: str = "single") -> "Topology":
        topo = cls(name=name)
        topo.add_router(0)
        return topo


@dataclass
class PortMap:
    """Concrete port numbering for every router of a topology.

    ``neighbor_ports[node][peer]`` is the output/input port index at ``node``
    toward ``peer``; ``local_ports[node]`` is the list of port indices used by
    locally attached NIs; ``num_ports[node]`` is the total port count.
    """

    neighbor_ports: Dict[Hashable, Dict[Hashable, int]] = field(default_factory=dict)
    local_ports: Dict[Hashable, List[int]] = field(default_factory=dict)
    num_ports: Dict[Hashable, int] = field(default_factory=dict)

    def port_toward(self, node: Hashable, peer: Hashable) -> int:
        try:
            return self.neighbor_ports[node][peer]
        except KeyError as exc:
            raise TopologyError(
                f"router {node!r} has no port toward {peer!r}") from exc

    def local_port(self, node: Hashable, index: int) -> int:
        ports = self.local_ports.get(node, [])
        if index >= len(ports):
            raise TopologyError(
                f"router {node!r} has only {len(ports)} local ports, "
                f"index {index} requested")
        return ports[index]


def build_port_map(topology: Topology,
                   local_counts: Optional[Dict[Hashable, int]] = None) -> PortMap:
    """Assign port indices: neighbour ports first (deterministic order), then
    ``local_counts[node]`` local ports for NIs (default 1 per router)."""
    local_counts = dict(local_counts or {})
    port_map = PortMap()
    for node in topology.routers:
        neighbors = topology.neighbors(node)
        mapping = {peer: idx for idx, peer in enumerate(neighbors)}
        port_map.neighbor_ports[node] = mapping
        n_local = local_counts.get(node, 1)
        base = len(neighbors)
        port_map.local_ports[node] = [base + i for i in range(n_local)]
        port_map.num_ports[node] = base + n_local
    return port_map


def mesh_coordinates(node: Hashable) -> Tuple[int, int]:
    """Interpret a mesh node id as (row, col); raises for other topologies."""
    if (isinstance(node, tuple) and len(node) == 2
            and all(isinstance(x, int) for x in node)):
        return node  # type: ignore[return-value]
    raise TopologyError(f"node {node!r} does not carry mesh coordinates")


def attach_points(topology: Topology, ni_names: Iterable[str]) -> Dict[str, Hashable]:
    """Spread NIs over routers round-robin (helper for quick experiment setup)."""
    routers = topology.routers
    mapping: Dict[str, Hashable] = {}
    for index, name in enumerate(ni_names):
        mapping[name] = routers[index % len(routers)]
    return mapping
