"""NoC topologies, the topology factory registry, and router port maps.

The paper targets small NoCs (around 10 routers) with *arbitrary* topologies
— source routing means the network itself imposes no shape.  A
:class:`Topology` is a graph of router nodes; a :class:`PortMap` assigns
concrete port indices to each router: neighbour ports first (in a
deterministic order), then local ports for the NIs attached to the router.

Topologies are created through registered factories
(:data:`TOPOLOGY_FACTORIES`, :func:`make_topology`): ``mesh``, ``ring``,
``single_router``, ``torus`` (mesh with wraparound links), ``double_ring``
(two concentric rings joined by spokes), ``tree`` (a rooted ``arity``-ary
tree) and ``custom`` (explicit node/edge lists).  Register your own with
:func:`register_topology` and it becomes available everywhere a topology
kind is named — the design spec, the XML serialization and the
:class:`~repro.api.builder.SystemBuilder` front door.

Nodes may carry attributes (``add_router(node, level=2)``), so topologies
whose identifiers are not coordinate tuples can still hand their routing
strategy whatever it needs (:meth:`Topology.node_attrs`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Tuple

import networkx as nx


class TopologyError(ValueError):
    """Raised for malformed topologies (unknown nodes, disconnected graphs)."""


class Topology:
    """An undirected graph of router nodes.

    Node identifiers are arbitrary hashables; the mesh constructor uses
    ``(row, column)`` tuples so XY routing can inspect coordinates.  Nodes
    may carry arbitrary keyword attributes for routing strategies that need
    more than the identifier (:meth:`node_attrs`).
    """

    def __init__(self, name: str = "noc") -> None:
        self.name = name
        self.graph = nx.Graph()
        self._routers_cache: Optional[List[Hashable]] = None

    # -------------------------------------------------------------- building
    def add_router(self, node: Hashable, **attrs: object) -> None:
        self.graph.add_node(node, **attrs)
        self._routers_cache = None

    def connect(self, a: Hashable, b: Hashable) -> None:
        if a == b:
            raise TopologyError("cannot connect a router to itself")
        self.graph.add_edge(a, b)
        self._routers_cache = None

    # ------------------------------------------------------------ inspection
    @property
    def routers(self) -> List[Hashable]:
        # The deterministic repr-sort is what every port assignment hangs
        # off; it is cached because builders and route computations read it
        # far more often than the graph mutates.
        if self._routers_cache is None:
            self._routers_cache = sorted(self.graph.nodes, key=repr)
        return list(self._routers_cache)

    @property
    def num_routers(self) -> int:
        return self.graph.number_of_nodes()

    def neighbors(self, node: Hashable) -> List[Hashable]:
        if node not in self.graph:
            raise TopologyError(f"unknown router {node!r}")
        return sorted(self.graph.neighbors(node), key=repr)

    def degree(self, node: Hashable) -> int:
        if node not in self.graph:
            raise TopologyError(f"unknown router {node!r}")
        return self.graph.degree(node)

    def node_attrs(self, node: Hashable) -> Dict[str, object]:
        """The attributes attached to a router node (a copy)."""
        if node not in self.graph:
            raise TopologyError(f"unknown router {node!r}")
        return dict(self.graph.nodes[node])

    def shortest_path(self, src: Hashable, dst: Hashable) -> List[Hashable]:
        if src not in self.graph or dst not in self.graph:
            raise TopologyError(f"unknown router in path {src!r} -> {dst!r}")
        try:
            return nx.shortest_path(self.graph, src, dst)
        except nx.NetworkXNoPath as exc:
            raise TopologyError(f"no path from {src!r} to {dst!r}") from exc

    def is_connected(self) -> bool:
        if self.graph.number_of_nodes() == 0:
            return True
        return nx.is_connected(self.graph)

    def diameter(self) -> int:
        if self.graph.number_of_nodes() <= 1:
            return 0
        return nx.diameter(self.graph)

    # ------------------------------------------------------------- factories
    @classmethod
    def mesh(cls, rows: int, cols: int, name: str = "mesh") -> "Topology":
        """A ``rows x cols`` 2D mesh with ``(row, col)`` node identifiers."""
        if rows <= 0 or cols <= 0:
            raise TopologyError("mesh dimensions must be positive")
        topo = cls(name=f"{name}_{rows}x{cols}")
        for r in range(rows):
            for c in range(cols):
                topo.add_router((r, c), row=r, col=c)
        for r in range(rows):
            for c in range(cols):
                if r + 1 < rows:
                    topo.connect((r, c), (r + 1, c))
                if c + 1 < cols:
                    topo.connect((r, c), (r, c + 1))
        return topo

    @classmethod
    def torus(cls, rows: int, cols: int, name: str = "torus") -> "Topology":
        """A ``rows x cols`` 2D torus: a mesh plus wraparound links.

        Node identifiers are ``(row, col)`` tuples exactly as for the mesh;
        the wraparound link of a dimension of size 2 coincides with the mesh
        link and of size 1 does not exist.  The dimensions are recorded as
        graph attributes (``torus_rows`` / ``torus_cols``) so
        :class:`~repro.network.routing.TorusDimensionOrdered` can make
        wraparound-aware direction choices.
        """
        topo = cls.mesh(rows, cols, name=name)
        topo.name = f"{name}_{rows}x{cols}"
        topo.graph.graph["torus_rows"] = rows
        topo.graph.graph["torus_cols"] = cols
        for c in range(cols):
            if rows > 2:
                topo.connect((rows - 1, c), (0, c))
        for r in range(rows):
            if cols > 2:
                topo.connect((r, cols - 1), (r, 0))
        return topo

    @classmethod
    def ring(cls, num_routers: int, name: str = "ring") -> "Topology":
        if num_routers <= 0:
            raise TopologyError("ring size must be positive")
        topo = cls(name=f"{name}_{num_routers}")
        for i in range(num_routers):
            topo.add_router(i, index=i)
        if num_routers == 1:
            return topo
        for i in range(num_routers):
            topo.connect(i, (i + 1) % num_routers)
        return topo

    @classmethod
    def double_ring(cls, num_routers: int,
                    name: str = "double_ring") -> "Topology":
        """Two concentric ``num_routers``-rings joined by one spoke per stop.

        Nodes are ``("in", i)`` / ``("out", i)`` with ``ring`` and ``index``
        attributes.  The spokes double the bisection of a plain ring and
        give every router degree 3 (for ``num_routers >= 3``).
        """
        if num_routers <= 0:
            raise TopologyError("double ring size must be positive")
        topo = cls(name=f"{name}_{num_routers}")
        for i in range(num_routers):
            topo.add_router(("in", i), ring="inner", index=i)
            topo.add_router(("out", i), ring="outer", index=i)
            topo.connect(("in", i), ("out", i))
        if num_routers == 1:
            return topo
        for i in range(num_routers):
            nxt = (i + 1) % num_routers
            if num_routers == 2 and i == 1:
                continue  # the 0-1 links already exist
            topo.connect(("in", i), ("in", nxt))
            topo.connect(("out", i), ("out", nxt))
        return topo

    @classmethod
    def tree(cls, arity: int, depth: int, name: str = "tree") -> "Topology":
        """A rooted ``arity``-ary tree of the given ``depth``.

        Routers are numbered breadth-first (the root is 0) and carry
        ``level`` and ``parent`` attributes; ``depth`` counts edges, so
        ``tree(2, 2)`` has 7 routers over 3 levels.
        """
        if arity <= 0:
            raise TopologyError("tree arity must be positive")
        if depth < 0:
            raise TopologyError("tree depth must be non-negative")
        topo = cls(name=f"{name}_{arity}x{depth}")
        topo.add_router(0, level=0, parent=None)
        frontier = [0]
        next_id = 1
        for level in range(1, depth + 1):
            new_frontier = []
            for parent in frontier:
                for _ in range(arity):
                    topo.add_router(next_id, level=level, parent=parent)
                    topo.connect(parent, next_id)
                    new_frontier.append(next_id)
                    next_id += 1
            frontier = new_frontier
        return topo

    @classmethod
    def single_router(cls, name: str = "single") -> "Topology":
        topo = cls(name=name)
        topo.add_router(0)
        return topo

    @classmethod
    def custom(cls, nodes: Iterable,
               edges: Iterable[Tuple[Hashable, Hashable]] = (),
               name: str = "custom") -> "Topology":
        """An explicit topology from node and edge lists.

        ``nodes`` entries are either bare hashables or ``(node, attrs)``
        pairs with an attribute dict; edges must reference declared nodes
        (an unknown endpoint raises :class:`TopologyError` instead of being
        silently created).
        """
        topo = cls(name=name)
        for entry in nodes:
            node, attrs = cls.split_node_entry(entry)
            topo.add_router(node, **attrs)
        for a, b in edges:
            if a not in topo.graph or b not in topo.graph:
                raise TopologyError(
                    f"edge ({a!r}, {b!r}) references an undeclared node; "
                    "declare every router in `nodes` first")
            topo.connect(a, b)
        return topo

    @staticmethod
    def split_node_entry(entry) -> Tuple[Hashable, Dict[str, object]]:
        """Split a :meth:`custom` node-list entry into (node, attrs).

        The one place that defines the entry encoding — a bare hashable, or
        a ``(node, attrs)`` pair whose second element is a dict — shared by
        the factory and the XML serializer.
        """
        if (isinstance(entry, tuple) and len(entry) == 2
                and isinstance(entry[1], dict)):
            return entry[0], entry[1]
        return entry, {}

    def node_edge_lists(self) -> Tuple[List, List[Tuple[Hashable, Hashable]]]:
        """(nodes, edges) lists that :meth:`custom` rebuilds this graph from.

        Nodes with attributes come out as ``(node, attrs)`` pairs, bare
        nodes as themselves; used by the builder and the XML serializer to
        round-trip custom topologies through :class:`NoCSpec`.
        """
        nodes: List = []
        for node in self.routers:
            attrs = dict(self.graph.nodes[node])
            nodes.append((node, attrs) if attrs else node)
        # repr-keyed ordering throughout: node ids of mixed types (ints and
        # strings) have no natural ordering.
        edges = sorted((((a, b) if repr(a) <= repr(b) else (b, a))
                        for a, b in self.graph.edges),
                       key=lambda edge: (repr(edge[0]), repr(edge[1])))
        return nodes, edges


# ---------------------------------------------------------------------------
# Topology factory registry
# ---------------------------------------------------------------------------
#: Registered topology factories, keyed by the kind name used in specs, XML
#: and the builder.  Values are callables returning a :class:`Topology`.
TOPOLOGY_FACTORIES: Dict[str, Callable[..., Topology]] = {}


def register_topology(name: str,
                      factory: Optional[Callable[..., Topology]] = None):
    """Register a topology factory under ``name`` (usable as a decorator)."""
    if factory is not None:
        TOPOLOGY_FACTORIES[name] = factory
        return factory

    def decorator(func: Callable[..., Topology]) -> Callable[..., Topology]:
        TOPOLOGY_FACTORIES[name] = func
        return func

    return decorator


def topology_names() -> List[str]:
    """The registered topology kind names, sorted."""
    return sorted(TOPOLOGY_FACTORIES)


def make_topology(kind: str, **params) -> Topology:
    """Build a topology through the factory registry.

    ``kind`` names a registered factory; ``params`` are its keyword
    arguments (e.g. ``make_topology("torus", rows=3, cols=3)``).
    """
    try:
        factory = TOPOLOGY_FACTORIES[kind]
    except KeyError:
        raise TopologyError(
            f"unknown topology kind {kind!r} "
            f"(registered: {', '.join(topology_names())})") from None
    try:
        return factory(**params)
    except TypeError as exc:
        raise TopologyError(f"topology {kind!r}: {exc}") from exc


register_topology("mesh", Topology.mesh)
register_topology("torus", Topology.torus)
register_topology("ring", Topology.ring)
register_topology("double_ring", Topology.double_ring)
register_topology("tree", Topology.tree)
register_topology("single_router", Topology.single_router)
#: Legacy spec name for the single-router topology.
register_topology("single", Topology.single_router)
register_topology("custom", Topology.custom)


# ---------------------------------------------------------------------------
# Port maps
# ---------------------------------------------------------------------------
@dataclass
class PortMap:
    """Concrete port numbering for every router of a topology.

    ``neighbor_ports[node][peer]`` is the output/input port index at ``node``
    toward ``peer``; ``local_ports[node]`` is the list of port indices used by
    locally attached NIs; ``num_ports[node]`` is the total port count.
    """

    neighbor_ports: Dict[Hashable, Dict[Hashable, int]] = field(default_factory=dict)
    local_ports: Dict[Hashable, List[int]] = field(default_factory=dict)
    num_ports: Dict[Hashable, int] = field(default_factory=dict)

    def port_toward(self, node: Hashable, peer: Hashable) -> int:
        try:
            return self.neighbor_ports[node][peer]
        except KeyError as exc:
            raise TopologyError(
                f"router {node!r} has no port toward {peer!r}") from exc

    def local_port(self, node: Hashable, index: int) -> int:
        ports = self.local_ports.get(node, [])
        if index >= len(ports):
            raise TopologyError(
                f"router {node!r} has only {len(ports)} local ports, "
                f"index {index} requested")
        return ports[index]


def build_port_map(topology: Topology,
                   local_counts: Optional[Dict[Hashable, int]] = None) -> PortMap:
    """Assign port indices: neighbour ports first (deterministic order), then
    ``local_counts[node]`` local ports for NIs (default 1 per router)."""
    local_counts = dict(local_counts or {})
    port_map = PortMap()
    for node in topology.routers:
        neighbors = topology.neighbors(node)
        mapping = {peer: idx for idx, peer in enumerate(neighbors)}
        port_map.neighbor_ports[node] = mapping
        n_local = local_counts.get(node, 1)
        base = len(neighbors)
        port_map.local_ports[node] = [base + i for i in range(n_local)]
        port_map.num_ports[node] = base + n_local
    return port_map


def mesh_coordinates(node: Hashable) -> Tuple[int, int]:
    """Interpret a mesh node id as (row, col); raises for other topologies."""
    if (isinstance(node, tuple) and len(node) == 2
            and all(isinstance(x, int) for x in node)):
        return node  # type: ignore[return-value]
    raise TopologyError(f"node {node!r} does not carry mesh coordinates")


def attach_points(topology: Topology, ni_names: Iterable[str]) -> Dict[str, Hashable]:
    """Spread NIs over routers round-robin (helper for quick experiment setup)."""
    routers = topology.routers
    mapping: Dict[str, Hashable] = {}
    for index, name in enumerate(ni_names):
        mapping[name] = routers[index % len(routers)]
    return mapping
