"""Banked DRAM memory controller: per-bank queues, pluggable scheduling.

The controller models the command layer the gram/LiteDRAM ``BankMachine`` +
``Multiplexer`` pair implements in hardware: each bank tracks its open row
and earliest-next-command time, a single shared data bus serializes the data
transfers, and periodic refresh windows block the whole device and close
every row.  Requests are queued per bank; a :class:`Scheduler` picks which
queued request is issued next:

* :class:`FCFSScheduler` — strictly oldest request first (arrival order);
* :class:`FRFCFSScheduler` — open-page first-ready/first-come-first-serve:
  the oldest request that *hits* a currently open row goes first, falling
  back to the oldest request overall; a starvation cap bounds how long
  row-miss requests can be bypassed.

Service may complete out of arrival order under FR-FCFS, but responses are
*released* in arrival order (:attr:`DRAMController.pop_completed`) because
the slave shell's response history requires it.  Requests to the same
address live in the same row, and within a row FR-FCFS serves queue order,
so read-after-write ordering per address is preserved under both policies.

All timing state is kept as absolute cycle timestamps and refresh windows
are a pure function of the cycle index (refresh ``k`` occupies cycles
``[k*tREFI, k*tREFI + tRFC)``), so a tick with no queued work is an
observable no-op — the property the activity-driven engine's idle-skip mode
relies on (see PERFORMANCE.md).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple, Union

from repro.mem.timing import DRAMGeometry, DRAMTiming
from repro.protocol.transactions import Transaction
from repro.sim.stats import StatsRegistry


class SchedulerError(ValueError):
    """Raised for unknown scheduler names."""


class _Request:
    """One queued memory access (a whole transaction burst)."""

    __slots__ = ("seq", "transaction", "bank", "row", "arrival", "words")

    def __init__(self, seq: int, transaction: Transaction, bank: int,
                 row: int, arrival: int, words: int) -> None:
        self.seq = seq
        self.transaction = transaction
        self.bank = bank
        self.row = row
        self.arrival = arrival
        self.words = words


class DRAMBank:
    """Open-row and readiness state of one bank (absolute cycle stamps)."""

    __slots__ = ("open_row", "ready_cycle", "activate_cycle")

    def __init__(self) -> None:
        self.open_row: Optional[int] = None
        #: Earliest cycle the bank can accept its next command.
        self.ready_cycle = 0
        #: Cycle the currently open row was activated (tRAS accounting).
        self.activate_cycle = 0

    def effective_row(self, cycle: int, tREFI: int) -> Optional[int]:
        """The open row as seen at ``cycle``: refreshes close every row.

        Refresh ``k`` starts at ``k * tREFI`` (k >= 1); a row activated
        before the latest refresh start at or before ``cycle`` is gone.
        """
        if self.open_row is None:
            return None
        latest_refresh = (cycle // tREFI) * tREFI
        if latest_refresh >= 1 * tREFI and latest_refresh > self.activate_cycle:
            return None
        return self.open_row


class Scheduler:
    """Interface: pick the next request to issue."""

    name = "scheduler"

    def select(self, queues: List[Deque[_Request]], banks: List[DRAMBank],
               timing: DRAMTiming, cycle: int) -> Optional[Tuple[int, int]]:
        """Return ``(bank, queue_index)`` of the request to issue, or None."""
        raise NotImplementedError


class FCFSScheduler(Scheduler):
    """In-order service: the globally oldest request goes first."""

    name = "fcfs"

    def select(self, queues: List[Deque[_Request]], banks: List[DRAMBank],
               timing: DRAMTiming, cycle: int) -> Optional[Tuple[int, int]]:
        best: Optional[Tuple[int, int]] = None
        best_seq = None
        for bank_index, queue in enumerate(queues):
            if not queue:
                continue
            head = queue[0]
            if best_seq is None or head.seq < best_seq:
                best_seq = head.seq
                best = (bank_index, 0)
        return best


class FRFCFSScheduler(Scheduler):
    """Open-page first-ready FCFS: oldest row hit first, then oldest.

    ``starvation_limit`` bounds reordering: after the globally oldest
    request has been bypassed by that many row hits, it is served regardless
    of row state (an age cap in cycles would degrade to FCFS under a
    saturating backlog, where every queued request is "old").
    """

    name = "frfcfs"

    def __init__(self, starvation_limit: int = 8) -> None:
        if starvation_limit <= 0:
            raise SchedulerError("starvation limit must be positive")
        self.starvation_limit = starvation_limit
        self._oldest_seq: Optional[int] = None
        self._bypasses = 0

    def select(self, queues: List[Deque[_Request]], banks: List[DRAMBank],
               timing: DRAMTiming, cycle: int) -> Optional[Tuple[int, int]]:
        oldest: Optional[Tuple[int, int]] = None
        oldest_seq = None
        hit: Optional[Tuple[int, int]] = None
        hit_seq = None
        for bank_index, queue in enumerate(queues):
            if not queue:
                continue
            head = queue[0]
            if oldest_seq is None or head.seq < oldest_seq:
                oldest_seq = head.seq
                oldest = (bank_index, 0)
            row = banks[bank_index].effective_row(cycle, timing.tREFI)
            if row is None:
                continue
            # First request in queue order hitting the open row; taking the
            # first match preserves per-row (and thus per-address) order.
            for index, request in enumerate(queue):
                if request.row == row:
                    if hit_seq is None or request.seq < hit_seq:
                        hit_seq = request.seq
                        hit = (bank_index, index)
                    break
        if oldest is None:
            return None
        if oldest_seq != self._oldest_seq:
            self._oldest_seq = oldest_seq
            self._bypasses = 0
        if hit is None or hit_seq == oldest_seq:
            return hit if hit is not None else oldest
        if self._bypasses >= self.starvation_limit:
            return oldest
        self._bypasses += 1
        return hit


SCHEDULERS: Dict[str, type] = {
    FCFSScheduler.name: FCFSScheduler,
    FRFCFSScheduler.name: FRFCFSScheduler,
}


def make_scheduler(scheduler: Union[str, Scheduler]) -> Scheduler:
    """Resolve a scheduler name (``fcfs`` / ``frfcfs``) or pass through."""
    if isinstance(scheduler, Scheduler):
        return scheduler
    try:
        return SCHEDULERS[scheduler]()
    except (KeyError, TypeError):
        known = ", ".join(sorted(SCHEDULERS))
        raise SchedulerError(
            f"unknown DRAM scheduler {scheduler!r} (known: {known}; or pass "
            "a Scheduler instance)") from None


class DRAMController:
    """Timing-accurate controller front-end driven by a clocked slave.

    The owner (:class:`repro.mem.slave.DRAMBackedSlave`) calls
    :meth:`admit` for every accepted transaction and :meth:`tick` once per
    controller clock cycle; completed transactions come back through
    :meth:`pop_completed` in arrival order.
    """

    def __init__(self, timing: DRAMTiming, geometry: DRAMGeometry,
                 scheduler: Union[str, Scheduler] = "fcfs",
                 stats: Optional[StatsRegistry] = None) -> None:
        self.timing = timing
        self.geometry = geometry
        self.scheduler = make_scheduler(scheduler)
        self.stats = stats if stats is not None else StatsRegistry()
        self.banks = [DRAMBank() for _ in range(geometry.num_banks)]
        self._queues: List[Deque[_Request]] = [deque()
                                               for _ in self.banks]
        self._pending = 0
        #: Issued requests in service: (done_cycle, request), issue order.
        self._in_flight: Deque[Tuple[int, _Request]] = deque()
        #: Finished out-of-order, awaiting in-order release:
        #: seq -> (request, done_cycle).
        self._finished: Dict[int, Tuple[_Request, int]] = {}
        self._released: Deque[Tuple[Transaction, int, int]] = deque()
        self._next_seq = 0
        self._next_release = 0
        self._bus_free = 0
        # Hot counters (see PERFORMANCE.md: resolved once, bumped directly).
        self._ctr_requests = self.stats.counter("dram_requests")
        self._ctr_hits = self.stats.counter("dram_row_hits")
        self._ctr_closed = self.stats.counter("dram_row_closed")
        self._ctr_conflicts = self.stats.counter("dram_row_conflicts")
        self._ctr_refresh = self.stats.counter("dram_refresh_stalls")

    # -------------------------------------------------------------- intake
    def admit(self, transaction: Transaction, cycle: int) -> None:
        """Queue a transaction for service, arriving at ``cycle``."""
        words = (transaction.read_length if transaction.is_read
                 else len(transaction.write_data))
        bank, row = self.geometry.locate(transaction.address)
        request = _Request(self._next_seq, transaction, bank, row, cycle,
                           max(words, 1))
        self._next_seq += 1
        self._queues[bank].append(request)
        self._pending += 1
        self._ctr_requests.increment()

    # --------------------------------------------------------------- clock
    def tick(self, cycle: int) -> None:
        """Advance one controller cycle: complete, release, issue."""
        while self._in_flight and self._in_flight[0][0] <= cycle:
            done, request = self._in_flight.popleft()
            self._finished[request.seq] = (request, done)
        while self._next_release in self._finished:
            request, done = self._finished.pop(self._next_release)
            self._released.append((request.transaction, request.arrival, done))
            self._next_release += 1
        if self._pending:
            self._issue(cycle)

    def _issue(self, cycle: int) -> None:
        # Issue only when the data bus is close enough that the command
        # pipeline (ACTIVATE + CAS) can run under the ongoing transfer:
        # issuing further ahead would commit the schedule before competing
        # requests arrive, leaving the scheduler nothing to reorder.
        if self._bus_free > cycle + self.timing.tRCD + self.timing.tCL:
            return
        selected = self.scheduler.select(self._queues, self.banks,
                                         self.timing, cycle)
        if selected is None:
            return
        bank_index, queue_index = selected
        queue = self._queues[bank_index]
        request = queue[queue_index]
        del queue[queue_index]
        self._pending -= 1
        done = self._schedule(request, cycle)
        self._in_flight.append((done, request))

    def _schedule(self, request: _Request, cycle: int) -> int:
        """Commit one request to the timing model; returns its done cycle.

        The candidate command/transfer sequence is computed without touching
        bank state first: if any of it would straddle a refresh window (the
        device cannot service during refresh), the whole access restarts
        after that window — where the row state is re-evaluated, since the
        refresh closed every row.
        """
        timing = self.timing
        tREFI = timing.tREFI
        bank = self.banks[request.bank]
        start = max(cycle, bank.ready_cycle)
        while True:
            deferred = self._defer_refresh(start)
            if deferred != start:
                self._ctr_refresh.increment()
                start = deferred
            row = bank.effective_row(start, tREFI)
            activate_at: Optional[int] = None
            if row == request.row:
                kind = self._ctr_hits
                cas_at = start
            elif row is None:
                kind = self._ctr_closed
                activate_at = start
                cas_at = activate_at + timing.tRCD
            else:
                kind = self._ctr_conflicts
                precharge_at = max(start, bank.activate_cycle + timing.tRAS)
                activate_at = precharge_at + timing.tRP
                cas_at = activate_at + timing.tRCD
            data_start = max(cas_at + timing.tCL, self._bus_free)
            done = data_start + timing.transfer_cycles(request.words)
            next_refresh = (start // tREFI + 1) * tREFI
            if done <= next_refresh:
                break
            self._ctr_refresh.increment()
            start = next_refresh + timing.tRFC
        kind.increment()
        if activate_at is not None:
            bank.activate_cycle = activate_at
        bank.open_row = request.row
        # The bank can take its next command once the CAS has issued; the
        # shared data bus serializes the transfers themselves.
        bank.ready_cycle = cas_at + 1
        self._bus_free = done
        return done

    def _defer_refresh(self, cycle: int) -> int:
        """Push a command start out of the refresh window covering it."""
        tREFI = self.timing.tREFI
        refresh_start = (cycle // tREFI) * tREFI
        if refresh_start >= tREFI and cycle < refresh_start + self.timing.tRFC:
            return refresh_start + self.timing.tRFC
        return cycle

    # ------------------------------------------------------------ horizons
    def next_ready_cycle(self, cycle: int) -> Optional[int]:
        """Earliest future cycle a tick can change controller state.

        Pure (no attribute writes) — the tick-gating horizon for
        :class:`repro.mem.slave.DRAMBackedSlave`.  Ticks strictly between
        ``cycle`` and the returned value are observable no-ops:

        * completions pop at ``_in_flight[0][0]`` (done cycles are
          monotonic in issue order because the shared data bus serializes
          transfers: ``data_start = max(.., _bus_free)``);
        * an issue can only happen once the data bus is close enough,
          i.e. at ``_bus_free - tRCD - tCL`` — before that ``_issue``
          early-returns *before* calling the scheduler, so no scheduler
          state (FR-FCFS starvation counters) is touched on skipped
          cycles either;
        * unreleased/undrained results need the owner's next tick.

        Returns ``None`` when the controller is fully drained (no tick
        will ever change state until the next :meth:`admit`).
        """
        horizon: Optional[int] = None
        if self._in_flight:
            horizon = self._in_flight[0][0]
        if self._pending:
            eligible = self._bus_free - self.timing.tRCD - self.timing.tCL
            if eligible <= cycle:
                eligible = cycle + 1
            if horizon is None or eligible < horizon:
                horizon = eligible
        if self._released or self._next_release in self._finished:
            # Results awaiting the owner's drain (or an in-order release
            # that became possible mid-tick): act on the very next tick.
            horizon = cycle + 1
        return horizon

    # ------------------------------------------------------------- results
    def pop_completed(self) -> Optional[Tuple[Transaction, int, int]]:
        """Next ``(transaction, arrival_cycle, done_cycle)``, arrival order."""
        if self._released:
            return self._released.popleft()
        return None

    @property
    def busy(self) -> bool:
        """True while any request is queued, in service or unreleased."""
        return bool(self._pending or self._in_flight or self._finished
                    or self._released)

    @property
    def queued(self) -> int:
        return self._pending

    def queue_depth(self, bank: int) -> int:
        """Requests waiting in one bank's queue (probe hook)."""
        return len(self._queues[bank])

    @property
    def row_hit_rate(self) -> float:
        served = (self._ctr_hits.value + self._ctr_closed.value
                  + self._ctr_conflicts.value)
        if not served:
            return float("nan")
        return self._ctr_hits.value / served

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"DRAMController({self.scheduler.name}, "
                f"banks={len(self.banks)}, queued={self._pending})")
