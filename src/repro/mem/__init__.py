"""Banked DRAM memory backend (timing model, controller, backed slave).

The paper's shared-memory abstraction hides the slave behind the NI; the seed
repo modelled every slave as an idealized :class:`~repro.ip.slave.MemorySlave`
with one fixed ``latency_cycles``.  This package adds the layer the related
DRAM stacks (gram / LiteDRAM, MiSoC) model explicitly: a banked DRAM device
with open-row state and tRCD/tRP/tCL/tRAS/refresh timing
(:mod:`repro.mem.timing`), a memory controller with per-bank request queues
and pluggable schedulers (:mod:`repro.mem.controller`), and a
:class:`~repro.mem.slave.DRAMBackedSlave` that is a drop-in sibling of
``MemorySlave`` behind the same slave shell — selected through
``SystemBuilder.add_memory(..., backend="dram")``.
"""

from repro.mem.controller import (
    DRAMBank,
    DRAMController,
    FCFSScheduler,
    FRFCFSScheduler,
    SCHEDULERS,
    SchedulerError,
    make_scheduler,
)
from repro.mem.slave import DRAMBackedSlave
from repro.mem.timing import (
    DRAMGeometry,
    DRAMTiming,
    TIMING_PRESETS,
    TimingError,
    make_geometry,
    resolve_timing,
)

__all__ = [
    "DRAMBackedSlave",
    "DRAMBank",
    "DRAMController",
    "DRAMGeometry",
    "DRAMTiming",
    "FCFSScheduler",
    "FRFCFSScheduler",
    "SCHEDULERS",
    "SchedulerError",
    "TIMING_PRESETS",
    "TimingError",
    "make_geometry",
    "make_scheduler",
    "resolve_timing",
]
