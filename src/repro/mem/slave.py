"""DRAM-backed slave IP: a drop-in sibling of ``MemorySlave``.

:class:`DRAMBackedSlave` implements the same small
:class:`~repro.ip.slave.SlaveIP` interface (``enqueue`` / ``pop_response``)
and is backed by the same :class:`~repro.ip.memory.SharedMemory` store, but
executes transactions through a :class:`~repro.mem.controller.DRAMController`
— so service latency is variable and state-dependent (open rows, bank
conflicts, refresh) instead of one fixed ``latency_cycles``.

Wake-protocol compliance (PERFORMANCE.md): ``enqueue`` calls
``notify_active()`` (the existing ``SlaveIP.enqueue`` hook), every state
transition happens inside ``tick`` while the component is non-idle, the
controller's refresh/row bookkeeping is a pure function of absolute cycle
stamps, and ``is_idle()`` is True exactly when a tick would be an observable
no-op.  Idle-skip runs are therefore byte-identical to always-tick runs.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple, Union

from repro.ip.memory import SharedMemory
from repro.ip.slave import SlaveIP, execute_on_memory
from repro.mem.controller import DRAMController, Scheduler
from repro.mem.timing import (
    DRAMGeometry,
    DRAMTiming,
    make_geometry,
    resolve_timing,
)
from repro.protocol.transactions import Transaction, TransactionResponse
from repro.sim.batching import FAR_FUTURE
from repro.sim.stats import StatsRegistry


class DRAMBackedSlave(SlaveIP):
    """A banked-DRAM memory slave with timing-accurate, variable latency.

    Parameters
    ----------
    name:
        Instance name (statistics / debugging).
    memory:
        Backing word store; a fresh unbounded :class:`SharedMemory` when
        omitted.
    timing:
        A :class:`DRAMTiming` or a preset name from
        :data:`repro.mem.timing.TIMING_PRESETS`.
    geometry:
        Bank/row geometry; defaults to ``DRAMGeometry()`` (8 banks,
        256-word rows), overridable piecewise via ``banks``/``row_words``.
    scheduler:
        ``"fcfs"`` (in-order), ``"frfcfs"`` (open-page first-ready FCFS) or
        a :class:`~repro.mem.controller.Scheduler` instance.
    """

    def __init__(self, name: str, memory: Optional[SharedMemory] = None,
                 timing: Union[str, DRAMTiming] = "default",
                 geometry: Optional[DRAMGeometry] = None,
                 banks: Optional[int] = None,
                 row_words: Optional[int] = None,
                 scheduler: Union[str, Scheduler] = "fcfs") -> None:
        self.name = name
        self.memory = memory if memory is not None else SharedMemory()
        self.timing = resolve_timing(timing)
        if geometry is None:
            geometry = make_geometry(banks=banks, row_words=row_words)
        self.geometry = geometry
        self.stats = StatsRegistry()
        self.controller = DRAMController(self.timing, self.geometry,
                                         scheduler=scheduler,
                                         stats=self.stats)
        #: Accepted transactions awaiting admission at the next tick.
        self._inbox: Deque[Transaction] = deque()
        self._done: Deque[Tuple[Transaction, TransactionResponse]] = deque()
        self._service_latency = self.stats.latency("dram_service")

    # ------------------------------------------------------------ interface
    def enqueue(self, transaction: Transaction) -> None:
        self._inbox.append(transaction)
        self.notify_active()

    def pop_response(self) -> Optional[Tuple[Transaction, TransactionResponse]]:
        if self._done:
            return self._done.popleft()
        return None

    def idle(self) -> bool:
        return not self._inbox and not self.controller.busy and not self._done

    def is_idle(self) -> bool:
        """Activity predicate for idle-skip: no request anywhere in flight."""
        return not self._inbox and not self.controller.busy and not self._done

    def next_action_cycle(self, cycle: int) -> int:
        """Horizon from the controller's absolute timing stamps.

        Dense while the inbox holds unadmitted transactions; otherwise the
        controller's :meth:`~repro.mem.controller.DRAMController.next_ready_cycle`
        bounds the next completion/issue exactly (refresh windows are a pure
        function of the cycle index, so nothing fires between horizons).  A
        non-empty ``_done`` queue needs no horizon of its own: draining it is
        the shell's ``pop_response`` call, not this component's tick, and the
        slave shell stays dense while this slave reports non-idle.
        """
        if self._inbox:
            return cycle + 1
        nxt = self.controller.next_ready_cycle(cycle)
        if nxt is None:
            return FAR_FUTURE
        if nxt <= cycle:
            return cycle + 1
        return nxt

    # ----------------------------------------------------------------- clock
    def tick(self, cycle: int) -> None:
        while self._inbox:
            self.controller.admit(self._inbox.popleft(), cycle)
        self.controller.tick(cycle)
        while True:
            completed = self.controller.pop_completed()
            if completed is None:
                break
            transaction, arrival, done = completed
            self._service_latency.record(arrival, done)
            self._done.append((transaction, self._execute(transaction)))

    # --------------------------------------------------------------- execute
    def _execute(self, transaction: Transaction) -> TransactionResponse:
        return execute_on_memory(self.memory, self.stats, transaction)

    # ------------------------------------------------------------ reporting
    @property
    def row_hit_rate(self) -> float:
        return self.controller.row_hit_rate

    def service_summary(self) -> dict:
        """Service-latency and row-state digest for reports and tests."""
        return {
            "requests": self.stats.counter("dram_requests").value,
            "row_hits": self.stats.counter("dram_row_hits").value,
            "row_closed": self.stats.counter("dram_row_closed").value,
            "row_conflicts": self.stats.counter("dram_row_conflicts").value,
            "refresh_stalls": self.stats.counter("dram_refresh_stalls").value,
            "service_latency": {
                "count": self._service_latency.count,
                "min": self._service_latency.minimum,
                "mean": self._service_latency.mean,
                "max": self._service_latency.maximum,
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"DRAMBackedSlave({self.name}, "
                f"scheduler={self.controller.scheduler.name}, "
                f"banks={self.geometry.num_banks})")
