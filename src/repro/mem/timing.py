"""DRAM device timing and geometry parameters.

The numbers follow the gram / LiteDRAM parameterization: a device is a set of
banks, each holding an array of rows; a row must be *activated* (opened) into
the bank's row buffer before columns can be accessed, and *precharged*
(closed) before a different row can open.  All parameters are expressed in
memory-controller clock cycles (the slave port clock — 500 MHz in the
reference system), so one cycle here is one IP-port cycle:

* ``tRCD`` — ACTIVATE to first column access (row-to-column delay);
* ``tRP``  — PRECHARGE to next ACTIVATE of the same bank;
* ``tCL``  — column access (CAS) to first data word;
* ``tRAS`` — minimum ACTIVATE to PRECHARGE time of a row;
* ``tREFI`` — average interval between periodic refreshes;
* ``tRFC`` — duration of one refresh (all banks blocked, all rows closed).

Geometry maps a flat word address onto (bank, row): columns occupy the low
bits, banks the middle bits, rows the high bits — consecutive rows therefore
interleave across banks, as real controllers arrange.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union


class TimingError(ValueError):
    """Raised for inconsistent timing/geometry parameters."""


@dataclass(frozen=True)
class DRAMTiming:
    """DRAM timing parameters in memory-controller clock cycles."""

    tRCD: int = 4
    tRP: int = 4
    tCL: int = 4
    tRAS: int = 10
    tREFI: int = 2000
    tRFC: int = 32
    #: Data-bus bandwidth: 32-bit words transferred per controller cycle.
    words_per_cycle: int = 1

    def __post_init__(self) -> None:
        for name in ("tRCD", "tRP", "tCL", "tRAS", "tREFI", "tRFC",
                     "words_per_cycle"):
            if getattr(self, name) <= 0:
                raise TimingError(f"{name} must be positive")
        if self.tRFC >= self.tREFI:
            raise TimingError("tRFC must be shorter than the refresh "
                              "interval tREFI")
        if self.tRAS < self.tRCD:
            raise TimingError("tRAS cannot be shorter than tRCD")

    # ----------------------------------------------------------- derived
    def transfer_cycles(self, words: int) -> int:
        """Data-bus cycles for a burst of ``words`` words (at least one)."""
        if words <= 0:
            return 1
        return -(-words // self.words_per_cycle)

    def row_hit_cycles(self, words: int) -> int:
        """Best-case access: the row is already open (CAS + transfer)."""
        return self.tCL + self.transfer_cycles(words)

    def row_closed_cycles(self, words: int) -> int:
        """Access to a precharged bank (ACTIVATE + CAS + transfer)."""
        return self.tRCD + self.row_hit_cycles(words)

    def row_conflict_cycles(self, words: int) -> int:
        """Worst-case access: close the open row first (PRECHARGE +
        ACTIVATE + CAS + transfer)."""
        return self.tRP + self.row_closed_cycles(words)

    def worst_case_access_cycles(self, words: int) -> int:
        """Worst-case single-access service time, ignoring queueing: a row
        conflict whose precharge additionally waits out tRAS."""
        # The open row may have been activated just before the conflict
        # arrived, forcing the precharge to wait the tRAS remainder.
        ras_wait = max(self.tRAS - self.tRCD, 0)
        return ras_wait + self.row_conflict_cycles(words)

    def worst_case_service_cycles(self, words: int,
                                  queue_depth: int = 1) -> int:
        """Worst-case request service latency including queueing and refresh.

        Upper bound used by the end-to-end guarantee verification
        (:func:`repro.analysis.verification.verify_end_to_end_latency`): the
        request arrives behind ``queue_depth - 1`` older requests, every one
        of them a row conflict, and every refresh window the resulting
        service span can straddle blocks the device for ``tRFC`` — each
        ``tREFI`` interval offers only ``tREFI - tRFC`` useful cycles, so
        long queues pay proportionally more refresh stalls.
        """
        if queue_depth <= 0:
            raise TimingError("queue depth must be positive")
        busy = queue_depth * self.worst_case_access_cycles(words)
        refreshes = 1 + -(-busy // (self.tREFI - self.tRFC))
        return busy + refreshes * self.tRFC


@dataclass(frozen=True)
class DRAMGeometry:
    """Bank/row geometry: maps word addresses onto (bank, row)."""

    num_banks: int = 8
    row_words: int = 256

    def __post_init__(self) -> None:
        if self.num_banks <= 0:
            raise TimingError("need at least one bank")
        if self.row_words <= 0:
            raise TimingError("rows must hold at least one word")

    def bank_of(self, address: int) -> int:
        return (address // self.row_words) % self.num_banks

    def row_of(self, address: int) -> int:
        return address // (self.row_words * self.num_banks)

    def locate(self, address: int) -> Tuple[int, int]:
        return self.bank_of(address), self.row_of(address)


def make_geometry(banks: Optional[int] = None,
                  row_words: Optional[int] = None) -> DRAMGeometry:
    """Build a geometry from optional overrides of the dataclass defaults.

    The single place that turns ``banks=None`` / ``row_words=None`` into the
    :class:`DRAMGeometry` field defaults — the builder's validation and the
    slave's construction both go through it, so they can never disagree.
    """
    overrides = {}
    if banks is not None:
        overrides["num_banks"] = banks
    if row_words is not None:
        overrides["row_words"] = row_words
    return DRAMGeometry(**overrides)


#: Named parameter sets.  ``default`` is a moderate DDR-style device at the
#: 500 MHz controller clock; ``fast`` is a small-number set for unit tests
#: and short simulations (frequent refresh, cheap rows); ``slow`` stresses
#: row conflicts and long refreshes.
TIMING_PRESETS: Dict[str, DRAMTiming] = {
    "default": DRAMTiming(tRCD=4, tRP=4, tCL=4, tRAS=10,
                          tREFI=2000, tRFC=32),
    "fast": DRAMTiming(tRCD=2, tRP=2, tCL=2, tRAS=5,
                       tREFI=512, tRFC=8),
    "slow": DRAMTiming(tRCD=8, tRP=8, tCL=8, tRAS=20,
                       tREFI=1560, tRFC=64),
}


def resolve_timing(timing: Union[str, DRAMTiming]) -> DRAMTiming:
    """Resolve a preset name or pass a :class:`DRAMTiming` through."""
    if isinstance(timing, DRAMTiming):
        return timing
    try:
        return TIMING_PRESETS[timing]
    except (KeyError, TypeError):
        known = ", ".join(sorted(TIMING_PRESETS))
        raise TimingError(
            f"unknown DRAM timing preset {timing!r} (known presets: {known}; "
            "or pass a DRAMTiming instance)") from None
