"""Verification of measured behaviour against the analytic guarantees.

These helpers compare measured simulation results (throughput over a window,
per-packet latencies) against the bounds of :mod:`repro.analysis.guarantees`
and produce a :class:`VerificationReport` that the guarantee experiments
(E4/E5) and the property-style integration tests assert on.

:func:`verify_end_to_end_latency` extends the per-channel network check to
the full shared-memory round trip: request channel + memory service +
response channel.  The memory service term is a plain worst-case cycle
count so the ideal backend (``latency_cycles``) and the banked DRAM model
(:meth:`repro.mem.timing.DRAMTiming.worst_case_service_cycles`) both plug
in without this module depending on either.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.analysis.guarantees import GTGuarantees


@dataclass
class GuaranteeCheck:
    """One bound versus one measurement."""

    name: str
    bound: float
    measured: float
    #: For lower bounds (throughput) the measurement must be >= bound; for
    #: upper bounds (latency, jitter) it must be <= bound.
    kind: str = "upper"
    tolerance: float = 0.0

    @property
    def satisfied(self) -> bool:
        if self.kind == "upper":
            return self.measured <= self.bound + self.tolerance
        if self.kind == "lower":
            return self.measured >= self.bound - self.tolerance
        raise ValueError(f"unknown bound kind {self.kind!r}")

    def as_row(self) -> dict:
        return {
            "check": self.name,
            "bound": self.bound,
            "measured": self.measured,
            "kind": self.kind,
            "ok": self.satisfied,
        }


@dataclass
class VerificationReport:
    """A set of guarantee checks for one channel / experiment."""

    checks: List[GuaranteeCheck] = field(default_factory=list)

    def add(self, check: GuaranteeCheck) -> None:
        self.checks.append(check)

    @property
    def all_satisfied(self) -> bool:
        return all(check.satisfied for check in self.checks)

    def failures(self) -> List[GuaranteeCheck]:
        return [check for check in self.checks if not check.satisfied]

    def rows(self) -> List[dict]:
        return [check.as_row() for check in self.checks]


def verify_throughput(guarantees: GTGuarantees, words_delivered: int,
                      window_flit_cycles: int,
                      warmup_slack_words: int = 0) -> GuaranteeCheck:
    """Check that a GT channel achieved at least its guaranteed throughput.

    ``warmup_slack_words`` forgives the words that could not be delivered
    before the first reserved slot of the window (pipeline fill).
    """
    if window_flit_cycles <= 0:
        raise ValueError("window must be positive")
    measured = words_delivered / window_flit_cycles
    bound = guarantees.throughput_words_per_flit_cycle
    slack = warmup_slack_words / window_flit_cycles
    return GuaranteeCheck(name="throughput_words_per_flit_cycle",
                          bound=bound, measured=measured, kind="lower",
                          tolerance=slack)


def verify_latency(guarantees: GTGuarantees,
                   latencies_flit_cycles: Sequence[int],
                   extra_allowance: int = 0) -> VerificationReport:
    """Check worst-case latency and jitter of measured packet latencies."""
    report = VerificationReport()
    if not latencies_flit_cycles:
        return report
    worst = max(latencies_flit_cycles)
    best = min(latencies_flit_cycles)
    report.add(GuaranteeCheck(name="worst_case_latency_flit_cycles",
                              bound=guarantees.latency_bound + extra_allowance,
                              measured=worst, kind="upper"))
    report.add(GuaranteeCheck(name="jitter_flit_cycles",
                              bound=guarantees.jitter_bound + extra_allowance,
                              measured=worst - best, kind="upper"))
    return report


def ip_cycles_to_flit_cycles(ip_cycles: int,
                             ip_cycles_per_flit_cycle: int = 3) -> int:
    """Convert IP-port clock cycles to flit cycles, rounding up.

    One flit cycle of the 500/3 MHz network carries three 500 MHz IP-port
    cycles in the reference system; memory service times (which the slave
    models express in IP cycles) convert with this before entering a
    flit-cycle latency bound.
    """
    if ip_cycles < 0:
        raise ValueError("cycle counts cannot be negative")
    if ip_cycles_per_flit_cycle <= 0:
        raise ValueError("the clock ratio must be positive")
    return -(-ip_cycles // ip_cycles_per_flit_cycle)


def verify_end_to_end_latency(request_guarantees: GTGuarantees,
                              response_guarantees: GTGuarantees,
                              latencies_flit_cycles: Sequence[int],
                              memory_service_flit_cycles: int = 0,
                              extra_allowance: int = 0
                              ) -> VerificationReport:
    """Check measured round-trip latencies against the end-to-end bound.

    The end-to-end bound of a shared-memory transaction is the request
    channel's worst-case network latency, plus the worst-case service
    latency of the memory behind the slave shell, plus the response
    channel's worst-case network latency.  ``memory_service_flit_cycles``
    is that middle term: ``latency_cycles`` for an ideal memory, or
    :meth:`repro.mem.timing.DRAMTiming.worst_case_service_cycles` (converted
    via :func:`ip_cycles_to_flit_cycles`) for the banked DRAM backend.

    ``extra_allowance`` absorbs modelling slack outside both bounds
    (shell (de)sequentialization, clock-domain crossings).
    """
    if memory_service_flit_cycles < 0:
        raise ValueError("memory service latency cannot be negative")
    report = VerificationReport()
    if not latencies_flit_cycles:
        return report
    bound = (request_guarantees.latency_bound
             + memory_service_flit_cycles
             + response_guarantees.latency_bound
             + extra_allowance)
    report.add(GuaranteeCheck(name="end_to_end_latency_flit_cycles",
                              bound=bound,
                              measured=max(latencies_flit_cycles),
                              kind="upper"))
    return report


def measured_throughput_gbit_s(words_delivered: int, window_flit_cycles: int,
                               flit_cycle_ns: float = 6.0,
                               word_bits: int = 32) -> float:
    """Convert a word count over a flit-cycle window to Gbit/s."""
    if window_flit_cycles <= 0:
        raise ValueError("window must be positive")
    words_per_cycle = words_delivered / window_flit_cycles
    return words_per_cycle * word_bits / flit_cycle_ns
