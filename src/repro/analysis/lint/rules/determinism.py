"""Determinism rules.

The engine's headline guarantee is byte-identical output across engine
modes (always-tick vs. activity-driven vs. batched; see
``tests/test_batching_equivalence.py``).  That only holds if no model
code reads wall-clock time, draws from unseeded global randomness,
iterates hash-ordered containers on timing-relevant paths, or lets float
rounding into cycle/picosecond arithmetic.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.analysis.lint.framework import (
    LintRule,
    ModuleUnderLint,
    Violation,
    register_rule,
)

#: Subpackages where hash-iteration order can reach simulated timing.
_TIMING_PACKAGES = ("sim/", "core/", "network/", "ip/", "mem/", "faults/")

_WALL_CLOCK_TIME_ATTRS = {
    "time", "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns",
    "process_time", "process_time_ns", "time_ns",
}
_WALL_CLOCK_DATETIME_ATTRS = {"now", "today", "utcnow"}


@register_rule
class WallClockRule(LintRule):
    """No wall-clock reads anywhere in the model."""

    rule_id = "det-wall-clock"
    title = "wall-clock time read in simulation code"
    contract = "PERFORMANCE.md: byte-identical determinism"

    def check(self, module: ModuleUnderLint) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute):
                    base = func.value
                    if (isinstance(base, ast.Name) and base.id == "time"
                            and func.attr in _WALL_CLOCK_TIME_ATTRS):
                        yield self.violation(
                            module, node,
                            f"time.{func.attr}() reads the wall clock; "
                            "simulated time must come from the engine")
                    elif (isinstance(base, ast.Attribute)
                          and base.attr in {"datetime", "date"}
                          and func.attr in _WALL_CLOCK_DATETIME_ATTRS):
                        yield self.violation(
                            module, node,
                            f"datetime.{func.attr}() reads the wall clock")
                    elif (isinstance(base, ast.Name)
                          and base.id in {"datetime", "date"}
                          and func.attr in _WALL_CLOCK_DATETIME_ATTRS):
                        yield self.violation(
                            module, node,
                            f"{base.id}.{func.attr}() reads the wall clock")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in _WALL_CLOCK_TIME_ATTRS:
                            yield self.violation(
                                module, node,
                                f"importing {alias.name} from time invites "
                                "wall-clock reads; use engine cycle counts")


@register_rule
class ModuleRandomRule(LintRule):
    """Only seeded ``random.Random`` instances; never the module-level API."""

    rule_id = "det-module-random"
    title = "module-level random.* call (unseeded global RNG)"
    contract = "PERFORMANCE.md: byte-identical determinism"

    def check(self, module: ModuleUnderLint) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and isinstance(func.value, ast.Name)
                        and func.value.id == "random"
                        and func.attr != "Random"):
                    yield self.violation(
                        module, node,
                        f"random.{func.attr}() uses the shared global RNG; "
                        "construct a seeded random.Random instead")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    for alias in node.names:
                        if alias.name != "Random":
                            yield self.violation(
                                module, node,
                                f"from random import {alias.name} pulls the "
                                "global RNG into scope; import Random and "
                                "seed it")


def _assigned_value(node: ast.AST) -> Optional[ast.AST]:
    if isinstance(node, ast.Assign):
        return node.value
    if isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        return node.value
    return None


def _is_set_expr(expr: Optional[ast.AST]) -> bool:
    """Conservatively: is this expression definitely a set/frozenset?"""
    if expr is None:
        return False
    if isinstance(expr, ast.Set):
        return True
    if isinstance(expr, ast.SetComp):
        return True
    if (isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name)
            and expr.func.id in {"set", "frozenset"}):
        return True
    if isinstance(expr, ast.IfExp):
        return _is_set_expr(expr.body) or _is_set_expr(expr.orelse)
    if isinstance(expr, ast.BinOp):  # a | b keeps set-ness when either is
        return _is_set_expr(expr.left) or _is_set_expr(expr.right)
    return False


class _SetTracker:
    """Module-wide inference of which names/attributes hold bare sets.

    Two scopes are tracked: ``self.X`` attributes assigned a set anywhere
    in the module (instance state), and local variable names assigned a
    set — including aliases of a known set attribute
    (``ready = self._be_ready``).  Deliberately conservative: only
    definite set constructions count, so dict-of-None replacements and
    sorted() materialisations read clean.
    """

    def __init__(self, module: ModuleUnderLint) -> None:
        self.module = module
        self.set_attrs: Set[str] = set()
        for node in ast.walk(module.tree):
            value = _assigned_value(node)
            if value is None or not _is_set_expr(value):
                continue
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    self.set_attrs.add(target.attr)

    def local_set_names(self, func: ast.AST) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(func):
            value = _assigned_value(node)
            if value is None:
                continue
            is_set = _is_set_expr(value)
            if (not is_set and isinstance(value, ast.Attribute)
                    and isinstance(value.value, ast.Name)
                    and value.value.id == "self"
                    and value.attr in self.set_attrs):
                is_set = True  # alias of a known set attribute
            if not is_set:
                continue
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return names

    def is_set(self, expr: ast.AST, local_names: Set[str]) -> bool:
        if _is_set_expr(expr):
            return True
        if isinstance(expr, ast.Name) and expr.id in local_names:
            return True
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and expr.attr in self.set_attrs):
            return True
        return False


@register_rule
class UnorderedIterRule(LintRule):
    """No iteration over bare sets (or ``dict.popitem``) on timing paths.

    CPython set iteration order depends on insertion history and hash
    seeding of the element types; any loop over a bare set that feeds
    arbitration, scheduling, or rerouting can silently break byte-identity.
    Iterate a ``sorted(...)`` view, or keep the collection as an
    insertion-ordered dict-of-None.
    """

    rule_id = "det-unordered-iter"
    title = "iteration over a bare set on a timing-relevant path"
    contract = "PERFORMANCE.md: byte-identical determinism"
    packages = _TIMING_PACKAGES

    def check(self, module: ModuleUnderLint) -> Iterator[Violation]:
        tracker = _SetTracker(module)
        func_locals: dict = {}

        def locals_for(node: ast.AST) -> Set[str]:
            func = module.enclosing_function(node)
            key = id(func) if func is not None else None
            if key not in func_locals:
                func_locals[key] = tracker.local_set_names(
                    func if func is not None else module.tree)
            return func_locals[key]

        for node in ast.walk(module.tree):
            iter_expr = None
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iter_expr = node.iter
            elif isinstance(node, ast.comprehension):
                iter_expr = node.iter
            if iter_expr is not None and tracker.is_set(
                    iter_expr, locals_for(node if not isinstance(
                        node, ast.comprehension) else iter_expr)):
                yield self.violation(
                    module, iter_expr,
                    "iterating a bare set: order is hash-dependent; iterate "
                    "sorted(...) or keep an insertion-ordered dict instead")
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "popitem"
                    and not node.args):
                yield self.violation(
                    module, node,
                    "dict.popitem() pops in LIFO order of a mutating dict; "
                    "pop an explicit key instead")


_TIME_NAME_SUFFIXES = ("_ps", "_ns", "cycle", "cycles", "period")


def _is_time_name(name: Optional[str]) -> bool:
    return name is not None and name.endswith(_TIME_NAME_SUFFIXES)


def _has_float_arith(expr: ast.AST) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            return True
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
    return False


@register_rule
class FloatCyclesRule(LintRule):
    """Cycle/picosecond quantities stay integral.

    The engine keeps time as exact integer picoseconds and cycle counts;
    a single true division or float literal flowing into a ``*_ps`` /
    ``*cycle`` quantity introduces rounding that differs across platforms
    and engine modes.  Use ``//`` and integer constants.
    """

    rule_id = "det-float-cycles"
    title = "float arithmetic assigned to a cycle/ps quantity"
    contract = "PERFORMANCE.md: byte-identical determinism"
    packages = _TIMING_PACKAGES

    def check(self, module: ModuleUnderLint) -> Iterator[Violation]:
        from repro.analysis.lint.framework import terminal_name
        for node in ast.walk(module.tree):
            value = _assigned_value(node)
            if value is None or not _has_float_arith(value):
                continue
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                name = terminal_name(target)
                if _is_time_name(name):
                    yield self.violation(
                        module, node,
                        f"float arithmetic flows into time quantity "
                        f"{name!r}; use // and integer constants so "
                        "cycle/ps math stays exact")
                    break
