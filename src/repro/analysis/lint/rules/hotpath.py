"""Hot-path authoring rules.

PERFORMANCE.md ("The hot path") documents the discipline that keeps the
saturated regime fast: value-carrying objects created per flit need
``__slots__``, and per-cycle ``tick()``/``post_tick()`` bodies must not
allocate (no ``sorted()`` materialisations, no list/dict/set
comprehensions) — the batched pipeline of PR 7 only pays off if the
per-event work stays allocation-free.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Tuple

from repro.analysis.lint.framework import (
    LintRule,
    ModuleUnderLint,
    Violation,
    register_rule,
    tick_reachable_methods,
)

#: Modules whose classes are instantiated per flit / per event on the hot
#: path and therefore require ``__slots__``.  Keyed by repro-relative
#: module path; the value lists required class names, or "*" for all
#: non-exception classes in the module.
SLOTS_REQUIRED: Dict[str, Tuple[str, ...]] = {
    "network/packet.py": ("*",),
    "sim/engine.py": ("Event",),
    "sim/stats.py": ("WindowedRate", "CounterColumn"),
}

#: Modules whose tick()/post_tick() closures must stay allocation-free.
HOT_TICK_MODULES = (
    "core/kernel.py",
    "network/router.py",
    "network/link.py",
    "core/shells/base.py",
    "core/shells/multiconnection.py",
)

#: Extra per-cycle roots beyond tick/post_tick: policy hooks that base-class
#: tick bodies call on subclasses every cycle.
_TICK_ROOTS = ("tick", "post_tick", "_rx_conn_candidates", "_select_conns")


def _is_exception_class(class_node: ast.ClassDef) -> bool:
    for base in class_node.bases:
        name = base.id if isinstance(base, ast.Name) else \
            base.attr if isinstance(base, ast.Attribute) else ""
        if name.endswith(("Error", "Exception", "Warning")):
            return True
    return False


def _has_slots(class_node: ast.ClassDef) -> bool:
    # @dataclass(slots=True) generates __slots__ for us.
    for decorator in class_node.decorator_list:
        if isinstance(decorator, ast.Call):
            name = decorator.func.id if isinstance(
                decorator.func, ast.Name) else getattr(
                decorator.func, "attr", "")
            if name == "dataclass":
                for keyword in decorator.keywords:
                    if (keyword.arg == "slots"
                            and isinstance(keyword.value, ast.Constant)
                            and keyword.value.value is True):
                        return True
    for item in class_node.body:
        if isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name) and \
                        target.id == "__slots__":
                    return True
        elif isinstance(item, ast.AnnAssign):
            if isinstance(item.target, ast.Name) and \
                    item.target.id == "__slots__":
                return True
    return False


@register_rule
class MissingSlotsRule(LintRule):
    """``__slots__`` required on per-flit classes in designated modules."""

    rule_id = "hot-missing-slots"
    title = "__slots__ missing on a hot-path class"
    contract = "PERFORMANCE.md: the hot path"

    def check(self, module: ModuleUnderLint) -> Iterator[Violation]:
        rel = module.repro_relpath
        if rel is not None:
            required = SLOTS_REQUIRED.get(rel)
            if required is None:
                return
        else:
            required = ("*",)  # fixture mode: every class is in scope
        for class_node in module.class_defs():
            if _is_exception_class(class_node):
                continue
            if "*" not in required and class_node.name not in required:
                continue
            if _has_slots(class_node):
                continue
            yield self.violation(
                module, class_node,
                f"class {class_node.name} is allocated on the hot path and "
                "must declare __slots__ (instance dicts dominate per-flit "
                "memory traffic)")


_ALLOC_NODES = (ast.ListComp, ast.DictComp, ast.SetComp)
_ALLOC_CALLS = {"sorted"}


@register_rule
class AllocInTickRule(LintRule):
    """No allocation-heavy constructs in tick-reachable methods.

    The per-class closure from ``tick()``/``post_tick()`` (plus the
    per-cycle policy hooks) over direct ``self.X()`` calls must stay free
    of ``sorted()`` and list/dict/set comprehensions: each one allocates
    every cycle the component is awake.  Hoist the computation to a
    configuration-time method, cache it behind a version check, or keep a
    running data structure.  Generator expressions are allowed (no
    materialisation).
    """

    rule_id = "hot-alloc-in-tick"
    title = "allocation-heavy construct inside a tick-reachable method"
    contract = "PERFORMANCE.md: the hot path"
    packages = HOT_TICK_MODULES

    def applies(self, module: ModuleUnderLint) -> bool:
        rel = module.repro_relpath
        if rel is None:
            return True
        return rel in HOT_TICK_MODULES

    def check(self, module: ModuleUnderLint) -> Iterator[Violation]:
        for class_node in module.class_defs():
            reachable = tick_reachable_methods(class_node, roots=_TICK_ROOTS)
            for name, method in sorted(reachable.items()):
                for node in ast.walk(method):
                    if isinstance(node, _ALLOC_NODES):
                        kind = type(node).__name__
                        yield self.violation(
                            module, node,
                            f"{kind} allocates per cycle inside "
                            f"{class_node.name}.{name} (tick-reachable); "
                            "hoist or keep a running structure")
                    elif (isinstance(node, ast.Call)
                          and isinstance(node.func, ast.Name)
                          and node.func.id in _ALLOC_CALLS):
                        yield self.violation(
                            module, node,
                            f"{node.func.id}() materialises a new list per "
                            f"cycle inside {class_node.name}.{name} "
                            "(tick-reachable); cache behind a version check")
