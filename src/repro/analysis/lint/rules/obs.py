"""Observability authoring rules.

BUILDING.md ("Observability") promises that the probe network costs
exactly nothing when disabled: probes and the metrics sampler sit on the
flit clock of observed runs, so every per-cycle entry point must bail out
on the cached ``enabled`` flag before it reads or allocates anything.
This rule keeps that contract mechanical — a disabled observatory must be
a handful of predicted branches, not a trickle of per-cycle work.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.lint.framework import (
    LintRule,
    ModuleUnderLint,
    Violation,
    register_rule,
)

#: Per-cycle entry points of probes and samplers: the sampler's clock
#: tick, a probe's sample() and the fault probe's event callback.
_OBS_ROOTS = ("tick", "sample", "on_fault")


def _first_statement(method: ast.FunctionDef) -> Optional[ast.stmt]:
    """The first non-docstring statement of a method body."""
    body = method.body
    index = 0
    if body and isinstance(body[0], ast.Expr) \
            and isinstance(body[0].value, ast.Constant) \
            and isinstance(body[0].value.value, str):
        index = 1
    return body[index] if index < len(body) else None


def _is_enabled_guard(stmt: ast.stmt) -> bool:
    """True for ``if not self.<...enabled...>: return``."""
    if not isinstance(stmt, ast.If) or stmt.orelse:
        return False
    test = stmt.test
    if not (isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not)):
        return False
    operand = test.operand
    if not (isinstance(operand, ast.Attribute)
            and isinstance(operand.value, ast.Name)
            and operand.value.id == "self"
            and "enabled" in operand.attr):
        return False
    return len(stmt.body) == 1 and isinstance(stmt.body[0], ast.Return)


@register_rule
class ObsHotDisabledRule(LintRule):
    """Probe/sampler entry points must early-return when disabled.

    The first statement of every ``tick``/``sample``/``on_fault`` method
    in the obs package must be ``if not self.<enabled flag>: return`` —
    before any allocation, attribute walk or arithmetic — so toggling
    :meth:`Observatory.disable` really turns the probe network off.
    """

    rule_id = "obs-hot-disabled"
    title = "obs entry point missing the disabled early-return"
    contract = "BUILDING.md: Observability"
    packages = ("obs/",)

    def check(self, module: ModuleUnderLint) -> Iterator[Violation]:
        for class_node in module.class_defs():
            for item in class_node.body:
                if not isinstance(item, ast.FunctionDef):
                    continue
                if item.name not in _OBS_ROOTS:
                    continue
                stmt = _first_statement(item)
                if stmt is not None and _is_enabled_guard(stmt):
                    continue
                yield self.violation(
                    module, item,
                    f"{class_node.name}.{item.name} runs per cycle on the "
                    "flit clock of observed runs; its first statement must "
                    "be `if not self.<...enabled...>: return` so a "
                    "disabled probe network costs only a predicted branch")
