"""Wake-protocol rules.

An idle-skip clock only re-ticks a sleeping component when something
wakes it.  PERFORMANCE.md ("The wake-up protocol contract") requires
every externally reachable state mutation of an ``is_idle()``-overriding
component to go through a wake-hook primitive (``HardwareFifo.on_push``,
``Channel.add_credit``/``add_space``, ``NIKernel.write_register``, shell
``submit``, ``Link.send``…) or to call ``notify_active()`` explicitly.
PR 7's negative-control test showed what a single miss costs: flits
strand silently until an unrelated event happens to wake the clock.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.analysis.lint.framework import (
    LintRule,
    ModuleUnderLint,
    Violation,
    call_name,
    class_methods,
    defines_method,
    receiver_root,
    register_rule,
)

#: Mutating calls on ``self``-rooted state that change what tick() would do.
_PRODUCER_CALLS = {
    "append", "appendleft", "extend", "push", "push_many", "push_run",
    "add", "insert", "update", "reserve", "put",
}

#: Calls that count as routing the mutation through a wake hook.  These are
#: the documented wake primitives plus the component-level entry points that
#: wrap them (pushing through a HardwareFifo *is* the hook).
_WAKE_CALLS = {
    "notify_active", "wake",
    "add_credit", "add_space", "request_flush", "flush",
    "on_push", "_notify_tx", "notify_rx",
    "write_register", "push", "push_many", "push_run",
    "submit", "enqueue", "issue", "send", "send_burst", "_rx_stimulus",
}

#: Methods that are wiring-time by convention: they run before the engine
#: starts, on components whose clocks have not begun sleeping.
_WIRING_PREFIXES = ("connect", "attach", "register_", "_init", "__init__",
                    "configure", "build")

#: Methods the engine only calls while the clock is already awake — the
#: per-cycle entry points themselves need no wake hook.
_ENGINE_DRIVEN = {"tick", "post_tick"}


def _method_is_public_entry(name: str) -> bool:
    if name.startswith("__") and name.endswith("__"):
        return name == "__init__"
    return not name.startswith("_")


def _mutations_in(method: ast.FunctionDef) -> Iterator[ast.AST]:
    """Producer mutations of self-rooted state inside ``method``."""
    for node in ast.walk(method):
        if isinstance(node, ast.Call):
            name = call_name(node)
            if (name in _PRODUCER_CALLS
                    and isinstance(node.func, ast.Attribute)
                    and receiver_root(node.func.value) == "self"):
                yield node
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (isinstance(target, ast.Subscript)
                        and receiver_root(target.value) == "self"):
                    yield target
                    break


def _calls_wake(method: ast.FunctionDef) -> bool:
    for node in ast.walk(method):
        if isinstance(node, ast.Call) and call_name(node) in _WAKE_CALLS:
            return True
    return False


@register_rule
class MutateWithoutNotifyRule(LintRule):
    """Public mutators of idle-capable components must hit a wake hook.

    Flags public methods (and ``__init__``-excluded entry points) of
    classes that override ``is_idle()`` when the method mutates
    ``self``-rooted queues/registers/collections but neither calls
    ``notify_active()``/``wake()`` nor routes through a wake-hook
    primitive.  Wiring-time methods (``connect*``, ``attach*``, …) are
    exempt: they run before clocks sleep.
    """

    rule_id = "wake-mutate-no-notify"
    title = "state mutation bypasses the wake hooks"
    contract = "PERFORMANCE.md: the wake-up protocol contract"

    def check(self, module: ModuleUnderLint) -> Iterator[Violation]:
        for class_node in module.class_defs():
            if not defines_method(class_node, "is_idle"):
                continue
            for name, method in sorted(class_methods(class_node).items()):
                if not _method_is_public_entry(name) or name == "__init__":
                    continue
                if name in _ENGINE_DRIVEN or name.startswith(
                        _WIRING_PREFIXES):
                    continue
                mutations = list(_mutations_in(method))
                if not mutations:
                    continue
                if _calls_wake(method):
                    continue
                yield self.violation(
                    module, method,
                    f"{class_node.name}.{name} mutates component state but "
                    "never reaches a wake hook; call notify_active() or "
                    "route the write through a wake-hook primitive "
                    "(PERFORMANCE.md: wake-up protocol)")


_MUTATION_NODES = (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete)


@register_rule
class ImpureIsIdleRule(LintRule):
    """``is_idle()`` / ``is_quiescent()`` must be pure.

    The engine may call them any number of times per cycle (or skip them
    entirely in fused groups); a mutation inside makes idleness depend on
    polling frequency, which differs between engine modes.
    """

    rule_id = "wake-impure-is-idle"
    title = "is_idle()/is_quiescent() mutates state"
    contract = "PERFORMANCE.md: the wake-up protocol contract"

    def check(self, module: ModuleUnderLint) -> Iterator[Violation]:
        for class_node in module.class_defs():
            for name in ("is_idle", "is_quiescent"):
                method = class_methods(class_node).get(name)
                if method is None:
                    continue
                for node in ast.walk(method):
                    flagged = False
                    if isinstance(node, _MUTATION_NODES):
                        targets = node.targets if isinstance(
                            node, ast.Assign) else getattr(
                            node, "targets", [getattr(node, "target", None)])
                        for target in targets:
                            if target is not None and \
                                    receiver_root(target) == "self":
                                flagged = True
                                break
                    elif isinstance(node, ast.Call):
                        call = call_name(node)
                        if (call in _PRODUCER_CALLS | {"pop", "popleft",
                                                       "clear", "discard",
                                                       "remove"}
                                and isinstance(node.func, ast.Attribute)
                                and receiver_root(node.func.value) == "self"):
                            flagged = True
                    if flagged:
                        yield self.violation(
                            module, node,
                            f"{class_node.name}.{name} mutates self; "
                            "idleness probes must be side-effect free")
                        break


#: Self-rooted calls that mutate state (for purity probes).
_MUTATING_CALLS = _PRODUCER_CALLS | {"pop", "popleft", "clear", "discard",
                                     "remove"}


def _mutates_self(method: ast.FunctionDef) -> Optional[ast.AST]:
    """The first node in ``method`` that mutates ``self``-rooted state."""
    for node in ast.walk(method):
        if isinstance(node, _MUTATION_NODES):
            targets = node.targets if isinstance(node, ast.Assign) \
                else getattr(node, "targets",
                             [getattr(node, "target", None)])
            for target in targets:
                if target is not None and receiver_root(target) == "self":
                    return node
        elif isinstance(node, ast.Call):
            if (call_name(node) in _MUTATING_CALLS
                    and isinstance(node.func, ast.Attribute)
                    and receiver_root(node.func.value) == "self"):
                return node
    return None


@register_rule
class GateNextActionConsistentRule(LintRule):
    """``next_action_cycle`` overrides must ride the wake protocol, purely.

    A next-action horizon (PERFORMANCE.md "Tick gating & frame
    macro-stepping") is only sound when stimulus can cancel it, so a class
    overriding ``next_action_cycle`` must take part in the wake protocol:
    override ``is_idle()`` (whose contract already requires wake hooks on
    every stimulus path) or visibly call ``notify_active()``/``wake()``
    itself.  And the probe must be pure — the clock may call it every
    edge, once per dense window, or never, so any side effect would make
    results depend on the gating schedule.
    """

    rule_id = "gate-next-action-consistent"
    title = "next_action_cycle without wake wiring, or impure"
    contract = "PERFORMANCE.md: tick gating & frame macro-stepping"

    def check(self, module: ModuleUnderLint) -> Iterator[Violation]:
        for class_node in module.class_defs():
            method = class_methods(class_node).get("next_action_cycle")
            if method is None:
                continue
            if not defines_method(class_node, "is_idle") and not any(
                    isinstance(node, ast.Call)
                    and call_name(node) in ("notify_active", "wake")
                    for node in ast.walk(class_node)):
                yield self.violation(
                    module, method,
                    f"{class_node.name}.next_action_cycle has no wake "
                    "wiring: override is_idle() (whose stimulus paths "
                    "must notify) or call notify_active() so a standing "
                    "gate can be cancelled")
            mutation = _mutates_self(method)
            if mutation is not None:
                yield self.violation(
                    module, mutation,
                    f"{class_node.name}.next_action_cycle mutates self; "
                    "horizon probes must be pure — the clock may call "
                    "them on any schedule (or not at all)")


@register_rule
class SlotVersionRule(LintRule):
    """Versioned tables must bump ``self.version`` on every mutation.

    The kernel's slot cache is invalidated by ``SlotTable.version``; a
    mutating method that forgets the bump leaves stale cached schedules
    live.  Applies to any class initialising ``self.version = 0``.
    """

    rule_id = "wake-slot-version"
    title = "versioned-table mutation without a version bump"
    contract = "PERFORMANCE.md: the hot path (slot cache invalidation)"

    def check(self, module: ModuleUnderLint) -> Iterator[Violation]:
        for class_node in module.class_defs():
            methods = class_methods(class_node)
            init = methods.get("__init__")
            if init is None or not self._declares_version(init):
                continue
            for name, method in sorted(methods.items()):
                if name.startswith("_"):
                    # Private helpers include cache refreshers whose state
                    # is derived *from* the version; only the public
                    # mutator surface must bump it.
                    continue
                if not self._mutates_state(method):
                    continue
                if self._touches_version(method):
                    continue
                yield self.violation(
                    module, method,
                    f"{class_node.name}.{name} mutates the table without "
                    "bumping self.version; dependent caches go stale")

    @staticmethod
    def _declares_version(init: ast.FunctionDef) -> bool:
        for node in ast.walk(init):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (isinstance(target, ast.Attribute)
                            and target.attr == "version"
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        return True
        return False

    @staticmethod
    def _touches_version(method: ast.FunctionDef) -> bool:
        for node in ast.walk(method):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    if (isinstance(target, ast.Attribute)
                            and target.attr == "version"
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        return True
        return False

    @staticmethod
    def _mutates_state(method: ast.FunctionDef) -> bool:
        """A write to self state other than self.version itself."""
        for node in ast.walk(method):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    if receiver_root(target) != "self":
                        continue
                    if (isinstance(target, ast.Attribute)
                            and target.attr == "version"
                            and isinstance(target.value, ast.Name)):
                        continue
                    return True
            elif isinstance(node, ast.Call):
                name = call_name(node)
                if (name in _PRODUCER_CALLS | {"pop", "clear", "remove",
                                               "discard", "setdefault"}
                        and isinstance(node.func, ast.Attribute)
                        and receiver_root(node.func.value) == "self"):
                    return True
        return False
