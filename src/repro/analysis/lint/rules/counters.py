"""Counter-exactness and burst-guard rules.

The stats registry is part of the reproduction's observable output:
counters must be exact across engine modes, which means (a) the registry
a component captured at construction is never rebound, (b) hot
tick-reachable code uses cached ``Counter`` objects (``self._ctr_x =
stats.counter(...)`` once, then ``self._ctr_x.value += n``) rather than
re-resolving string keys per cycle, (c) counter values are reset through
the ``Counter``/``CounterColumn`` API, and (d) every ``send_burst`` call
site sits behind a barrier-aware guard (PR 7's truncation invariants).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.framework import (
    LintRule,
    ModuleUnderLint,
    Violation,
    call_name,
    identifiers_in,
    receiver_root,
    register_rule,
)
from repro.analysis.lint.rules.hotpath import HOT_TICK_MODULES, _TICK_ROOTS
from repro.analysis.lint.framework import tick_reachable_methods


@register_rule
class RegistryRebindRule(LintRule):
    """``self.stats`` is captured once, at construction, and never rebound.

    Counters cached from the registry (``self._ctr_x``) keep pointing at
    the old registry if ``self.stats`` is reassigned later; totals then
    silently fork.
    """

    rule_id = "ctr-registry-rebind"
    title = "stats registry rebound after construction"
    contract = "PERFORMANCE.md: the hot path (cached counters)"

    def check(self, module: ModuleUnderLint) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if (isinstance(target, ast.Attribute)
                        and target.attr == "stats"
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    func = module.enclosing_function(node)
                    if func is not None and func.name == "__init__":
                        continue
                    yield self.violation(
                        module, node,
                        "self.stats rebound outside __init__; cached "
                        "counters keep pointing at the old registry")


@register_rule
class UncachedCounterRule(LintRule):
    """No string-keyed registry lookups in tick-reachable hot methods.

    ``self.stats.counter("name")`` does a dict lookup and may allocate on
    first use; in a tick-reachable method it also re-resolves the key
    every cycle.  Cache the Counter in ``__init__`` and bump
    ``self._ctr_name.value`` instead.
    """

    rule_id = "ctr-uncached-counter"
    title = "string-keyed counter lookup in a tick-reachable method"
    contract = "PERFORMANCE.md: the hot path (cached counters)"
    packages = HOT_TICK_MODULES

    _LOOKUPS = {"counter", "histogram", "latency", "rate"}

    def applies(self, module: ModuleUnderLint) -> bool:
        rel = module.repro_relpath
        if rel is None:
            return True
        return rel in HOT_TICK_MODULES

    def check(self, module: ModuleUnderLint) -> Iterator[Violation]:
        for class_node in module.class_defs():
            reachable = tick_reachable_methods(class_node, roots=_TICK_ROOTS)
            for name, method in sorted(reachable.items()):
                for node in ast.walk(method):
                    if not isinstance(node, ast.Call):
                        continue
                    func = node.func
                    if (isinstance(func, ast.Attribute)
                            and func.attr in self._LOOKUPS
                            and isinstance(func.value, ast.Attribute)
                            and func.value.attr == "stats"
                            and receiver_root(func.value) == "self"):
                        yield self.violation(
                            module, node,
                            f"self.stats.{func.attr}(...) inside "
                            f"{class_node.name}.{name} (tick-reachable) "
                            "re-resolves the key per cycle; cache the "
                            "Counter in __init__ and bump .value")


@register_rule
class RawCounterResetRule(LintRule):
    """Counter values are reset through the API, not raw assignment.

    ``self._ctr_x.value += n`` is the sanctioned hot-path bump, but a
    plain ``ctr.value = 0`` bypasses ``Counter.reset()`` and any windowed
    bookkeeping layered on it.
    """

    rule_id = "ctr-raw-reset"
    title = "raw assignment to a counter's .value"
    contract = "sim/stats.py: Counter/CounterColumn API"

    def check(self, module: ModuleUnderLint) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not (isinstance(target, ast.Attribute)
                        and target.attr == "value"):
                    continue
                receiver = target.value
                if isinstance(receiver, ast.Name) and receiver.id == "self":
                    # A literal `self.value = ...` is the Counter/
                    # CounterColumn API implementing itself.
                    continue
                names = " ".join(identifiers_in(receiver)).lower()
                if "ctr" in names or "counter" in names:
                    yield self.violation(
                        module, node,
                        "raw assignment to a counter's .value bypasses "
                        "Counter.reset(); use the API")


#: Identifier substrings that indicate a barrier-aware burst guard.
_BURST_GUARDS = ("burst_length", "burst_barrier", "stop_barrier",
                 "staged_burst", "busy_until", "burst_allowance",
                 "burst_cap")


@register_rule
class UnguardedBurstRule(LintRule):
    """``send_burst`` call sites must sit in barrier-aware code.

    A burst delivered past a fault window, stop barrier, or tracer
    breakpoint diverges from per-flit semantics.  Every function calling
    ``send_burst`` must compute or consult a burst guard
    (``_burst_length``, ``burst_barrier``, ``busy_until`` windows, …) —
    the defining method itself is exempt.
    """

    rule_id = "ctr-burst-unguarded"
    title = "send_burst call without a barrier-aware guard"
    contract = "PERFORMANCE.md: burst-granularity simulation"

    def check(self, module: ModuleUnderLint) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node,
                              (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name == "send_burst":
                continue  # the primitive itself
            burst_calls = [
                call for call in ast.walk(node)
                if isinstance(call, ast.Call)
                and call_name(call) == "send_burst"]
            if not burst_calls:
                continue
            mentioned = set(identifiers_in(node))
            if any(any(guard in ident for guard in _BURST_GUARDS)
                   for ident in mentioned):
                continue
            yield self.violation(
                module, burst_calls[0],
                f"{node.name} calls send_burst without consulting a burst "
                "barrier/guard; bursts must truncate at fault, stop and "
                "tracer barriers (PERFORMANCE.md: burst-granularity)")
