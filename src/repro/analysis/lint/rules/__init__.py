"""Bundled reprolint rules.

Importing this package registers every bundled rule with the framework
registry.  Each module encodes one family of documented contracts:

* :mod:`.determinism` — byte-identical replay across engine modes
* :mod:`.wake` — the wake()/notify_active() protocol
* :mod:`.hotpath` — hot-path authoring discipline (``__slots__``,
  allocation-free tick bodies)
* :mod:`.counters` — counter exactness and burst-barrier guarding
* :mod:`.obs` — probe-network entry points stay free when disabled
"""

from repro.analysis.lint.rules import (  # noqa: F401
    counters,
    determinism,
    hotpath,
    obs,
    wake,
)
