"""reprolint: static contract checking for the repro tree.

Public surface:

* :func:`lint_paths` / :func:`lint_source` — run the rule set
  programmatically (tests lint deliberately broken snippets this way).
* :class:`LintRule` / :func:`register_rule` — extend the rule registry.
* :class:`Baseline` — the reviewed-exception file format.
* ``python -m repro.analysis.lint src/repro`` — the CLI used by
  ``make lint`` / ``scripts/check.sh`` / CI.

See PERFORMANCE.md ("Static contract checking") for the contract-to-rule
mapping and suppression etiquette.
"""

from repro.analysis.lint.baseline import Baseline, BaselineEntry
from repro.analysis.lint.framework import (
    LintEngine,
    LintError,
    LintReport,
    LintRule,
    ModuleUnderLint,
    Violation,
    all_rules,
    get_rule,
    lint_paths,
    lint_source,
    register_rule,
)
from repro.analysis.lint.reporters import render, render_json, render_text

__all__ = [
    "Baseline",
    "BaselineEntry",
    "LintEngine",
    "LintError",
    "LintReport",
    "LintRule",
    "ModuleUnderLint",
    "Violation",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
    "register_rule",
    "render",
    "render_json",
    "render_text",
]
