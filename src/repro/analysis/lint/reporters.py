"""Output formatting for reprolint reports: human text and machine JSON."""

from __future__ import annotations

import json

from repro.analysis.lint.framework import LintReport

__all__ = ["render_text", "render_json", "render"]


def render_text(report: LintReport) -> str:
    lines = [violation.format() for violation in report.violations]
    counts = report.counts_by_rule()
    if counts:
        lines.append("")
        for rule_id in sorted(counts):
            lines.append(f"  {rule_id}: {counts[rule_id]}")
    suppressed = []
    if report.inline_suppressed:
        suppressed.append(f"{report.inline_suppressed} inline-suppressed")
    if report.baseline_suppressed:
        suppressed.append(f"{report.baseline_suppressed} baselined")
    tail = f" ({', '.join(suppressed)})" if suppressed else ""
    verdict = "clean" if report.ok else \
        f"{len(report.violations)} violation(s)"
    lines.append(f"reprolint: {report.files_checked} file(s), "
                 f"{len(report.rules_run)} rule(s): {verdict}{tail}")
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    return json.dumps(report.to_dict(), indent=2)


def render(report: LintReport, fmt: str) -> str:
    if fmt == "json":
        return render_json(report)
    if fmt == "text":
        return render_text(report)
    raise ValueError(f"unknown format {fmt!r}")
