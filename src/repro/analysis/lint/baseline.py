"""Reviewed-baseline support for reprolint.

A baseline is the list of *intentional* contract exceptions the tree
ships with — violations a reviewer looked at and signed off, with a
reason recorded next to each.  The gate stays strict for new code while
the reviewed exceptions don't need a suppression comment at every site.

Entries are keyed by ``(path, rule, symbol)`` — the enclosing class or
function qualname, not a line number — so a baseline survives unrelated
line drift in the file.  ``count`` bounds how many violations the entry
absorbs: if a symbol grows an *additional* violation of the same rule,
the surplus is reported.

File format (JSON, kept at the repo root as ``reprolint_baseline.json``)::

    {
      "version": 1,
      "entries": [
        {"rule": "hot-alloc-in-tick",
         "path": "src/repro/core/shells/multiconnection.py",
         "symbol": "MultiConnectionShell._rx_conn_candidates",
         "count": 1,
         "reason": "sorted() over a handful of connection ids; bounded ..."}
      ]
    }

Paths match on suffix, so a baseline written from the repo root still
matches when reprolint runs from a subdirectory or with absolute paths.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis.lint.framework import LintError, Violation

__all__ = ["BaselineEntry", "Baseline"]

_FORMAT_VERSION = 1


@dataclass
class BaselineEntry:
    rule: str
    path: str
    symbol: str
    count: int = 1
    reason: str = ""

    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.symbol)

    def to_dict(self) -> Dict[str, object]:
        return {"rule": self.rule, "path": self.path, "symbol": self.symbol,
                "count": self.count, "reason": self.reason}


def _path_matches(entry_path: str, violation_path: str) -> bool:
    """Suffix match on whole path components."""
    entry_parts = Path(entry_path).parts
    violation_parts = Path(violation_path).parts
    if len(entry_parts) > len(violation_parts):
        entry_parts, violation_parts = violation_parts, entry_parts
    return violation_parts[len(violation_parts) - len(entry_parts):] == \
        tuple(entry_parts)


@dataclass
class Baseline:
    entries: List[BaselineEntry] = field(default_factory=list)
    source_path: Optional[str] = None

    # ----------------------------------------------------------------- I/O
    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise LintError(f"cannot read baseline {path}: {exc}") from exc
        if not isinstance(payload, dict) or "entries" not in payload:
            raise LintError(f"baseline {path} is not a reprolint baseline")
        version = payload.get("version", _FORMAT_VERSION)
        if version != _FORMAT_VERSION:
            raise LintError(
                f"baseline {path} has unsupported version {version}")
        entries = []
        for raw in payload["entries"]:
            try:
                entries.append(BaselineEntry(
                    rule=raw["rule"], path=raw["path"],
                    symbol=raw.get("symbol", "<module>"),
                    count=int(raw.get("count", 1)),
                    reason=raw.get("reason", "")))
            except (KeyError, TypeError, ValueError) as exc:
                raise LintError(
                    f"malformed baseline entry in {path}: {raw!r}") from exc
        return cls(entries=entries, source_path=str(path))

    def save(self, path: Path) -> None:
        payload = {
            "version": _FORMAT_VERSION,
            "entries": [entry.to_dict() for entry in sorted(
                self.entries, key=BaselineEntry.key)],
        }
        path.write_text(json.dumps(payload, indent=2) + "\n",
                        encoding="utf-8")

    @classmethod
    def from_violations(cls, violations: List[Violation],
                        reason: str = "baselined at introduction"
                        ) -> "Baseline":
        """Build a baseline absorbing exactly the given violations."""
        counts: Dict[Tuple[str, str, str], int] = {}
        for violation in violations:
            key = (violation.rule_id, violation.path, violation.symbol)
            counts[key] = counts.get(key, 0) + 1
        entries = [BaselineEntry(rule=rule, path=path, symbol=symbol,
                                 count=count, reason=reason)
                   for (rule, path, symbol), count in counts.items()]
        return cls(entries=entries)

    # ------------------------------------------------------------ filtering
    def filter(self, violations: List[Violation]
               ) -> Tuple[List[Violation], int]:
        """Split violations into (surviving, matched_count).

        Each entry absorbs up to ``count`` violations with the same rule,
        a suffix-matching path, and the same symbol.
        """
        budget: Dict[int, int] = {
            index: entry.count for index, entry in enumerate(self.entries)}
        surviving: List[Violation] = []
        matched = 0
        for violation in violations:
            absorbed = False
            for index, entry in enumerate(self.entries):
                if budget[index] <= 0:
                    continue
                if entry.rule != violation.rule_id:
                    continue
                if entry.symbol != violation.symbol:
                    continue
                if not _path_matches(entry.path, violation.path):
                    continue
                budget[index] -= 1
                matched += 1
                absorbed = True
                break
            if not absorbed:
                surviving.append(violation)
        return surviving, matched
