"""reprolint core: the rule framework behind ``repro.analysis.lint``.

The paper's guaranteed-service model only reproduces correctly because
every component obeys contracts the runtime enforces *dynamically*: the
wake()/notify_active() protocol, byte-identical determinism across engine
modes, the hot-path authoring discipline and counter exactness (see
PERFORMANCE.md).  reprolint checks the statically checkable part of those
contracts over the AST of ``src/repro`` at authoring time, before a
violation costs a bisect through the equivalence suites.

Architecture
------------

* :class:`LintRule` — one contract check.  Subclasses declare a ``rule_id``
  (stable, kebab-case, used by suppressions and baselines), a one-line
  ``title``, a ``contract`` pointer into the documentation, and implement
  :meth:`LintRule.check` over a :class:`ModuleUnderLint`.  Registration is
  a decorator (:func:`register_rule`); the registry is open — downstream
  packages may register additional rules before invoking the engine.
* :class:`ModuleUnderLint` — a parsed module plus the shared derived state
  every rule needs: parent links on AST nodes, enclosing-symbol qualnames,
  suppression comments, and the module's path *inside* the ``repro``
  package (rules scope themselves by subpackage).
* :class:`LintEngine` / :func:`lint_paths` — walk files, run rules, apply
  per-line suppressions and the reviewed baseline, return a
  :class:`LintReport`.

Suppressions
------------

A violation is suppressed by a trailing comment on the flagged line::

    self._ready.add(index)  # reprolint: disable=wake-mutate-no-notify

Multiple ids separate with commas; ``disable=all`` silences every rule on
that line.  A whole file opts out of one rule with a line anywhere in it::

    # reprolint: disable-file=hot-alloc-in-tick

Suppression etiquette (also in PERFORMANCE.md): every suppression should
sit next to a comment explaining *why* the contract holds anyway.  Bulk
exceptions belong in the reviewed baseline file instead (see
:mod:`repro.analysis.lint.baseline`).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "LintError",
    "Violation",
    "LintRule",
    "register_rule",
    "all_rules",
    "get_rule",
    "ModuleUnderLint",
    "LintReport",
    "LintEngine",
    "lint_paths",
    "lint_source",
]


class LintError(Exception):
    """Raised for analyzer misuse (unknown rule ids, unreadable baselines)."""


# --------------------------------------------------------------------------
# Violations
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Violation:
    """One contract violation at a source location.

    ``symbol`` is the dotted path of the enclosing class/function (e.g.
    ``NIKernel._transmit_be``); baselines key on ``(path, rule, symbol)``
    so entries survive unrelated line drift.
    """

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    symbol: str = "<module>"

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "message": self.message,
        }

    def format(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: {self.rule_id}: "
                f"{self.message}  [{self.symbol}]")


# --------------------------------------------------------------------------
# Rules and the registry
# --------------------------------------------------------------------------

class LintRule:
    """Base class for reprolint rules.

    Subclasses set the class attributes and implement :meth:`check`.
    ``packages`` (optional) restricts the rule to modules whose
    repro-relative path starts with one of the given prefixes — modules
    outside the ``repro`` package (test fixtures) are always in scope, so
    rule behaviour stays testable on standalone snippets.
    """

    rule_id: str = ""
    title: str = ""
    #: Pointer to the documented contract this rule encodes.
    contract: str = ""
    #: Optional repro-relative path prefixes this rule is scoped to.
    packages: Optional[Tuple[str, ...]] = None

    def applies(self, module: "ModuleUnderLint") -> bool:
        if self.packages is None:
            return True
        rel = module.repro_relpath
        if rel is None:  # outside the repro tree: fixture/test mode
            return True
        return rel.startswith(self.packages)

    def check(self, module: "ModuleUnderLint") -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, module: "ModuleUnderLint", node: ast.AST,
                  message: str) -> Violation:
        return Violation(rule_id=self.rule_id, path=module.display_path,
                         line=getattr(node, "lineno", 1),
                         col=getattr(node, "col_offset", 0),
                         message=message,
                         symbol=module.qualname(node))


_REGISTRY: Dict[str, type] = {}


def register_rule(cls: type) -> type:
    """Class decorator adding a rule to the global registry."""
    if not issubclass(cls, LintRule):
        raise LintError(f"{cls!r} is not a LintRule")
    if not cls.rule_id:
        raise LintError(f"{cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY and _REGISTRY[cls.rule_id] is not cls:
        raise LintError(f"duplicate rule id {cls.rule_id!r}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> Dict[str, LintRule]:
    """Instantiate every registered rule, keyed by id (sorted)."""
    # Importing the bundled rule modules registers them on first use.
    from repro.analysis.lint import rules as _rules  # noqa: F401
    return {rule_id: _REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)}


def get_rule(rule_id: str) -> LintRule:
    from repro.analysis.lint import rules as _rules  # noqa: F401
    try:
        return _REGISTRY[rule_id]()
    except KeyError as exc:
        raise LintError(
            f"unknown rule {rule_id!r}; known: {sorted(_REGISTRY)}") from exc


# --------------------------------------------------------------------------
# Modules under lint
# --------------------------------------------------------------------------

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable(?P<file>-file)?\s*=\s*(?P<ids>[A-Za-z0-9_\-, ]+)")


class ModuleUnderLint:
    """A parsed source module plus the derived state rules share."""

    def __init__(self, source: str, path: str,
                 display_path: Optional[str] = None) -> None:
        self.source = source
        self.path = path
        self.display_path = display_path if display_path is not None else path
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self._annotate_parents()
        self.repro_relpath = self._repro_relpath(path)
        (self.line_suppressions,
         self.file_suppressions) = self._parse_suppressions()

    # ------------------------------------------------------------- factories
    @classmethod
    def from_path(cls, path: Path, display_path: Optional[str] = None
                  ) -> "ModuleUnderLint":
        return cls(path.read_text(encoding="utf-8"), str(path), display_path)

    # -------------------------------------------------------------- helpers
    def _annotate_parents(self) -> None:
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                child._reprolint_parent = parent  # type: ignore[attr-defined]

    @staticmethod
    def _repro_relpath(path: str) -> Optional[str]:
        parts = Path(path).parts
        for index in range(len(parts) - 1, -1, -1):
            if parts[index] == "repro":
                return "/".join(parts[index + 1:])
        return None

    def _parse_suppressions(self) -> Tuple[Dict[int, Set[str]], Set[str]]:
        per_line: Dict[int, Set[str]] = {}
        per_file: Set[str] = set()
        for number, text in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if not match:
                continue
            ids = {part.strip() for part in match.group("ids").split(",")
                   if part.strip()}
            if match.group("file"):
                per_file |= ids
            else:
                per_line.setdefault(number, set()).update(ids)
        return per_line, per_file

    def suppressed(self, violation: Violation) -> bool:
        if ("all" in self.file_suppressions
                or violation.rule_id in self.file_suppressions):
            return True
        ids = self.line_suppressions.get(violation.line)
        return bool(ids) and ("all" in ids or violation.rule_id in ids)

    # ------------------------------------------------------------ AST utils
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return getattr(node, "_reprolint_parent", None)

    def qualname(self, node: ast.AST) -> str:
        names: List[str] = []
        current: Optional[ast.AST] = node
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.ClassDef)):
                names.append(current.name)
            current = self.parent(current)
        return ".".join(reversed(names)) if names else "<module>"

    def enclosing_function(self, node: ast.AST
                           ) -> Optional[ast.FunctionDef]:
        current = self.parent(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current  # type: ignore[return-value]
            current = self.parent(current)
        return None

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        current = self.parent(node)
        while current is not None:
            if isinstance(current, ast.ClassDef):
                return current
            current = self.parent(current)
        return None

    def class_defs(self) -> Iterator[ast.ClassDef]:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ClassDef):
                yield node


# Generic AST inspection helpers shared by the bundled rules. -----------------

def receiver_root(node: ast.AST) -> Optional[str]:
    """The base name of an attribute/subscript/call chain (``self`` in
    ``self.channels[i].source_queue.push``), or None."""
    current = node
    while True:
        if isinstance(current, ast.Attribute):
            current = current.value
        elif isinstance(current, ast.Subscript):
            current = current.value
        elif isinstance(current, ast.Call):
            current = current.func
        elif isinstance(current, ast.Name):
            return current.id
        else:
            return None


def call_name(call: ast.Call) -> Optional[str]:
    """Terminal name of the called object (``push`` in ``q.push(w)``)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def terminal_name(node: ast.AST) -> Optional[str]:
    """Last identifier of a Name/Attribute/Subscript target."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        return terminal_name(node.value)
    return None


def identifiers_in(node: ast.AST) -> Iterator[str]:
    """Every Name id and Attribute attr appearing inside ``node``."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id
        elif isinstance(sub, ast.Attribute):
            yield sub.attr


def class_methods(class_node: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    methods: Dict[str, ast.FunctionDef] = {}
    for item in class_node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods[item.name] = item  # type: ignore[assignment]
    return methods


def tick_reachable_methods(class_node: ast.ClassDef,
                           roots: Sequence[str] = ("tick", "post_tick"),
                           ) -> Dict[str, ast.FunctionDef]:
    """Methods reachable from the per-cycle roots through ``self.X()`` calls.

    The per-class closure over direct ``self`` method calls: the hot-path
    authoring rules apply to everything a ``tick()``/``post_tick()`` body
    can run every cycle, not just the literal tick body.  Cross-class calls
    (e.g. into a queue object) are outside the closure — the queue's own
    module carries the rules for those.
    """
    methods = class_methods(class_node)
    edges: Dict[str, Set[str]] = {}
    for name, method in methods.items():
        called: Set[str] = set()
        for node in ast.walk(method):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"
                    and node.func.attr in methods):
                called.add(node.func.attr)
        edges[name] = called
    reachable: Set[str] = set()
    frontier = [root for root in roots if root in methods]
    while frontier:
        name = frontier.pop()
        if name in reachable:
            continue
        reachable.add(name)
        frontier.extend(edges.get(name, ()))
    return {name: methods[name] for name in reachable}


def defines_method(class_node: ast.ClassDef, name: str) -> bool:
    return name in class_methods(class_node)


# --------------------------------------------------------------------------
# Engine
# --------------------------------------------------------------------------

@dataclass
class LintReport:
    """The outcome of one lint run."""

    violations: List[Violation] = field(default_factory=list)
    files_checked: int = 0
    inline_suppressed: int = 0
    baseline_suppressed: int = 0
    rules_run: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule_id] = counts.get(violation.rule_id, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "rules_run": list(self.rules_run),
            "inline_suppressed": self.inline_suppressed,
            "baseline_suppressed": self.baseline_suppressed,
            "counts_by_rule": self.counts_by_rule(),
            "violations": [v.to_dict() for v in self.violations],
        }


class LintEngine:
    """Runs a rule set over modules, applying suppressions and a baseline."""

    def __init__(self, select: Optional[Iterable[str]] = None,
                 baseline: Optional["Baseline"] = None) -> None:
        rules = all_rules()
        if select is not None:
            wanted = list(select)
            unknown = [rule_id for rule_id in wanted if rule_id not in rules]
            if unknown:
                raise LintError(
                    f"unknown rule id(s) {unknown}; known: {sorted(rules)}")
            rules = {rule_id: rules[rule_id] for rule_id in wanted}
        self.rules = rules
        self.baseline = baseline

    # ---------------------------------------------------------------- files
    @staticmethod
    def collect_files(paths: Sequence[str]) -> List[Path]:
        files: List[Path] = []
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                files.extend(sorted(
                    candidate for candidate in path.rglob("*.py")
                    if "__pycache__" not in candidate.parts))
            elif path.is_file():
                files.append(path)
            else:
                raise LintError(f"no such file or directory: {raw}")
        return files

    # ----------------------------------------------------------------- runs
    def run(self, paths: Sequence[str]) -> LintReport:
        report = LintReport(rules_run=sorted(self.rules))
        raw: List[Violation] = []
        for path in self.collect_files(paths):
            display = self._display_path(path)
            try:
                module = ModuleUnderLint.from_path(path, display_path=display)
            except SyntaxError as exc:
                raw.append(Violation(
                    rule_id="parse-error", path=display,
                    line=exc.lineno or 1, col=exc.offset or 0,
                    message=f"could not parse module: {exc.msg}"))
                report.files_checked += 1
                continue
            report.files_checked += 1
            for rule in self.rules.values():
                if not rule.applies(module):
                    continue
                for violation in rule.check(module):
                    if module.suppressed(violation):
                        report.inline_suppressed += 1
                    else:
                        raw.append(violation)
        if self.baseline is not None:
            raw, matched = self.baseline.filter(raw)
            report.baseline_suppressed = matched
        report.violations = sorted(raw, key=Violation.sort_key)
        return report

    def run_source(self, source: str, path: str = "<snippet>") -> LintReport:
        """Lint an in-memory snippet (fixture tests, gate demonstrations)."""
        report = LintReport(rules_run=sorted(self.rules), files_checked=1)
        module = ModuleUnderLint(source, path)
        raw: List[Violation] = []
        for rule in self.rules.values():
            if not rule.applies(module):
                continue
            for violation in rule.check(module):
                if module.suppressed(violation):
                    report.inline_suppressed += 1
                else:
                    raw.append(violation)
        if self.baseline is not None:
            raw, matched = self.baseline.filter(raw)
            report.baseline_suppressed = matched
        report.violations = sorted(raw, key=Violation.sort_key)
        return report

    @staticmethod
    def _display_path(path: Path) -> str:
        try:
            return path.resolve().relative_to(Path.cwd()).as_posix()
        except ValueError:
            return path.as_posix()


def lint_paths(paths: Sequence[str], select: Optional[Iterable[str]] = None,
               baseline: Optional["Baseline"] = None) -> LintReport:
    """Convenience wrapper: lint files/directories with the full rule set."""
    return LintEngine(select=select, baseline=baseline).run(paths)


def lint_source(source: str, select: Optional[Iterable[str]] = None,
                path: str = "<snippet>") -> LintReport:
    """Convenience wrapper: lint one in-memory snippet."""
    return LintEngine(select=select).run_source(source, path=path)
