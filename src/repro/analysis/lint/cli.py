"""Command-line entry point: ``python -m repro.analysis.lint``.

Exit codes: 0 clean, 1 violations found, 2 usage/internal error.

The baseline at ``reprolint_baseline.json`` (repo root) is picked up
automatically when present in the current directory; pass ``--baseline``
to point elsewhere or ``--no-baseline`` to see the raw findings.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.lint.baseline import Baseline
from repro.analysis.lint.framework import LintEngine, LintError, all_rules
from repro.analysis.lint.reporters import render

__all__ = ["main", "build_parser"]

DEFAULT_BASELINE = "reprolint_baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="reprolint: static contract checker for the repro tree "
                    "(wake protocol, determinism, hot path, counters)")
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)")
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help=f"reviewed-exception baseline (default: ./{DEFAULT_BASELINE} "
             "when present)")
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline; report raw findings")
    parser.add_argument(
        "--write-baseline", metavar="FILE", default=None,
        help="write the surviving violations out as a new baseline and "
             "exit 0")
    parser.add_argument(
        "--select", metavar="RULE-ID", action="append", default=None,
        help="run only these rule ids (repeatable)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit")
    return parser


def _resolve_baseline(args: argparse.Namespace) -> Optional[Baseline]:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return Baseline.load(Path(args.baseline))
    default = Path(DEFAULT_BASELINE)
    if default.is_file():
        return Baseline.load(default)
    return None


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.list_rules:
            for rule_id, rule in all_rules().items():
                print(f"{rule_id:24s} {rule.title}")
                if rule.contract:
                    print(f"{'':24s}   contract: {rule.contract}")
            return 0
        baseline = _resolve_baseline(args)
        engine = LintEngine(select=args.select, baseline=baseline)
        report = engine.run(args.paths)
        if args.write_baseline is not None:
            new_baseline = Baseline.from_violations(
                report.violations,
                reason="TODO: review and state why the contract holds")
            new_baseline.save(Path(args.write_baseline))
            print(f"wrote {len(new_baseline.entries)} baseline entrie(s) "
                  f"to {args.write_baseline}")
            return 0
        print(render(report, args.format))
        return 0 if report.ok else 1
    except LintError as exc:
        print(f"reprolint: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
