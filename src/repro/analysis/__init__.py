"""Analytic service guarantees and their verification against simulation.

Section 2 of the paper states the guarantees a GT connection receives:

* throughput: ``N`` reserved slots give ``N * B_i`` bandwidth;
* latency: bounded by the waiting time until the reserved slot arrives plus
  the number of routers the data passes;
* jitter: bounded by the maximum distance between two slot reservations.

:mod:`repro.analysis.guarantees` computes these bounds from a slot pattern
and a path length; :mod:`repro.analysis.verification` checks measured
simulation results against them (experiments E4/E5).
"""

from repro.analysis.deadlock import (
    DeadlockError,
    DeadlockReport,
    DeadlockWarning,
    analyze_noc_routes,
    analyze_route_links,
    analyze_sequences,
    analyze_strategy,
    assert_deadlock_free,
    channel_dependency_graph,
    find_cycle,
)
from repro.analysis.guarantees import (
    GTGuarantees,
    jitter_bound_slots,
    latency_bound_flit_cycles,
    slot_waiting_bound,
    throughput_bound_words_per_flit_cycle,
)
from repro.analysis.verification import (
    GuaranteeCheck,
    VerificationReport,
    verify_latency,
    verify_throughput,
)

__all__ = [
    "DeadlockError",
    "DeadlockReport",
    "DeadlockWarning",
    "GTGuarantees",
    "GuaranteeCheck",
    "VerificationReport",
    "analyze_noc_routes",
    "analyze_route_links",
    "analyze_sequences",
    "analyze_strategy",
    "assert_deadlock_free",
    "channel_dependency_graph",
    "find_cycle",
    "jitter_bound_slots",
    "latency_bound_flit_cycles",
    "slot_waiting_bound",
    "throughput_bound_words_per_flit_cycle",
    "verify_latency",
    "verify_throughput",
]
