"""Analytic throughput, latency and jitter bounds for GT channels.

All bounds are expressed at flit granularity (one TDM slot = one flit of
three 32-bit words = three 500 MHz link cycles) and can be converted to
Gbit/s or nanoseconds through :class:`repro.design.timing.TimingModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.network.packet import FLIT_WORDS, NETWORK_FREQUENCY_MHZ, WORD_BITS


class GuaranteeError(ValueError):
    """Raised for malformed slot patterns."""


def _check_pattern(slot_pattern: Sequence[int], num_slots: int) -> List[int]:
    slots = sorted(set(slot_pattern))
    if not slots:
        raise GuaranteeError("a GT channel needs at least one reserved slot")
    if slots[0] < 0 or slots[-1] >= num_slots:
        raise GuaranteeError(f"slot pattern {slots} outside table of {num_slots}")
    return slots


def throughput_bound_words_per_flit_cycle(slots_reserved: int, num_slots: int,
                                          payload_only: bool = True,
                                          words_per_slot: int = FLIT_WORDS
                                          ) -> float:
    """Guaranteed words per flit cycle for ``slots_reserved`` of ``num_slots``.

    "Throughput guarantees are given by the number of slots reserved for a
    connection.  Slots correspond to a given bandwidth B_i, and therefore
    reserving N slots for a connection results in a total bandwidth of
    N * B_i." (Section 2)

    With ``payload_only`` the one-word packet header of each (worst-case,
    non-consecutive) slot is subtracted.
    """
    if not 0 < slots_reserved <= num_slots:
        raise GuaranteeError("slots_reserved must be in (0, num_slots]")
    per_slot = words_per_slot - (1 if payload_only else 0)
    return slots_reserved * per_slot / num_slots


def throughput_bound_gbit_s(slots_reserved: int, num_slots: int,
                            payload_only: bool = True) -> float:
    """The same bound in Gbit/s at the prototype's 500 MHz / 32-bit links."""
    words_per_flit_cycle = throughput_bound_words_per_flit_cycle(
        slots_reserved, num_slots, payload_only)
    flit_cycle_ns = FLIT_WORDS * 1e3 / NETWORK_FREQUENCY_MHZ
    return words_per_flit_cycle * WORD_BITS / flit_cycle_ns


def slot_waiting_bound(slot_pattern: Sequence[int], num_slots: int) -> int:
    """Worst-case wait (in slots) until the next reserved slot arrives."""
    slots = _check_pattern(slot_pattern, num_slots)
    if len(slots) == num_slots:
        return 0
    worst = 0
    for index, slot in enumerate(slots):
        nxt = slots[(index + 1) % len(slots)]
        gap = (nxt - slot) % num_slots
        if gap == 0:
            gap = num_slots
        worst = max(worst, gap - 1)
    return worst


def jitter_bound_slots(slot_pattern: Sequence[int], num_slots: int) -> int:
    """Maximum distance between two consecutive slot reservations (Section 2)."""
    slots = _check_pattern(slot_pattern, num_slots)
    if len(slots) == 1:
        return num_slots
    worst = 0
    for index, slot in enumerate(slots):
        nxt = slots[(index + 1) % len(slots)]
        gap = (nxt - slot) % num_slots
        if gap == 0:
            gap = num_slots
        worst = max(worst, gap)
    return worst


def latency_bound_flit_cycles(slot_pattern: Sequence[int], num_slots: int,
                              hops: int, packet_flits: int = 1) -> int:
    """Worst-case network latency of a GT packet, in flit cycles.

    "The latency bound is given by the waiting time until the reserved slot
    arrives and the number of routers data passes to reach its destination."
    (Section 2)

    The bound counts: the worst-case wait for the channel's next reserved
    slot, one cycle on the NI-router link, one cycle per router traversed,
    and the remaining flits of the packet (which occupy consecutive reserved
    slots).
    """
    if hops < 0:
        raise GuaranteeError("negative hop count")
    if packet_flits <= 0:
        raise GuaranteeError("a packet has at least one flit")
    wait = slot_waiting_bound(slot_pattern, num_slots)
    return wait + 1 + hops + (packet_flits - 1)


@dataclass
class GTGuarantees:
    """Bundled bounds for one GT channel configuration."""

    slot_pattern: List[int]
    num_slots: int
    hops: int
    packet_flits: int = 1

    def __post_init__(self) -> None:
        self.slot_pattern = _check_pattern(self.slot_pattern, self.num_slots)

    @property
    def slots_reserved(self) -> int:
        return len(self.slot_pattern)

    @property
    def throughput_words_per_flit_cycle(self) -> float:
        return throughput_bound_words_per_flit_cycle(self.slots_reserved,
                                                     self.num_slots)

    @property
    def raw_throughput_words_per_flit_cycle(self) -> float:
        return throughput_bound_words_per_flit_cycle(self.slots_reserved,
                                                     self.num_slots,
                                                     payload_only=False)

    @property
    def throughput_gbit_s(self) -> float:
        return throughput_bound_gbit_s(self.slots_reserved, self.num_slots)

    @property
    def latency_bound(self) -> int:
        return latency_bound_flit_cycles(self.slot_pattern, self.num_slots,
                                         self.hops, self.packet_flits)

    @property
    def jitter_bound(self) -> int:
        return jitter_bound_slots(self.slot_pattern, self.num_slots)

    def summary(self) -> dict:
        return {
            "slots": self.slots_reserved,
            "num_slots": self.num_slots,
            "hops": self.hops,
            "throughput_words_per_flit_cycle": self.throughput_words_per_flit_cycle,
            "throughput_gbit_s": self.throughput_gbit_s,
            "latency_bound_flit_cycles": self.latency_bound,
            "jitter_bound_slots": self.jitter_bound,
        }
