"""Channel-dependency-graph deadlock analysis for best-effort routes.

Best-effort traffic is wormhole-routed with link-level backpressure
(Section 4): a packet holds its current channel while waiting for the next
one.  The classic Dally/Seitz result says such a network is deadlock-free
iff the *channel dependency graph* (CDG) is acyclic: one node per
directed channel, and an edge from channel ``u -> v`` to ``v -> w``
whenever some route enters ``v`` from ``u`` and leaves toward ``w``.

Guaranteed-throughput traffic needs no such check — GT flits move on
reserved TDM slots and never block — so the analysis here covers the BE
routes only: XY routing on a mesh is provably acyclic, shortest-path on a
ring or torus is not (the routes chase each other around the cycle), and
:class:`~repro.network.routing.TorusDimensionOrdered` is acyclic again by
restricting wraparound links to single-hop dimension traversals.

Entry points, lowest to highest level:

* :func:`channel_dependency_graph` — CDG from named link-id routes;
* :func:`analyze_route_links` / :func:`analyze_sequences` — build the CDG
  and search it for a cycle, returning a :class:`DeadlockReport`;
* :func:`analyze_strategy` — all-pairs (or selected-pairs) analysis of a
  routing strategy on a topology, *before* any system is built;
* :func:`analyze_noc_routes` — analysis of concrete NI-to-NI routes on a
  built :class:`~repro.network.noc.NoC` (what
  :meth:`~repro.api.builder.SystemBuilder.build` runs over the declared
  best-effort connections);
* :func:`assert_deadlock_free` — raise :class:`DeadlockError` on a cycle.

The channel identifiers reuse the NoC's link-id convention
(``("router:(0, 0)", "router:(0, 1)")``), so a reported cycle reads
directly against :attr:`NoC.links` and the slot-allocation tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.network.noc import LinkId, NoC
from repro.network.routing import make_routing
from repro.network.topology import Topology


class DeadlockError(ValueError):
    """Raised by :func:`assert_deadlock_free` when the CDG has a cycle."""


class DeadlockWarning(UserWarning):
    """Emitted by the builder when declared BE routes can deadlock."""


@dataclass
class DeadlockReport:
    """The outcome of a channel-dependency-graph analysis.

    ``cycle`` is ``None`` for a deadlock-free route set, otherwise one
    witness cycle as a list of channel (link-id) nodes in order.
    ``graph`` is the full CDG: nodes are channels, every edge carries a
    ``routes`` attribute naming the routes that induced it.
    """

    graph: nx.DiGraph
    cycle: Optional[List[LinkId]] = None
    num_routes: int = 0
    route_names: Tuple[str, ...] = ()
    strategy: str = ""

    @property
    def ok(self) -> bool:
        return self.cycle is None

    @property
    def num_channels(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def num_dependencies(self) -> int:
        return self.graph.number_of_edges()

    def cycle_routes(self) -> List[str]:
        """The route names participating in the witness cycle."""
        if self.cycle is None:
            return []
        names: List[str] = []
        cycle = self.cycle
        for a, b in zip(cycle, cycle[1:] + cycle[:1]):
            for name in self.graph.edges[a, b].get("routes", ()):
                if name not in names:
                    names.append(name)
        return names

    def describe(self) -> str:
        """A human-readable summary (used in warnings and errors)."""
        strategy = f" under {self.strategy} routing" if self.strategy else ""
        if self.ok:
            return (f"deadlock-free: {self.num_routes} BE routes{strategy}, "
                    f"{self.num_channels} channels, "
                    f"{self.num_dependencies} dependencies, no cycle")
        hops = " -> ".join(f"{a}=>{b}" for a, b in self.cycle)
        routes = ", ".join(self.cycle_routes()) or "<unnamed>"
        return (f"channel dependency cycle over {len(self.cycle)} channels"
                f"{strategy}: {hops} (induced by routes: {routes}); "
                "best-effort wormhole traffic on these routes can deadlock "
                "- use a dimension-ordered strategy, a TableRouting with "
                "acyclic paths, or make the connections guaranteed (GT)")


def channel_dependency_graph(
        named_links: Iterable[Tuple[str, Sequence[LinkId]]]) -> nx.DiGraph:
    """Build the CDG from ``(route name, [link ids in order])`` entries.

    Every link id becomes a channel node; consecutive links of one route
    become a dependency edge annotated with the route names inducing it.
    """
    graph = nx.DiGraph()
    for name, links in named_links:
        for link in links:
            if link not in graph:
                graph.add_node(link)
        for held, wanted in zip(links, links[1:]):
            if graph.has_edge(held, wanted):
                graph.edges[held, wanted]["routes"].append(name)
            else:
                graph.add_edge(held, wanted, routes=[name])
    return graph


def find_cycle(graph: nx.DiGraph) -> Optional[List[LinkId]]:
    """One witness cycle of the CDG as a node list, or ``None``."""
    try:
        edges = nx.find_cycle(graph, orientation="original")
    except nx.NetworkXNoCycle:
        return None
    return [edge[0] for edge in edges]


def analyze_route_links(named_links: Iterable[Tuple[str, Sequence[LinkId]]],
                        strategy: str = "") -> DeadlockReport:
    """Analyze routes given as ordered link-id lists (the NoC convention)."""
    named_links = [(name, list(links)) for name, links in named_links]
    graph = channel_dependency_graph(named_links)
    return DeadlockReport(graph=graph, cycle=find_cycle(graph),
                          num_routes=len(named_links),
                          route_names=tuple(name for name, _ in named_links),
                          strategy=strategy)


def _sequence_links(sequence: Sequence[Hashable]) -> List[LinkId]:
    return [(f"router:{a!r}", f"router:{b!r}")
            for a, b in zip(sequence, sequence[1:])]


def analyze_sequences(named_sequences: Iterable[Tuple[str, Sequence[Hashable]]],
                      strategy: str = "") -> DeadlockReport:
    """Analyze routes given as router sequences (no NI endpoints).

    NI injection/ejection channels are private to one route — they can
    never participate in a cycle — so analyzing the router-to-router
    segments alone reaches the same verdict.
    """
    return analyze_route_links(
        ((name, _sequence_links(sequence))
         for name, sequence in named_sequences),
        strategy=strategy)


def analyze_strategy(topology: Topology, routing, pairs: Optional[
        Iterable[Tuple[Hashable, Hashable]]] = None) -> DeadlockReport:
    """Analyze a routing strategy over router pairs of a topology.

    ``routing`` is a strategy name or instance; ``pairs`` defaults to all
    ordered router pairs — the worst case, answering "is this strategy safe
    on this topology no matter what gets connected?".
    """
    strategy = make_routing(routing)
    routers = topology.routers
    if pairs is None:
        pairs = [(a, b) for a in routers for b in routers if a != b]
    named = [(f"{src!r}->{dst!r}",
              strategy.router_sequence(topology, src, dst))
             for src, dst in pairs]
    return analyze_sequences(named, strategy=strategy.name)


def analyze_noc_routes(noc: NoC,
                       routes: Iterable[Tuple[str, str, str, Optional[object]]]
                       ) -> DeadlockReport:
    """Analyze concrete NI-to-NI routes on a built NoC.

    ``routes`` entries are ``(name, src_ni, dst_ni, routing)`` where
    ``routing`` is ``None`` for the NoC default or a per-connection
    override (name or :class:`RoutingStrategy`).  Includes the NI
    attachment links so the report's channels line up with
    :meth:`NoC.route_link_ids`.
    """
    named: List[Tuple[str, List[LinkId]]] = []
    strategies_used: List[str] = []
    for name, src, dst, routing in routes:
        strategy = noc.routing if routing is None else make_routing(routing)
        strategies_used.append(strategy.name)
        named.append((name, noc.route_link_ids(src, dst, routing=strategy)))
    # Label the report with the strategies that actually produced the
    # analyzed routes — a per-connection override, not the NoC default, is
    # what a cycle should be blamed on.
    label = ("/".join(sorted(set(strategies_used))) if strategies_used
             else noc.routing_algorithm)
    return analyze_route_links(named, strategy=label)


def assert_deadlock_free(report: DeadlockReport) -> DeadlockReport:
    """Raise :class:`DeadlockError` if the report found a cycle."""
    if not report.ok:
        raise DeadlockError(report.describe())
    return report
