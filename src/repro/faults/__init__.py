"""Runtime fault injection, fault-aware rerouting and graceful degradation.

The robustness layer on top of the Æthereal-style NI stack:

* :class:`FaultPlan` / :class:`FaultEvent` — declarative fault schedules
  (permanent ``link_down``, seeded transient drop windows, repairs);
* :class:`FaultInjector` — a clocked component replaying a plan at runtime
  (only instantiated when faults are declared: no-fault runs stay
  byte-identical);
* :class:`FaultAwareRouting` — a routing-registry wrapper that masks
  failed links and recomputes routes over the surviving graph;
* :class:`FaultManager` — applies faults to a built system: fails links,
  rewrites source-route registers, re-places GT slot reservations (or
  demotes to best-effort), refunds flow control for dropped packets,
  re-runs the deadlock analysis, and produces :class:`HealthReport`.

End-to-end retry lives in the master shell
(:class:`repro.core.shells.master.MasterShell`, ``timeout_cycles=...``);
the builder front door is ``SystemBuilder.inject_fault(...)`` and
``System.health_report()``.
"""

from repro.faults.injector import FaultInjector
from repro.faults.manager import FaultManager, HealthReport, ManagedChannel
from repro.faults.plan import FaultError, FaultEvent, FaultPlan
from repro.faults.routing import FaultAwareRouting

__all__ = [
    "FaultAwareRouting",
    "FaultError",
    "FaultEvent",
    "FaultInjector",
    "FaultManager",
    "FaultPlan",
    "HealthReport",
    "ManagedChannel",
]
