"""Fault plans: what goes wrong, where, and when.

A :class:`FaultPlan` is a declarative list of :class:`FaultEvent` records —
permanent link failures, repairs, and seeded transient drop windows — keyed
by flit-clock cycle.  The :class:`~repro.faults.injector.FaultInjector`
replays the plan at runtime; the
:class:`~repro.faults.manager.FaultManager` applies each event (failing
links, rerouting, re-placing GT slots).

Endpoints are given as they appear in the topology: router nodes (e.g.
``(0, 0)``) or NI attachment names (e.g. ``"m0"``).  A ``link_down`` or
``transient`` event affects *both* directions between its endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, List, Optional

#: Event kinds understood by the fault manager.
KIND_LINK_DOWN = "link_down"
KIND_REPAIR = "repair"
KIND_LOSSY_START = "lossy_start"
KIND_LOSSY_END = "lossy_end"
KINDS = (KIND_LINK_DOWN, KIND_REPAIR, KIND_LOSSY_START, KIND_LOSSY_END)


class FaultError(RuntimeError):
    """Raised for malformed fault plans or unapplicable fault events."""


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault, keyed by flit-clock cycle."""

    cycle: int
    kind: str
    a: Hashable
    b: Hashable
    drop_probability: float = 1.0
    seed: int = 1

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise FaultError(f"fault event cycle {self.cycle} is negative")
        if self.kind not in KINDS:
            raise FaultError(
                f"unknown fault kind {self.kind!r} (one of {', '.join(KINDS)})")
        if not 0.0 <= self.drop_probability <= 1.0:
            raise FaultError(
                f"drop probability {self.drop_probability} outside [0, 1]")


class FaultPlan:
    """An ordered collection of fault events (builder-style)."""

    def __init__(self, events: Optional[Iterable[FaultEvent]] = None) -> None:
        self.events: List[FaultEvent] = list(events or [])

    # ------------------------------------------------------------- building
    def link_down(self, cycle: int, a: Hashable, b: Hashable) -> "FaultPlan":
        """Permanently fail both directions between ``a`` and ``b`` at
        ``cycle`` (flit clock)."""
        self.events.append(FaultEvent(cycle=cycle, kind=KIND_LINK_DOWN,
                                      a=a, b=b))
        return self

    def repair(self, cycle: int, a: Hashable, b: Hashable) -> "FaultPlan":
        """Bring both directions between ``a`` and ``b`` back up."""
        self.events.append(FaultEvent(cycle=cycle, kind=KIND_REPAIR,
                                      a=a, b=b))
        return self

    def transient(self, start_cycle: int, end_cycle: int,
                  a: Hashable, b: Hashable,
                  drop_probability: float = 0.5,
                  seed: int = 1) -> "FaultPlan":
        """Open a seeded drop window on both directions between ``a`` and
        ``b``: packets offered in ``[start_cycle, end_cycle)`` are dropped
        with ``drop_probability`` (decided per packet at its head flit)."""
        if end_cycle <= start_cycle:
            raise FaultError(
                f"transient window [{start_cycle}, {end_cycle}) is empty")
        self.events.append(FaultEvent(cycle=start_cycle, kind=KIND_LOSSY_START,
                                      a=a, b=b,
                                      drop_probability=drop_probability,
                                      seed=seed))
        self.events.append(FaultEvent(cycle=end_cycle, kind=KIND_LOSSY_END,
                                      a=a, b=b))
        return self

    # ------------------------------------------------------------- querying
    def sorted_events(self) -> List[FaultEvent]:
        """Events in application order (stable by cycle)."""
        return sorted(self.events, key=lambda event: event.cycle)

    def merge(self, other: "FaultPlan") -> "FaultPlan":
        self.events.extend(other.events)
        return self

    def __bool__(self) -> bool:
        return bool(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"FaultPlan({len(self.events)} events)"
