"""Runtime fault handling: fail links, reroute, re-place GT, report.

The :class:`FaultManager` owns the runtime response to faults on a built
system:

* **link_down** — both directions between two endpoints are failed
  (:meth:`~repro.network.link.Link.fail`), every channel whose current
  route crosses a failed link is rerouted with
  :class:`~repro.faults.routing.FaultAwareRouting` (a ``REG_PATH``
  register rewrite at the source NI, exactly how a runtime configuration
  manager would do it), GT channels get their TDM slots released and
  re-placed on the surviving path — or are *demoted to best-effort* when
  the new path has no free slots — and the rerouted BE route set is re-run
  through the Dally/Seitz deadlock analysis (``warn``/``error``, the same
  knob as the build-time gate).
* **repair** — links come back up; existing detours are kept (repaired
  capacity serves future reroutes), the repair is recorded.
* **transient windows** — links drop packets with a seeded probability;
  the end-to-end retry layer at the master shells absorbs the losses.

Faults *poison* packets instead of deleting words from the wire (see the
fault-model note in :mod:`repro.network.link`): flits keep traversing, the
destination kernel delivers the words flagged as corrupt, and the message
layer CRC-discards whatever they touch — so end-to-end flow control stays
exactly consistent and a drop can never wedge a channel.  Loss is visible
only as missing responses, which the retry layer recovers.

Connections that cannot be re-placed are marked *degraded* with a reason,
never silently broken; :meth:`FaultManager.health_report` enumerates the
full picture.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.analysis.deadlock import (
    DeadlockReport,
    DeadlockWarning,
    analyze_route_links,
)
from repro.config.slot_allocation import SlotRequest
from repro.core.registers import (
    REG_CTRL,
    REG_PATH,
    RegisterError,
    channel_register_address,
    encode_ctrl,
    encode_path,
    slot_register_address,
)
from repro.faults.plan import (
    FaultError,
    FaultEvent,
    KIND_LINK_DOWN,
    KIND_LOSSY_END,
    KIND_LOSSY_START,
    KIND_REPAIR,
)
from repro.faults.routing import FaultAwareRouting
from repro.network.noc import LinkId, NoC
from repro.network.routing import RouteError, RoutingStrategy


@dataclass
class ManagedChannel:
    """One unidirectional channel the manager tracks and can reroute."""

    connection: str
    label: str                      # e.g. "c:request[0]"
    src_ni: str
    src_channel: int
    dst_ni: str
    dst_channel: int
    gt: bool
    slots_required: int
    routing_spec: object            # connection's routing override (or None)
    links: List[LinkId] = field(default_factory=list)
    declared_gt: bool = False
    #: Degradation reason; a degraded channel may still flow (a GT channel
    #: demoted to BE does), unless ``dead`` is also set.
    degraded: Optional[str] = None
    #: True when no fault-free path exists at all.
    dead: bool = False
    rerouted: int = 0


@dataclass
class HealthReport:
    """Degradation snapshot of a (possibly faulted) system."""

    failed_links: List[LinkId]
    repaired_links: List[LinkId]
    rerouted: Dict[str, int]            # channel label -> reroute count
    degraded: Dict[str, str]            # channel label -> reason
    words_dropped: int
    packets_dropped: int
    retries: int
    timeouts: int
    duplicates_suppressed: int
    gt_intact: Dict[str, bool]          # GT connection name -> guarantees hold
    deadlock_report: Optional[DeadlockReport]
    #: Per-link bandwidth snapshot: "src->dst" -> {flits_carried,
    #: rate_per_cycle (sliding window), window_cycles, total}.
    links: Dict[str, dict] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.links is None:
            self.links = {}

    def __getitem__(self, key: str):
        """Mapping-style access (``health_report()["links"]``)."""
        try:
            return getattr(self, key)
        except AttributeError as exc:
            raise KeyError(key) from exc

    @property
    def healthy(self) -> bool:
        return (not self.failed_links and not self.degraded
                and self.packets_dropped == 0)

    def describe(self) -> str:
        lines = [f"failed links: {len(self.failed_links)}, "
                 f"repaired: {len(self.repaired_links)}"]
        for link_id in self.failed_links:
            lines.append(f"  down: {link_id[0]} -> {link_id[1]}")
        if self.rerouted:
            lines.append("rerouted channels:")
            for label, count in sorted(self.rerouted.items()):
                lines.append(f"  {label} (x{count})")
        if self.degraded:
            lines.append("degraded channels:")
            for label, reason in sorted(self.degraded.items()):
                lines.append(f"  {label}: {reason}")
        lines.append(f"drops: {self.packets_dropped} packets "
                     f"({self.words_dropped} words); retries: {self.retries}, "
                     f"timeouts: {self.timeouts}, duplicates suppressed: "
                     f"{self.duplicates_suppressed}")
        for name, intact in sorted(self.gt_intact.items()):
            lines.append(f"GT {name}: "
                         + ("guarantees hold" if intact else "DEGRADED"))
        if self.deadlock_report is not None:
            lines.append("reroute deadlock check: "
                         + self.deadlock_report.describe())
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "failed_links": [list(l) for l in self.failed_links],
            "repaired_links": [list(l) for l in self.repaired_links],
            "rerouted": dict(self.rerouted),
            "degraded": dict(self.degraded),
            "words_dropped": self.words_dropped,
            "packets_dropped": self.packets_dropped,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "duplicates_suppressed": self.duplicates_suppressed,
            "gt_intact": dict(self.gt_intact),
            "deadlock_free": (self.deadlock_report.ok
                              if self.deadlock_report is not None else True),
            "links": {name: dict(info) for name, info in self.links.items()},
        }


class FaultManager:
    """Applies fault events to a built system and tracks the consequences."""

    def __init__(self, noc: NoC, kernels: Dict[str, object],
                 allocator, connections: Dict[str, object],
                 masters: Optional[Dict[str, object]] = None,
                 deadlock_check: str = "warn") -> None:
        if deadlock_check not in ("warn", "error", "off"):
            raise FaultError(
                f"deadlock_check must be warn/error/off, got {deadlock_check!r}")
        self.noc = noc
        self.kernels = kernels
        self.allocator = allocator
        self.connections = connections
        self.masters = masters if masters is not None else {}
        self.deadlock_check = deadlock_check
        self.failed_link_ids: List[LinkId] = []
        self.repaired_link_ids: List[LinkId] = []
        self.last_deadlock_report: Optional[DeadlockReport] = None
        #: Directed router-node edges currently failed; shared by reference
        #: with every FaultAwareRouting instance the manager hands out.
        self.failed_edges: set = set()
        self._routings: Dict[object, FaultAwareRouting] = {}
        self.channels: List[ManagedChannel] = []
        #: Fault-event listeners ``(cycle, kind, details) -> None``; the
        #: observability plane's fault probe subscribes here so captures
        #: land as the faults apply (repro.obs capture-on-fault).
        self._listeners: List = []
        self._capture_routes()

    # ------------------------------------------------------------ listeners
    def add_listener(self, listener) -> None:
        """Subscribe to applied fault events (probe hook)."""
        self._listeners.append(listener)

    def _emit(self, kind: str, **details: object) -> None:
        if not self._listeners:
            return
        cycle = self.noc.flit_clock.cycle
        for listener in self._listeners:
            listener(cycle, kind, details)

    # ------------------------------------------------------------ bootstrap
    def _capture_routes(self) -> None:
        """Record every open channel's current route as link ids."""
        for name, info in self.connections.items():
            spec = info.spec
            for index, pair in enumerate(spec.pairs):
                suffix = f"[{index}]" if len(spec.pairs) > 1 else ""
                self.channels.append(ManagedChannel(
                    connection=name,
                    label=f"{name}:request{suffix}",
                    src_ni=pair.master.ni, src_channel=pair.master.channel,
                    dst_ni=pair.slave.ni, dst_channel=pair.slave.channel,
                    gt=pair.request_gt, declared_gt=pair.request_gt,
                    slots_required=pair.request_slots,
                    routing_spec=spec.routing,
                    links=self.noc.route_link_ids(pair.master.ni, pair.slave.ni,
                                                  routing=spec.routing)))
                self.channels.append(ManagedChannel(
                    connection=name,
                    label=f"{name}:response{suffix}",
                    src_ni=pair.slave.ni, src_channel=pair.slave.channel,
                    dst_ni=pair.master.ni, dst_channel=pair.master.channel,
                    gt=pair.response_gt, declared_gt=pair.response_gt,
                    slots_required=pair.response_slots,
                    routing_spec=spec.routing,
                    links=self.noc.route_link_ids(pair.slave.ni, pair.master.ni,
                                                  routing=spec.routing)))

    def _fault_routing(self, base_spec: object) -> FaultAwareRouting:
        key = base_spec if isinstance(base_spec, str) or base_spec is None \
            else id(base_spec)
        routing = self._routings.get(key)
        if routing is None:
            base = self.noc.routing if base_spec is None else base_spec
            routing = FaultAwareRouting(base=base,
                                        failed_edges=self.failed_edges)
            self._routings[key] = routing
        return routing

    def _invalidate_routings(self) -> None:
        for routing in self._routings.values():
            routing.invalidate()

    # ------------------------------------------------------------- applying
    def apply(self, event: FaultEvent) -> None:
        if event.kind == KIND_LINK_DOWN:
            self.link_down(event.a, event.b)
        elif event.kind == KIND_REPAIR:
            self.repair(event.a, event.b)
        elif event.kind == KIND_LOSSY_START:
            self.start_transient(event.a, event.b, event.drop_probability,
                                 event.seed)
        elif event.kind == KIND_LOSSY_END:
            self.end_transient(event.a, event.b)
        else:  # pragma: no cover - plan validation rejects unknown kinds
            raise FaultError(f"unknown fault kind {event.kind!r}")

    def link_down(self, a: Hashable, b: Hashable) -> None:
        """Permanently fail both directions between two endpoints, then
        reroute every affected channel and re-check deadlock freedom."""
        link_ids = self._link_ids_between(a, b)
        for link_id in link_ids:
            if link_id not in self.noc.failed_links:
                self.noc.fail_link(link_id)
                self.failed_link_ids.append(link_id)
            endpoints = self.noc.router_link_endpoints.get(link_id)
            if endpoints is not None:
                self.failed_edges.add(endpoints)
        self._invalidate_routings()
        self._reroute_affected()
        self._reanalyze()
        self._emit("link_down", a=str(a), b=str(b),
                   failed_links=len(self.failed_link_ids))

    def repair(self, a: Hashable, b: Hashable) -> None:
        """Bring both directions back up.  Existing detours are kept — the
        repaired capacity serves future reroutes."""
        for link_id in self._link_ids_between(a, b):
            if link_id in self.noc.failed_links:
                self.noc.repair_link(link_id)
                self.repaired_link_ids.append(link_id)
            endpoints = self.noc.router_link_endpoints.get(link_id)
            if endpoints is not None:
                self.failed_edges.discard(endpoints)
        self._invalidate_routings()
        self._emit("repair", a=str(a), b=str(b),
                   repaired_links=len(self.repaired_link_ids))

    def start_transient(self, a: Hashable, b: Hashable,
                        drop_probability: float, seed: int) -> None:
        for link_id in self._link_ids_between(a, b):
            rng = random.Random(f"{seed}:{link_id[0]}->{link_id[1]}")
            self.noc.links[link_id].set_lossy(drop_probability, rng)
        self._emit("transient_start", a=str(a), b=str(b),
                   drop_probability=drop_probability)

    def end_transient(self, a: Hashable, b: Hashable) -> None:
        for link_id in self._link_ids_between(a, b):
            self.noc.links[link_id].clear_lossy()
        self._emit("transient_end", a=str(a), b=str(b))

    # ------------------------------------------------------------ rerouting
    def _reroute_affected(self) -> None:
        failed = self.noc.failed_links
        for channel in self.channels:
            if channel.dead:
                continue
            if not any(link_id in failed for link_id in channel.links):
                continue
            self._reroute_channel(channel)

    def _reroute_channel(self, channel: ManagedChannel) -> None:
        routing = self._fault_routing(channel.routing_spec)
        try:
            new_links = self.noc.route_link_ids(
                channel.src_ni, channel.dst_ni, routing=routing)
            new_path = self.noc.route(
                channel.src_ni, channel.dst_ni, routing=routing)
            path_word = encode_path(new_path)
        except (RouteError, RegisterError) as exc:
            # No surviving path (or a detour too long for the path
            # register): the channel is degraded, not silently broken.
            if channel.gt:
                self._release_gt(channel)
                channel.gt = False
            channel.degraded = f"unreachable: {exc}"
            channel.dead = True
            return
        if channel.gt and not self._replace_gt(channel, new_links):
            # The surviving path has no compatible free slots: demote the
            # channel to best-effort — it keeps flowing, without guarantees.
            channel.gt = False
            channel.degraded = "GT slots not re-placeable; demoted to BE"
            kernel = self.kernels[channel.src_ni]
            kernel.write_register(
                channel_register_address(channel.src_channel, REG_CTRL),
                encode_ctrl(True, False))
        kernel = self.kernels[channel.src_ni]
        kernel.write_register(
            channel_register_address(channel.src_channel, REG_PATH),
            path_word)
        channel.links = new_links
        channel.rerouted += 1

    def _release_gt(self, channel: ManagedChannel) -> None:
        """Release a GT channel's slots (allocator + NI slot table)."""
        allocation = self.allocator.allocation_of(channel.src_ni,
                                                  channel.src_channel)
        old_slots = list(allocation.injection_slots) if allocation else []
        self.allocator.release(channel.src_ni, channel.src_channel)
        kernel = self.kernels[channel.src_ni]
        for slot in old_slots:
            kernel.write_register(slot_register_address(slot), 0)
        info = self.connections.get(channel.connection)
        if info is not None:
            info.slot_assignment.pop(
                (channel.src_ni, channel.src_channel), None)
        kernel.write_register(
            channel_register_address(channel.src_channel, REG_CTRL),
            encode_ctrl(True, False))

    def _replace_gt(self, channel: ManagedChannel,
                    new_links: List[LinkId]) -> bool:
        """Release the old slots and re-place the reservation on the new
        path.  Returns False when the new path cannot host the slots."""
        allocation = self.allocator.allocation_of(channel.src_ni,
                                                  channel.src_channel)
        old_slots = list(allocation.injection_slots) if allocation else []
        self.allocator.release(channel.src_ni, channel.src_channel)
        kernel = self.kernels[channel.src_ni]
        for slot in old_slots:
            kernel.write_register(slot_register_address(slot), 0)
        new_slots = self.allocator.try_allocate(SlotRequest(
            ni=channel.src_ni, channel=channel.src_channel,
            slots_required=channel.slots_required, link_ids=new_links))
        info = self.connections.get(channel.connection)
        if new_slots is None:
            if info is not None:
                info.slot_assignment.pop(
                    (channel.src_ni, channel.src_channel), None)
            return False
        for slot in new_slots:
            kernel.write_register(slot_register_address(slot),
                                  channel.src_channel + 1)
        if info is not None:
            info.slot_assignment[(channel.src_ni, channel.src_channel)] = \
                list(new_slots)
        return True

    def _reanalyze(self) -> None:
        """Re-run the Dally/Seitz CDG analysis over the current BE routes."""
        named = [(ch.label, ch.links) for ch in self.channels
                 if not ch.gt and not ch.dead]
        report = analyze_route_links(named, strategy="fault-aware reroute")
        self.last_deadlock_report = report
        if report.ok or self.deadlock_check == "off":
            return
        if self.deadlock_check == "error":
            raise FaultError(
                f"rerouted BE routes can deadlock: {report.describe()}")
        warnings.warn(report.describe(), DeadlockWarning, stacklevel=4)

    # ------------------------------------------------------------ reporting
    def health_report(self) -> HealthReport:
        words_dropped = sum(link.words_poisoned
                            for link in self.noc.links.values())
        packets_dropped = sum(link.packets_poisoned
                              for link in self.noc.links.values())
        retries = timeouts = duplicates = 0
        for handle in self.masters.values():
            shell = getattr(handle, "shell", handle)
            stats = getattr(shell, "stats", None)
            if stats is None:
                continue
            # Read through .counters so absent counters (retry machinery
            # not armed) are not created as a side effect of reporting.
            counters = stats.counters
            retries += getattr(counters.get("retries"), "value", 0)
            timeouts += getattr(counters.get("timeouts"), "value", 0)
            duplicates += getattr(
                counters.get("duplicates_suppressed"), "value", 0)
        gt_intact: Dict[str, bool] = {}
        for channel in self.channels:
            if not channel.declared_gt:
                continue
            intact = gt_intact.get(channel.connection, True)
            gt_intact[channel.connection] = intact and channel.gt \
                and channel.degraded is None
        link_meters: Dict[str, dict] = {}
        flit_clock = getattr(self.noc, "flit_clock", None)
        now_cycle = flit_clock._cycle if flit_clock is not None else None
        for link_id, link in self.noc.links.items():
            info = {"flits_carried": link.flits_carried}
            meter = link.meter
            if meter is not None:
                info["rate_per_cycle"] = meter.rate(now_cycle)
                info["window_cycles"] = meter.window
                info["total"] = meter.total
            link_meters[f"{link_id[0]}->{link_id[1]}"] = info
        return HealthReport(
            links=link_meters,
            failed_links=list(self.failed_link_ids),
            repaired_links=list(self.repaired_link_ids),
            rerouted={ch.label: ch.rerouted for ch in self.channels
                      if ch.rerouted},
            degraded={ch.label: ch.degraded for ch in self.channels
                      if ch.degraded is not None},
            words_dropped=words_dropped,
            packets_dropped=packets_dropped,
            retries=retries,
            timeouts=timeouts,
            duplicates_suppressed=duplicates,
            gt_intact=gt_intact,
            deadlock_report=self.last_deadlock_report)

    # -------------------------------------------------------------- helpers
    def _link_ids_between(self, a: Hashable, b: Hashable) -> List[LinkId]:
        """Both directed link ids between two endpoints (router nodes or NI
        attachment names)."""
        return [self._directed_link_id(a, b), self._directed_link_id(b, a)]

    def _directed_link_id(self, a: Hashable, b: Hashable) -> LinkId:
        links = self.noc.links
        candidate = (f"router:{a!r}", f"router:{b!r}")
        if candidate in links:
            return candidate
        if isinstance(a, str) and a in self.noc.attachments:
            candidate = (f"ni:{a}", f"router:{b!r}")
            if candidate in links:
                return candidate
        if isinstance(b, str) and b in self.noc.attachments:
            candidate = (f"router:{a!r}", f"ni:{b}")
            if candidate in links:
                return candidate
        raise FaultError(
            f"no link between {a!r} and {b!r} (endpoints are router nodes "
            "or NI attachment names of adjacent elements)")
