"""Runtime replay of a fault plan.

The :class:`FaultInjector` is a :class:`~repro.sim.clock.ClockedComponent`
registered on the flit clock *only when a system declares faults* — a
no-fault build instantiates neither the injector nor the fault manager, so
fault support costs exactly nothing (byte-identical runs, identical event
counts).

Wake-protocol note: pending fault events become due through the passage of
cycles alone — nothing will call ``notify_active()`` for them — so the
injector reports busy until its plan is exhausted, keeping the flit clock
ticking through every scheduled fault.  Once the last event has been
applied it goes idle and the clock may sleep again.
"""

from __future__ import annotations

from repro.faults.plan import FaultPlan
from repro.sim.batching import FAR_FUTURE, BurstBarrier
from repro.sim.clock import ClockedComponent


class FaultInjector(ClockedComponent):
    """Applies the events of a :class:`FaultPlan` at their scheduled cycles.

    Also owns the system's :class:`~repro.sim.batching.BurstBarrier`: the
    barrier always holds the next unapplied event's cycle, and the NI
    kernels truncate bursts so nothing is in flight anywhere on a path
    when an event applies (the burst-truncation invariant of
    PERFORMANCE.md "Burst-granularity simulation").
    """

    def __init__(self, manager, plan: FaultPlan) -> None:
        self.manager = manager
        self._events = plan.sorted_events()
        self._next = 0
        self.barrier = BurstBarrier(
            self._events[0].cycle if self._events else FAR_FUTURE)

    @property
    def exhausted(self) -> bool:
        return self._next >= len(self._events)

    @property
    def events_applied(self) -> int:
        return self._next

    def tick(self, cycle: int) -> None:
        events = self._events
        applied = False
        while self._next < len(events) and events[self._next].cycle <= cycle:
            self.manager.apply(events[self._next])
            self._next += 1
            applied = True
        if applied:
            self.barrier.cycle = (events[self._next].cycle
                                  if self._next < len(events) else FAR_FUTURE)

    def is_idle(self) -> bool:
        return self._next >= len(self._events)

    def next_action_cycle(self, cycle: int) -> int:
        """Horizon: the next unapplied event's cycle (ticks between no-op).

        Skipping straight to the event cycle is exact: the intervening
        ticks only re-evaluate ``events[_next].cycle <= cycle`` to False,
        and once the event applies, every mutation that standing gates
        depend on cancels them — reroutes go through
        ``NIKernel.write_register`` (which notifies), while link
        fail/lossy flags only affect traffic that arrives via ``send``
        (which un-gates the sink itself).
        """
        if self._next >= len(self._events):
            return FAR_FUTURE
        nxt = self._events[self._next].cycle
        if nxt <= cycle:
            return cycle + 1
        return nxt

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"FaultInjector({self._next}/{len(self._events)} "
                f"events applied)")
