"""Fault-aware routing: mask failed links and reroute over what survives.

:class:`FaultAwareRouting` wraps any registered
:class:`~repro.network.routing.RoutingStrategy`.  While no link is failed it
is a transparent pass-through (identical routes, no overhead beyond one
empty-set test).  Once edges are failed it checks every base route against
the failure set and, when a route crosses a dead edge — or the base strategy
cannot route at all — recomputes a shortest path over a masked copy of the
topology graph.  When no fault-free path survives it raises
:class:`~repro.network.routing.RouteError` naming the dead links.

The failure set is shared by reference with the
:class:`~repro.faults.manager.FaultManager`, so failing a link reroutes
every strategy user at once.  Masking is edge-granular on the undirected
topology graph: the manager always fails both directions of a link, so this
is exact; failing a single direction by hand masks both (conservative).
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Set, Tuple, Union

import networkx as nx

from repro.network.routing import (
    RouteError,
    RoutingStrategy,
    make_routing,
)
from repro.network.topology import Topology

#: A failed directed edge between two router nodes.
Edge = Tuple[Hashable, Hashable]


class FaultAwareRouting(RoutingStrategy):
    """Wrap a base strategy; detour around failed edges."""

    name = "fault_aware"

    def __init__(self, base: Union[str, RoutingStrategy] = "auto",
                 failed_edges: Optional[Set[Edge]] = None) -> None:
        self.base = make_routing(base)
        #: Directed (a, b) router-node pairs currently failed.  Mutate via
        #: :meth:`fail_edge`/:meth:`repair_edge` (or share the set with a
        #: FaultManager) so the mask cache invalidates.
        self.failed_edges: Set[Edge] = (failed_edges if failed_edges is not None
                                        else set())
        self.version = 0
        self._mask_cache: Optional[Tuple[int, int, nx.Graph]] = None

    # ------------------------------------------------------------- mutation
    def fail_edge(self, a: Hashable, b: Hashable) -> None:
        """Mark both directions between ``a`` and ``b`` as failed."""
        self.failed_edges.add((a, b))
        self.failed_edges.add((b, a))
        self.version += 1

    def repair_edge(self, a: Hashable, b: Hashable) -> None:
        self.failed_edges.discard((a, b))
        self.failed_edges.discard((b, a))
        self.version += 1

    def invalidate(self) -> None:
        """Drop the masked-graph cache (call after mutating the shared set
        directly)."""
        self.version += 1

    # -------------------------------------------------------------- routing
    def router_sequence(self, topology: Topology, src: Hashable,
                        dst: Hashable) -> List[Hashable]:
        if not self.failed_edges:
            return self.base.router_sequence(topology, src, dst)
        try:
            sequence = self.base.router_sequence(topology, src, dst)
        except RouteError:
            sequence = None  # base cannot route; try the masked graph
        if sequence is not None and not self._crosses_failure(sequence):
            return sequence
        return self._masked_sequence(topology, src, dst)

    def _crosses_failure(self, sequence: List[Hashable]) -> bool:
        failed = self.failed_edges
        return any((a, b) in failed
                   for a, b in zip(sequence, sequence[1:]))

    def _masked_sequence(self, topology: Topology, src: Hashable,
                         dst: Hashable) -> List[Hashable]:
        graph = self._masked_graph(topology)
        try:
            return nx.shortest_path(graph, src, dst)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            dead = ", ".join(f"{a!r}->{b!r}"
                             for a, b in sorted(self.failed_edges, key=repr))
            raise RouteError(
                f"no fault-free path {src!r} -> {dst!r}: failed links "
                f"[{dead}] disconnect the endpoints") from None

    def _masked_graph(self, topology: Topology) -> nx.Graph:
        cached = self._mask_cache
        if (cached is not None and cached[0] == id(topology)
                and cached[1] == self.version):
            return cached[2]
        graph = topology.graph.copy()
        # Sorted walk: edge removal order must not follow set hash order
        # (reprolint det-unordered-iter), matching _masked_sequence above.
        for a, b in sorted(self.failed_edges, key=repr):
            if graph.has_edge(a, b):
                graph.remove_edge(a, b)
        self._mask_cache = (id(topology), self.version, graph)
        return graph

    # ---------------------------------------------------------- persistence
    def spec_name(self) -> str:
        if self.failed_edges:
            raise RouteError(
                "FaultAwareRouting with live failures cannot be serialized "
                "as a bare name; reconstruct the failure state at load time")
        return self.name

    def __repr__(self) -> str:
        return (f"FaultAwareRouting(base={self.base!r}, "
                f"failed={len(self.failed_edges)})")
