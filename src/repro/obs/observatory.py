"""The probe network: building, holding and exporting a system's probes.

An :class:`Observatory` owns every probe attached to a built system plus
the :class:`~repro.obs.sampler.MetricsSampler` that drives them, and is
the export surface (``System.obs``): structured captures keyed by
component (with a JSON-lines dump), the sampled metric timelines, and the
waveform/timeline writers (:mod:`repro.obs.vcd`,
:mod:`repro.obs.perfetto`).
"""

from __future__ import annotations

import json
from typing import Dict, IO, Iterable, List, Optional, Union

from repro.obs.perfetto import trace_to_perfetto, write_perfetto
from repro.obs.probes import (
    DramProbe,
    FaultProbe,
    LinkProbe,
    NIProbe,
    ObsError,
    Probe,
    RouterProbe,
)
from repro.obs.sampler import MetricsSampler
from repro.obs.vcd import write_vcd

#: Everything :func:`build_observatory` knows how to watch.
OBS_TARGETS = ("links", "routers", "nis", "dram", "faults")


class Observatory:
    """All probes of one system, keyed by component name."""

    def __init__(self, probes: List[Probe], sampler: MetricsSampler,
                 flit_period_ps: int) -> None:
        self.probes: Dict[str, Probe] = {}
        for probe in probes:
            if probe.name in self.probes:
                raise ObsError(f"duplicate probe name {probe.name!r}")
            self.probes[probe.name] = probe
        self.sampler = sampler
        self.flit_period_ps = flit_period_ps
        self._fault_probe: Optional[FaultProbe] = next(
            (p for p in probes if isinstance(p, FaultProbe)), None)
        self._bound_manager = None

    # -------------------------------------------------------------- lookup
    def probe(self, name: str) -> Probe:
        try:
            return self.probes[name]
        except KeyError:
            known = ", ".join(self.probes) or "<none>"
            raise ObsError(f"unknown probe {name!r} (known: {known})") \
                from None

    def __iter__(self):
        return iter(self.probes.values())

    def __len__(self) -> int:
        return len(self.probes)

    # ------------------------------------------------------------- faults
    def bind_faults(self, manager) -> None:
        """Subscribe the fault probe to a fault manager (idempotent)."""
        if self._fault_probe is None or manager is self._bound_manager:
            return
        manager.add_listener(self._fault_probe.on_fault)
        self._bound_manager = manager

    # ------------------------------------------------------------ toggles
    def disable(self) -> None:
        """Stop sampling and capturing; retained data stays readable."""
        self.sampler.enabled = False
        for probe in self.probes.values():
            probe.enabled = False

    def enable(self) -> None:
        self.sampler.enabled = True
        for probe in self.probes.values():
            probe.enabled = True

    # ------------------------------------------------------------- export
    def series(self) -> Dict[str, object]:
        """The sampled metric timelines (see ``MetricsSampler.series``)."""
        return self.sampler.series()

    def captures(self) -> Dict[str, List[Dict[str, object]]]:
        """Retained capture records keyed by component (non-empty only)."""
        out: Dict[str, List[Dict[str, object]]] = {}
        for name, probe in self.probes.items():
            records = probe.captures()
            if records:
                out[name] = records
        return out

    def dump_jsonl(self, target: Union[str, IO[str]]) -> int:
        """Write one JSON object per capture record; returns the count.

        Records carry their component name and are ordered by component
        (probe registration order), oldest record first within each.
        """
        written = 0
        handle, owned = _open_for_write(target)
        try:
            for name, probe in self.probes.items():
                for record in probe.capture:
                    entry = record.as_dict()
                    entry["component"] = name
                    handle.write(json.dumps(entry, sort_keys=True) + "\n")
                    written += 1
        finally:
            if owned:
                handle.close()
        return written

    def write_vcd(self, target: Union[str, IO[str]],
                  signals: Optional[Iterable[str]] = None) -> int:
        """Dump the signal-style series as a VCD waveform; returns the
        number of signals written.  ``signals`` restricts the export
        (default: every signal-marked metric of every probe)."""
        if signals is None:
            names = []
            for probe in self.probes.values():
                for metric in probe.signal_names:
                    names.append(f"{probe.name}.{metric}")
        else:
            names = list(signals)
        sampler = self.sampler
        series = {name: sampler.column(name) for name in names}
        return write_vcd(target, sampler.cycles, series,
                         period_ps=self.flit_period_ps)

    def perfetto(self, events) -> Dict[str, object]:
        """Chrome/Perfetto ``trace_event`` JSON for a traced run's packet
        lifetimes (see :func:`repro.obs.perfetto.trace_to_perfetto`)."""
        return trace_to_perfetto(events)

    def write_perfetto(self, events, target: Union[str, IO[str]]) -> int:
        return write_perfetto(events, target)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"Observatory(probes={len(self.probes)}, "
                f"rows={len(self.sampler.cycles)})")


def _open_for_write(target: Union[str, IO[str]]):
    if hasattr(target, "write"):
        return target, False
    return open(target, "w", encoding="utf-8"), True


def build_observatory(model, *, targets: Iterable[str] = OBS_TARGETS,
                      period: int = 32, capture_depth: int = 64,
                      series_cap: int = 1024,
                      dram_controllers: Optional[Dict[str, object]] = None,
                      ) -> Observatory:
    """Instantiate probes over a generated system model.

    ``targets`` selects probe families from :data:`OBS_TARGETS`;
    ``dram_controllers`` maps memory names to
    :class:`~repro.mem.controller.DRAMController` instances (the builder
    passes the DRAM-backed memories it attached).  Component iteration
    follows the model's construction order, so probe numbering — and with
    it every export — is deterministic.
    """
    chosen = tuple(targets)
    unknown = [t for t in chosen if t not in OBS_TARGETS]
    if unknown:
        raise ObsError(f"unknown observe target(s) {unknown!r} "
                       f"(known: {', '.join(OBS_TARGETS)})")
    probes: List[Probe] = []
    if "links" in chosen:
        for link in model.noc.links.values():
            probes.append(LinkProbe(link, capture_depth))
    if "routers" in chosen:
        for router in model.noc.routers.values():
            probes.append(RouterProbe(router, capture_depth))
    if "nis" in chosen:
        for name, kernel in model.kernels.items():
            probes.append(NIProbe(name, kernel, capture_depth))
    if "dram" in chosen and dram_controllers:
        for name, controller in dram_controllers.items():
            probes.append(DramProbe(name, controller, capture_depth))
    if "faults" in chosen:
        probes.append(FaultProbe(capture_depth))
    sampler = MetricsSampler(probes, period=period, series_cap=series_cap)
    return Observatory(probes, sampler, model.noc.flit_clock.period_ps)
